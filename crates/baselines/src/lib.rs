//! Comparator systems for the HaoCL evaluation (paper §IV-B, Fig. 2).
//!
//! The paper compares HaoCL against a native single-node OpenCL run
//! ("Local-GPU") and against SnuCL-D (Kim et al., PLDI 2016). This crate
//! provides both as runnable systems over the same workloads:
//!
//! * [`local`] — the native baseline: one node, zero-cost interconnect.
//! * [`snucl_d`] — a SnuCL-D-like distributed runtime: CPU/GPU only, no
//!   CFD support, and redundant data placement (every node holds the full
//!   input, the cost of its replicated-host-program design).

pub mod local;
pub mod snucl_d;

pub use local::run_local;
pub use snucl_d::SnuClD;

/// Which system executed a run (for harness labelling).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum System {
    /// HaoCL on a cluster.
    HaoCl,
    /// Native OpenCL on one node.
    LocalNative,
    /// The SnuCL-D-like comparator.
    SnuClD,
}

impl std::fmt::Display for System {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            System::HaoCl => "HaoCL",
            System::LocalNative => "Local",
            System::SnuClD => "SnuCL-D",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_labels() {
        assert_eq!(System::HaoCl.to_string(), "HaoCL");
        assert_eq!(System::SnuClD.to_string(), "SnuCL-D");
        assert_eq!(System::LocalNative.to_string(), "Local");
    }
}
