//! The native single-node baseline ("Local-GPU" / "Local-FPGA" in
//! Fig. 2).
//!
//! Runs the unmodified workload driver on a [`haocl::Platform::local`]
//! platform: one node, zero-cost interconnect — semantically the vendor
//! OpenCL runtime on a single machine. The difference between this and a
//! one-node HaoCL cluster is exactly the wrapper/backbone overhead the
//! paper's abstract claims is negligible.

use haocl::{DeviceKind, Error, Platform};
use haocl_workloads::{registry_with_all, RunOptions, RunReport, Workload};

/// Runs `workload` natively on a single node holding `devices`.
///
/// # Errors
///
/// Propagates driver failures.
///
/// # Panics
///
/// Panics if `devices` is empty (a node needs at least one device).
pub fn run_local(
    devices: &[DeviceKind],
    workload: &Workload,
    opts: &RunOptions,
) -> Result<RunReport, Error> {
    let platform = Platform::local_with_registry(devices, registry_with_all())?;
    workload.run(&platform, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_workloads::matmul::MatmulConfig;

    #[test]
    fn local_gpu_runs_and_verifies() {
        let report = run_local(
            &[DeviceKind::Gpu],
            &Workload::MatrixMul(MatmulConfig::test_scale()),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true));
        assert_eq!(report.devices, 1);
    }

    #[test]
    fn local_fpga_runs_prebuilt_kernels() {
        let report = run_local(
            &[DeviceKind::Fpga],
            &Workload::MatrixMul(MatmulConfig::test_scale()),
            &RunOptions::full(),
        )
        .unwrap();
        assert_eq!(report.verified, Some(true));
    }
}
