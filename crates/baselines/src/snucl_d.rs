//! A SnuCL-D-like distributed OpenCL comparator.
//!
//! SnuCL-D ("A Distributed OpenCL Framework using Redundant Computation
//! and Data Replication", PLDI 2016) replicates the host program on every
//! node to eliminate the central control bottleneck. The consequences the
//! paper highlights — and this comparator models — are:
//!
//! * **No FPGA support** ("previously proposed frameworks only consider
//!   CPUs and GPUs", §I): FPGA clusters are rejected.
//! * **No CFD** ("Note CFD cannot be implemented on SnuCL-D without
//!   significant change", §IV-B): the workload is rejected.
//! * **Redundant data placement**: because every node re-executes the
//!   host program, every node materializes the *full* input, so input
//!   traffic grows with the node count instead of staying constant.
//! * **Coarse-grained scheduling**: plain even splits (the nnz-balanced
//!   SpMV split is a HaoCL-side refinement; SnuCL-D's modeled runs use
//!   the same even split, so this shows up on skewed inputs).

use haocl::{DeviceKind, Error, Platform, Status};
use haocl_cluster::ClusterConfig;
use haocl_workloads::{registry_with_all, RunOptions, RunReport, Workload};

/// The SnuCL-D-like runtime.
#[derive(Debug, Clone, Copy, Default)]
pub struct SnuClD;

impl SnuClD {
    /// Creates the comparator.
    pub fn new() -> Self {
        SnuClD
    }

    /// Runs `workload` on a SnuCL-D-managed cluster of `config`.
    ///
    /// # Errors
    ///
    /// [`Status::DeviceNotFound`] for clusters containing FPGAs;
    /// [`Status::InvalidOperation`] for the CFD workload; driver failures
    /// otherwise.
    pub fn run(
        &self,
        config: &ClusterConfig,
        workload: &Workload,
        opts: &RunOptions,
    ) -> Result<RunReport, Error> {
        if config
            .nodes
            .iter()
            .any(|n| n.devices.contains(&DeviceKind::Fpga))
        {
            return Err(Error::api(
                Status::DeviceNotFound,
                "SnuCL-D supports CPU/GPU clusters only (no FPGA abstraction)",
            ));
        }
        if matches!(workload, Workload::Cfd(_)) {
            return Err(Error::api(
                Status::InvalidOperation,
                "CFD cannot be implemented on SnuCL-D without significant change",
            ));
        }
        let platform = Platform::cluster(config, registry_with_all())?;
        let opts = RunOptions {
            replicate_inputs: true,
            ..*opts
        };
        let mut report = workload.run(&platform, &opts)?;
        report.app = format!("{} (SnuCL-D)", report.app);
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_workloads::cfd::CfdConfig;
    use haocl_workloads::matmul::MatmulConfig;

    #[test]
    fn rejects_fpga_clusters() {
        let err = SnuClD::new()
            .run(
                &ClusterConfig::hetero_cluster(1, 1),
                &Workload::MatrixMul(MatmulConfig::test_scale()),
                &RunOptions::full(),
            )
            .unwrap_err();
        assert_eq!(err.status(), Some(Status::DeviceNotFound));
    }

    #[test]
    fn rejects_cfd() {
        let err = SnuClD::new()
            .run(
                &ClusterConfig::gpu_cluster(2),
                &Workload::Cfd(CfdConfig::test_scale()),
                &RunOptions::full(),
            )
            .unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidOperation));
    }

    #[test]
    fn runs_and_verifies_on_gpu_cluster() {
        let report = SnuClD::new()
            .run(
                &ClusterConfig::gpu_cluster(2),
                &Workload::MatrixMul(MatmulConfig::test_scale()),
                &RunOptions::full(),
            )
            .unwrap();
        assert_eq!(report.verified, Some(true), "{report}");
        assert!(report.app.contains("SnuCL-D"));
    }

    #[test]
    fn replication_makes_it_slower_than_haocl_at_scale() {
        use haocl_workloads::matmul;
        let cfg = matmul::MatmulConfig::with_n(4096);
        let workload = Workload::MatrixMul(cfg);
        let opts = RunOptions::modeled();
        let config = ClusterConfig::gpu_cluster(4);
        let haocl_platform = Platform::cluster(&config, registry_with_all()).unwrap();
        let haocl_run = workload.run(&haocl_platform, &opts).unwrap();
        let snucl_run = SnuClD::new().run(&config, &workload, &opts).unwrap();
        assert!(
            snucl_run.makespan > haocl_run.makespan,
            "SnuCL-D {} should exceed HaoCL {}",
            snucl_run.makespan,
            haocl_run.makespan
        );
    }
}
