//! Criterion bench for the design-choice ablations: scheduler-policy
//! placement of a mixed kernel burst, and the network-bandwidth sweep.

use criterion::{criterion_group, criterion_main, Criterion};

use haocl_bench::ablations;

fn bench_ablations(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("scheduler_policies_x16", |b| {
        b.iter(|| ablations::scheduler_policies(16).expect("ablation"));
    });
    group.bench_function("network_bandwidth_3pt", |b| {
        b.iter(|| ablations::network_bandwidth(&[1.0, 10.0, 100.0]).expect("ablation"));
    });
    group.finish();
}

criterion_group!(benches, bench_ablations);
criterion_main!(benches);
