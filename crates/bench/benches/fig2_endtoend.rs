//! Criterion bench for the Fig. 2 harness: one end-to-end HaoCL point
//! per cluster kind (GPU / FPGA / hetero), full fidelity at test scale so
//! the whole stack (compiler, VM, backbone, devices) is exercised.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use haocl_bench::run_haocl;
use haocl_cluster::ClusterConfig;
use haocl_workloads::matmul::MatmulConfig;
use haocl_workloads::{RunOptions, Workload};

fn bench_fig2(c: &mut Criterion) {
    let workload = Workload::MatrixMul(MatmulConfig::test_scale());
    let opts = RunOptions {
        verify: false,
        ..RunOptions::full()
    };
    let mut group = c.benchmark_group("fig2_endtoend");
    group.sample_size(10);
    for (label, config) in [
        ("gpu_x2", ClusterConfig::gpu_cluster(2)),
        ("fpga_x2", ClusterConfig::fpga_cluster(2)),
        ("hetero_1_1", ClusterConfig::hetero_cluster(1, 1)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &config, |b, cfg| {
            b.iter(|| run_haocl(cfg, &workload, &opts).expect("run"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
