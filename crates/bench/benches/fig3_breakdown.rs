//! Criterion bench for the Fig. 3 harness: one MatrixMul breakdown point
//! (modeled fidelity, paper-style size) per node count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use haocl_bench::fig3;
use haocl_workloads::RunOptions;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_breakdown");
    group.sample_size(10);
    for nodes in [2usize, 4, 9] {
        group.bench_with_input(BenchmarkId::from_parameter(nodes), &nodes, |b, &n| {
            b.iter(|| fig3::rows(&[4000], &[n], &RunOptions::modeled()).expect("rows"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
