//! Criterion bench for the §IV-C heterogeneity harness: MM data-split
//! and SpMV stage-split on a small mixed cluster.

use criterion::{criterion_group, criterion_main, Criterion};

use haocl::Platform;
use haocl_bench::run_haocl;
use haocl_cluster::ClusterConfig;
use haocl_workloads::matmul::MatmulConfig;
use haocl_workloads::spmv::{self, SpmvConfig};
use haocl_workloads::{registry_with_all, RunOptions, Workload};

fn bench_hetero(c: &mut Criterion) {
    let mut group = c.benchmark_group("hetero_eval");
    group.sample_size(10);
    let opts = RunOptions {
        verify: false,
        ..RunOptions::full()
    };
    group.bench_function("mm_data_split_1g1f", |b| {
        let config = ClusterConfig::hetero_cluster(1, 1);
        let workload = Workload::MatrixMul(MatmulConfig::test_scale());
        b.iter(|| run_haocl(&config, &workload, &opts).expect("run"));
    });
    group.bench_function("spmv_stage_split_1g1f", |b| {
        let config = ClusterConfig::hetero_cluster(1, 1);
        let cfg = SpmvConfig::test_scale();
        b.iter(|| {
            let platform = Platform::cluster(&config, registry_with_all()).expect("platform");
            spmv::run_hetero(&platform, &cfg, &opts).expect("run")
        });
    });
    group.finish();
}

criterion_group!(benches, bench_hetero);
criterion_main!(benches);
