//! Criterion bench for the "negligible overhead" harness: the same
//! workload on one node, native vs through the HaoCL backbone.

use criterion::{criterion_group, criterion_main, Criterion};

use haocl::DeviceKind;
use haocl_baselines::run_local;
use haocl_bench::run_haocl;
use haocl_cluster::ClusterConfig;
use haocl_workloads::matmul::MatmulConfig;
use haocl_workloads::{RunOptions, Workload};

fn bench_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("overhead");
    group.sample_size(10);
    let workload = Workload::MatrixMul(MatmulConfig::test_scale());
    let opts = RunOptions {
        verify: false,
        ..RunOptions::full()
    };
    group.bench_function("local_native", |b| {
        b.iter(|| run_local(&[DeviceKind::Gpu], &workload, &opts).expect("run"));
    });
    group.bench_function("haocl_single_node", |b| {
        let config = ClusterConfig::gpu_cluster(1);
        b.iter(|| run_haocl(&config, &workload, &opts).expect("run"));
    });
    group.finish();
}

criterion_group!(benches, bench_overhead);
criterion_main!(benches);
