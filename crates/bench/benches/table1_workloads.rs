//! Criterion bench for the Table I generators: how fast each workload's
//! input set is produced at test scale (the generators also run inside
//! every full-fidelity experiment).

use criterion::{criterion_group, criterion_main, Criterion};

use haocl_workloads::{bfs, cfd, knn, matmul, spmv};

fn bench_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_workloads");
    group.bench_function("matmul_gen", |b| {
        let cfg = matmul::MatmulConfig::test_scale();
        b.iter(|| matmul::generate_matrix(&cfg, "a"));
    });
    group.bench_function("cfd_gen", |b| {
        let cfg = cfd::CfdConfig::test_scale();
        b.iter(|| cfd::generate_state(&cfg));
    });
    group.bench_function("knn_gen", |b| {
        let cfg = knn::KnnConfig::test_scale();
        b.iter(|| knn::generate_records(&cfg));
    });
    group.bench_function("bfs_gen", |b| {
        let cfg = bfs::BfsConfig::test_scale();
        b.iter(|| bfs::generate_graph(&cfg));
    });
    group.bench_function("spmv_gen", |b| {
        let cfg = spmv::SpmvConfig::test_scale();
        b.iter(|| spmv::generate_matrix(&cfg));
    });
    group.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);
