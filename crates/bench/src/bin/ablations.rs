//! Design-choice ablations beyond the paper's figures: scheduler-policy
//! quality on a mixed cluster, the interconnect-bandwidth sweep, the
//! asynchronous backbone's pipelining win, the residency-aware data
//! plane's locality win, and the effect prover's kernel-fusion win.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin ablations
//! cargo run --release -p haocl-bench --bin ablations -- --json out.json
//! cargo run --release -p haocl-bench --bin ablations -- --json-fusion fusion.json
//! ```
//!
//! `--json` writes the locality-ablation rows and `--json-fusion` the
//! fusion-ablation rows as machine-readable artifacts (consumed by the
//! nightly bench CI job).

use haocl_bench::{ablations, text::render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires an output path");
                std::process::exit(2);
            })
        })
    };
    let json_path = path_after("--json");
    let fusion_json_path = path_after("--json-fusion");
    println!("Ablation 1 — scheduling policy (32 mixed kernels on 2 GPU + 2 FPGA nodes)");
    println!();
    let rows = ablations::scheduler_policies(32).expect("scheduler ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, makespan)| vec![name.clone(), format!("{makespan}")])
        .collect();
    print!("{}", render_table(&["policy", "makespan"], &table));
    println!();

    println!("Ablation 2 — interconnect bandwidth (MatrixMul, 8 GPU nodes, paper scale)");
    println!();
    let rows =
        ablations::network_bandwidth(&[1.0, 2.5, 10.0, 25.0, 100.0]).expect("bandwidth ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(gbps, makespan)| vec![format!("{gbps} Gb/s"), format!("{makespan}")])
        .collect();
    print!("{}", render_table(&["link", "makespan"], &table));
    println!();

    println!("Ablation 3 — backbone pipelining (4-node fan-out of small launches)");
    println!();
    let result = ablations::pipelining(4, 2).expect("pipelining ablation");
    let table = vec![
        vec!["synchronous".to_string(), format!("{}", result.synchronous)],
        vec!["pipelined".to_string(), format!("{}", result.pipelined)],
        vec!["speedup".to_string(), format!("{:.2}x", result.speedup())],
    ];
    print!(
        "{}",
        render_table(&["host semantics", "fan-out makespan"], &table)
    );
    println!();

    println!("Ablation 4 — residency-aware data plane (2 GPU nodes, 16 real launches)");
    println!();
    let rows = ablations::locality(16).expect("locality ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.config.to_string(),
                format!("{}", r.data_transfer),
                format!("{}", r.relay_bytes),
                format!("{}", r.peer_bytes),
                format!("{:016x}", r.digest),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "config",
                "DataTransfer",
                "host-relay bytes",
                "peer bytes",
                "output digest"
            ],
            &table
        )
    );
    println!();

    println!("Ablation 5 — kernel fusion (effect-prover-approved chains, 2 GPU nodes)");
    println!();
    let fusion_rows = ablations::fusion().expect("fusion ablation");
    let table: Vec<Vec<String>> = fusion_rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.config.to_string(),
                format!("{}", r.nodes),
                format!("{}", r.wire_launches),
                format!("{}", r.commands_saved),
                format!("{:016x}", r.digest),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "workload",
                "config",
                "launches",
                "wire commands",
                "saved",
                "output digest"
            ],
            &table
        )
    );

    if let Some(path) = fusion_json_path {
        let records: Vec<String> = fusion_rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"app\": \"{}\", \"config\": \"{}\", ",
                        "\"nodes\": {}, \"wire_launches\": {}, ",
                        "\"commands_saved\": {}, \"digest\": \"{:016x}\"}}"
                    ),
                    r.app, r.config, r.nodes, r.wire_launches, r.commands_saved, r.digest,
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"ablation\": \"fusion\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            records.join(",\n")
        );
        write_artifact(&path, &body);
    }

    if let Some(path) = json_path {
        let records: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"app\": \"{}\", \"config\": \"{}\", ",
                        "\"data_transfer_nanos\": {}, \"relay_bytes\": {}, ",
                        "\"peer_bytes\": {}, \"digest\": \"{:016x}\"}}"
                    ),
                    r.app,
                    r.config,
                    r.data_transfer.as_nanos(),
                    r.relay_bytes,
                    r.peer_bytes,
                    r.digest,
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"ablation\": \"locality\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            records.join(",\n")
        );
        write_artifact(&path, &body);
    }
}

fn write_artifact(path: &str, body: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, body).expect("write output file");
    println!();
    println!("wrote {path}");
}
