//! Design-choice ablations beyond the paper's figures: scheduler-policy
//! quality on a mixed cluster, the interconnect-bandwidth sweep, and the
//! asynchronous backbone's pipelining win.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin ablations
//! ```

use haocl_bench::{ablations, text::render_table};

fn main() {
    println!("Ablation 1 — scheduling policy (32 mixed kernels on 2 GPU + 2 FPGA nodes)");
    println!();
    let rows = ablations::scheduler_policies(32).expect("scheduler ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, makespan)| vec![name.clone(), format!("{makespan}")])
        .collect();
    print!("{}", render_table(&["policy", "makespan"], &table));
    println!();

    println!("Ablation 2 — interconnect bandwidth (MatrixMul, 8 GPU nodes, paper scale)");
    println!();
    let rows =
        ablations::network_bandwidth(&[1.0, 2.5, 10.0, 25.0, 100.0]).expect("bandwidth ablation");
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|(gbps, makespan)| vec![format!("{gbps} Gb/s"), format!("{makespan}")])
        .collect();
    print!("{}", render_table(&["link", "makespan"], &table));
    println!();

    println!("Ablation 3 — backbone pipelining (4-node fan-out of small launches)");
    println!();
    let result = ablations::pipelining(4, 2).expect("pipelining ablation");
    let table = vec![
        vec!["synchronous".to_string(), format!("{}", result.synchronous)],
        vec!["pipelined".to_string(), format!("{}", result.pipelined)],
        vec!["speedup".to_string(), format!("{:.2}x", result.speedup())],
    ];
    print!(
        "{}",
        render_table(&["host semantics", "fan-out makespan"], &table)
    );
}
