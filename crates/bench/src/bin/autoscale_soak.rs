//! Elastic-fleet soak with CI gates.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin autoscale_soak
//! cargo run --release -p haocl-bench --bin autoscale_soak -- --rounds 6 \
//!     --json out.json --metrics metrics.prom --audit audit.log --top top.json
//! ```
//!
//! A fleet that starts as one GPU node rides repeated traffic spikes
//! and idle valleys: each spike must scale the fleet up within the
//! reaction budget (the spike's tail then rides the grown fleet), each
//! valley must drain the burst node back out while it holds live
//! state. The process exits nonzero when any gate fails:
//!
//! * **reaction** — the autoscaler answers a sustained spike within its
//!   tick budget (hysteresis + cooldown + one tick of slack);
//! * **consistency** — after every scale-down drain, the output buffer
//!   is byte-identical to the reference at the completed launch count;
//! * **quarantine** — `haocl_quarantines_total` stays 0: every epoch
//!   bump in this soak is a voluntary departure, never a failure. This
//!   gate lifts when `HAOCL_CHAOS_SPEC` arms fault injection — there, a
//!   crash racing a drain *should* book a strike, and the bar is that
//!   recovery plus drain retries keep the other gates green.
//!
//! `--top` writes the embedded `haocl-top --report json` snapshot — the
//! artifact the nightly `autoscale-soak` CI job uploads.

use haocl_bench::autoscale_soak;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let rounds: usize = arg_after("--rounds")
        .map(|v| v.parse().expect("--rounds takes a number"))
        .unwrap_or(6);
    let json_path = arg_after("--json");
    let metrics_path = arg_after("--metrics");
    let audit_path = arg_after("--audit");
    let top_path = arg_after("--top");

    println!("Autoscale soak — 1-GPU seed fleet, {rounds} spike/valley rounds");
    println!();
    let report = autoscale_soak::run(rounds).expect("autoscale soak run");

    println!(
        "scale-ups: {}/{}   scale-downs: {}/{}   worst reaction: {} ticks",
        report.scale_ups,
        report.rounds,
        report.scale_downs,
        report.rounds,
        report.worst_reaction_ticks
    );
    println!(
        "output: {}   quarantines: {}   launches: {}",
        if report.consistent {
            "byte-identical"
        } else {
            "MISMATCH"
        },
        report.quarantines,
        report.launches
    );

    let write_to = |path: &Option<String>, body: &str| {
        if let Some(path) = path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create output directory");
                }
            }
            std::fs::write(path, body).expect("write output file");
            println!("wrote {path}");
        }
    };
    write_to(&metrics_path, &report.metrics);
    write_to(&audit_path, &report.audit);
    write_to(&top_path, &format!("{}\n", report.top_json));
    if json_path.is_some() {
        let violations: Vec<String> = report
            .violations
            .iter()
            .map(|v| format!("    \"{}\"", v.replace('"', "'")))
            .collect();
        let body = format!(
            concat!(
                "{{\n  \"soak\": \"autoscale\",\n  \"rounds\": {},\n",
                "  \"scale_ups\": {},\n  \"scale_downs\": {},\n",
                "  \"worst_reaction_ticks\": {},\n  \"consistent\": {},\n",
                "  \"quarantines\": {},\n  \"launches\": {},\n",
                "  \"violations\": [\n{}\n  ]\n}}\n"
            ),
            report.rounds,
            report.scale_ups,
            report.scale_downs,
            report.worst_reaction_ticks,
            report.consistent,
            report.quarantines,
            report.launches,
            if violations.is_empty() {
                String::new()
            } else {
                violations.join(",\n")
            },
        );
        write_to(&json_path, &body);
    }

    if report.violations.is_empty() {
        println!();
        println!("all gates passed");
    } else {
        eprintln!();
        for v in &report.violations {
            eprintln!("GATE VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
