//! Regenerates Fig. 2: end-to-end speedup over a single GPU/FPGA node
//! for all five benchmarks across cluster sizes and systems.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin fig2           # paper scale (modeled)
//! cargo run --release -p haocl-bench --bin fig2 -- --small  # quick test scale
//! ```

use haocl_bench::{fig2, text::render_table};
use haocl_workloads::{RunOptions, Workload};

fn main() {
    let small = std::env::args().any(|a| a == "--small");
    let workloads = if small {
        Workload::test_suite()
    } else {
        Workload::paper_suite()
    };
    let node_counts = [1usize, 2, 4, 8, 16];
    // Steady-state (data-resident) measurement: the paper's regime where
    // the data lives distributed; pass --staged for cold-start runs.
    let opts = if std::env::args().any(|a| a == "--staged") {
        RunOptions::modeled()
    } else {
        RunOptions::modeled_resident()
    };
    println!("Fig. 2 — End-to-end speedup over a single GPU (virtual time)");
    println!();
    for workload in &workloads {
        let rows = fig2::rows(workload, &node_counts, &opts).expect("fig2 rows");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.series.clone(),
                    r.nodes.to_string(),
                    format!("{}", r.makespan),
                    format!("{:.2}x", r.speedup),
                    format!("{:.2}x", r.scaling),
                ]
            })
            .collect();
        println!("== {} ==", workload.name());
        print!(
            "{}",
            render_table(
                &["series", "nodes", "makespan", "vs Local-GPU", "scaling"],
                &table
            )
        );
        if matches!(workload, Workload::Cfd(_)) {
            println!("(SnuCL-D: CFD cannot be implemented without significant change)");
        }
        println!();
    }
}
