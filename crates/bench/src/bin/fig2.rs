//! Regenerates Fig. 2: end-to-end speedup over a single GPU/FPGA node
//! for all five benchmarks across cluster sizes and systems.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin fig2           # paper scale (modeled)
//! cargo run --release -p haocl-bench --bin fig2 -- --small  # quick test scale
//! cargo run --release -p haocl-bench --bin fig2 -- --small --json out.json
//! ```

use haocl_bench::{fig2, text::render_table};
use haocl_workloads::{RunOptions, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let json_path = args.iter().position(|a| a == "--json").map(|i| {
        args.get(i + 1).cloned().unwrap_or_else(|| {
            eprintln!("--json requires an output path");
            std::process::exit(2);
        })
    });
    let workloads = if small {
        Workload::test_suite()
    } else {
        Workload::paper_suite()
    };
    let node_counts = [1usize, 2, 4, 8, 16];
    // Steady-state (data-resident) measurement: the paper's regime where
    // the data lives distributed; pass --staged for cold-start runs.
    let opts = if args.iter().any(|a| a == "--staged") {
        RunOptions::modeled()
    } else {
        RunOptions::modeled_resident()
    };
    println!("Fig. 2 — End-to-end speedup over a single GPU (virtual time)");
    println!();
    let mut records = Vec::new();
    for workload in &workloads {
        let rows = fig2::rows(workload, &node_counts, &opts).expect("fig2 rows");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.series.clone(),
                    r.nodes.to_string(),
                    format!("{}", r.makespan),
                    format!("{:.2}x", r.speedup),
                    format!("{:.2}x", r.scaling),
                ]
            })
            .collect();
        println!("== {} ==", workload.name());
        print!(
            "{}",
            render_table(
                &["series", "nodes", "makespan", "vs Local-GPU", "scaling"],
                &table
            )
        );
        if matches!(workload, Workload::Cfd(_)) {
            println!("(SnuCL-D: CFD cannot be implemented without significant change)");
        }
        println!();
        for r in &rows {
            records.push(format!(
                concat!(
                    "    {{\"workload\": {}, \"series\": {}, \"nodes\": {}, ",
                    "\"makespan_nanos\": {}, \"speedup\": {:.4}, \"scaling\": {:.4}}}"
                ),
                json_string(workload.name()),
                json_string(&r.series),
                r.nodes,
                r.makespan.as_nanos(),
                r.speedup,
                r.scaling,
            ));
        }
    }
    if let Some(path) = json_path {
        let body = format!(
            "{{\n  \"figure\": \"fig2\",\n  \"scale\": \"{}\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            if small { "small" } else { "paper" },
            records.join(",\n"),
        );
        if let Some(dir) = std::path::Path::new(&path).parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir).expect("create output directory");
            }
        }
        std::fs::write(&path, body).expect("write JSON results");
        println!("wrote {path}");
    }
}

/// Minimal JSON string encoding (the emitted names are ASCII).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
