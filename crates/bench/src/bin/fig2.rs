//! Regenerates Fig. 2: end-to-end speedup over a single GPU/FPGA node
//! for all five benchmarks across cluster sizes and systems.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin fig2           # paper scale (modeled)
//! cargo run --release -p haocl-bench --bin fig2 -- --small  # quick test scale
//! cargo run --release -p haocl-bench --bin fig2 -- --small --json out.json
//! cargo run --release -p haocl-bench --bin fig2 -- --small \
//!     --trace trace.json --metrics metrics.prom   # observability artifacts
//! ```
//!
//! `--trace`/`--metrics` run one traced probe configuration (MatrixMul on
//! a 2+2 hetero cluster plus an auto-scheduled burst) and write its
//! Chrome trace / Prometheus dump; `--json` output always carries the
//! per-phase breakdown per row and the probe's audit-log summary.

use haocl_bench::{fig2, probe, text::render_table};
use haocl_sim::PhaseBreakdown;
use haocl_workloads::{RunOptions, Workload};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let small = args.iter().any(|a| a == "--small");
    let path_arg = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires an output path");
                std::process::exit(2);
            })
        })
    };
    let json_path = path_arg("--json");
    let trace_path = path_arg("--trace");
    let metrics_path = path_arg("--metrics");
    let workloads = if small {
        Workload::test_suite()
    } else {
        Workload::paper_suite()
    };
    let node_counts = [1usize, 2, 4, 8, 16];
    // Steady-state (data-resident) measurement: the paper's regime where
    // the data lives distributed; pass --staged for cold-start runs.
    let opts = if args.iter().any(|a| a == "--staged") {
        RunOptions::modeled()
    } else {
        RunOptions::modeled_resident()
    };
    println!("Fig. 2 — End-to-end speedup over a single GPU (virtual time)");
    println!();
    // Wall clock (monotonic) around the measured runs: the JSON artifact
    // reports simulated-vs-real throughput so CI history can spot harness
    // slowdowns that virtual time is blind to.
    let wall_start = std::time::Instant::now();
    let mut virtual_nanos: u128 = 0;
    let mut records = Vec::new();
    for workload in &workloads {
        let rows = fig2::rows(workload, &node_counts, &opts).expect("fig2 rows");
        let table: Vec<Vec<String>> = rows
            .iter()
            .map(|r| {
                vec![
                    r.series.clone(),
                    r.nodes.to_string(),
                    format!("{}", r.makespan),
                    format!("{:.2}x", r.speedup),
                    format!("{:.2}x", r.scaling),
                ]
            })
            .collect();
        println!("== {} ==", workload.name());
        print!(
            "{}",
            render_table(
                &["series", "nodes", "makespan", "vs Local-GPU", "scaling"],
                &table
            )
        );
        if matches!(workload, Workload::Cfd(_)) {
            println!("(SnuCL-D: CFD cannot be implemented without significant change)");
        }
        println!();
        for r in &rows {
            virtual_nanos += u128::from(r.makespan.as_nanos());
            records.push(format!(
                concat!(
                    "    {{\"workload\": {}, \"series\": {}, \"nodes\": {}, ",
                    "\"makespan_nanos\": {}, \"speedup\": {:.4}, \"scaling\": {:.4}, ",
                    "\"phases\": {}, \"phase_bytes\": {}}}"
                ),
                json_string(workload.name()),
                json_string(&r.series),
                r.nodes,
                r.makespan.as_nanos(),
                r.speedup,
                r.scaling,
                phases_json(&r.phases),
                phase_bytes_json(&r.phases),
            ));
        }
    }
    // The traced probe backs both the artifact flags and the JSON audit
    // summary; skip it entirely when nobody asked for observability data.
    let artifacts = if json_path.is_some() || trace_path.is_some() || metrics_path.is_some() {
        Some(probe::run().expect("traced probe run"))
    } else {
        None
    };
    if let (Some(path), Some(a)) = (&trace_path, &artifacts) {
        write_artifact(path, &a.trace_json);
    }
    if let (Some(path), Some(a)) = (&metrics_path, &artifacts) {
        write_artifact(path, &a.metrics);
    }
    if let Some(path) = json_path {
        let audit = artifacts
            .as_ref()
            .map(|a| audit_json(&a.audit_summary))
            .unwrap_or_else(|| "[]".to_string());
        let wall_nanos = wall_start.elapsed().as_nanos().max(1);
        let body = format!(
            concat!(
                "{{\n  \"figure\": \"fig2\",\n  \"scale\": \"{}\",\n",
                "  \"wall\": {{\"elapsed_nanos\": {}, \"virtual_nanos\": {}, ",
                "\"virtual_per_wall\": {:.3}}},\n",
                "  \"audit\": {},\n  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            if small { "small" } else { "paper" },
            wall_nanos,
            virtual_nanos,
            virtual_nanos as f64 / wall_nanos as f64,
            audit,
            records.join(",\n"),
        );
        write_artifact(&path, &body);
    }
}

/// Per-phase breakdown as a JSON object, category name → nanos.
fn phases_json(b: &PhaseBreakdown) -> String {
    let parts: Vec<String> = b
        .phases()
        .iter()
        .map(|p| format!("{}: {}", json_string(p.as_str()), b.time(*p).as_nanos()))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// Bytes moved per phase as a JSON object, category name → bytes.
/// Phases that moved no data are omitted (most compute categories).
fn phase_bytes_json(b: &PhaseBreakdown) -> String {
    let parts: Vec<String> = b
        .phases()
        .iter()
        .filter(|p| b.bytes(**p) > 0)
        .map(|p| format!("{}: {}", json_string(p.as_str()), b.bytes(*p)))
        .collect();
    format!("{{{}}}", parts.join(", "))
}

/// Audit-log summary as a JSON array of placement counts.
fn audit_json(summary: &std::collections::BTreeMap<(String, String), u64>) -> String {
    if summary.is_empty() {
        return "[]".to_string();
    }
    let parts: Vec<String> = summary
        .iter()
        .map(|((kernel, kind), n)| {
            format!(
                "{{\"kernel\": {}, \"kind\": {}, \"placements\": {n}}}",
                json_string(kernel),
                json_string(kind),
            )
        })
        .collect();
    format!("[{}]", parts.join(", "))
}

fn write_artifact(path: &str, body: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, body).expect("write output file");
    println!("wrote {path}");
}

/// Minimal JSON string encoding (the emitted names are ASCII).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
