//! Regenerates Fig. 3: MatrixMul runtime breakdown (DataCreate /
//! ComputeTime / DataTransfer) over matrix sizes and GPU-node counts.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin fig3
//! ```

use haocl_bench::{fig3, text::render_table};
use haocl_workloads::RunOptions;

fn main() {
    let sizes = [1000usize, 2000, 4000, 5000, 6000, 8000, 10000];
    let nodes = [2usize, 4, 9];
    let rows = fig3::rows(&sizes, &nodes, &RunOptions::modeled()).expect("fig3 rows");
    println!("Fig. 3 — System breakdown with Matrix Multiplication (virtual time)");
    println!();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}x{}", r.size, r.size),
                r.nodes.to_string(),
                format!("{}", r.data_create),
                format!("{}", r.compute),
                format!("{}", r.data_transfer),
                format!("{}", r.init),
                format!("{}", r.total),
                format!(
                    "{:.1}%",
                    100.0 * (r.data_create + r.data_transfer).as_secs_f64()
                        / r.total.as_secs_f64().max(1e-12)
                ),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "matrix",
                "nodes",
                "DataCreate",
                "Compute",
                "DataTransfer",
                "Init",
                "total",
                "comm%"
            ],
            &table
        )
    );
    println!();
    println!(
        "(Init is negligible, as the paper reports; the communication share\n\
         shrinks as the matrix grows — the paper's Fig. 3 observation.)"
    );
}
