//! Degraded-device soak with CI gates.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin health_soak
//! cargo run --release -p haocl-bench --bin health_soak -- --rounds 8 \
//!     --json out.json --metrics metrics.prom --audit audit.log --top top.json
//! ```
//!
//! A 3-GPU fleet warms up healthy, then one node is silently throttled
//! 3× (its descriptor keeps advertising full speed). The process exits
//! nonzero when any gate fails:
//!
//! * **detection** — the drift detector flags the sick node within a
//!   bounded number of launches;
//! * **avoidance** — ≥ 90% of post-detection placements land on the
//!   healthy peers (the degraded node stays a candidate, advisory);
//! * **consistency** — the output buffer is byte-identical to the
//!   healthy reference at the completed launch count;
//! * **recovery** — the verdict clears once the node re-qualifies at
//!   full speed.
//!
//! `--top` writes the embedded `haocl-top --report json` snapshot — the
//! artifact the nightly `degraded-soak` CI job uploads.

use haocl_bench::health_soak;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let rounds: usize = arg_after("--rounds")
        .map(|v| v.parse().expect("--rounds takes a number"))
        .unwrap_or(8);
    let json_path = arg_after("--json");
    let metrics_path = arg_after("--metrics");
    let audit_path = arg_after("--audit");
    let top_path = arg_after("--top");

    println!("Health soak — 3-GPU fleet, node1 silently throttled 3x, {rounds} probe rounds");
    println!();
    let report = health_soak::run(rounds).expect("health soak run");

    println!(
        "detection: {}",
        report
            .detection_launches
            .map_or("NEVER".to_string(), |n| format!("{n} launches"))
    );
    println!(
        "post-detection placements: {} total, {} on the sick node ({:.0}% avoided; gate >= 90%)",
        report.post_total,
        report.post_on_sick,
        report.avoidance * 100.0
    );
    println!(
        "recovery: {}   output: {}   launches: {}",
        if report.recovered { "ok" } else { "STUCK" },
        if report.consistent {
            "byte-identical"
        } else {
            "MISMATCH"
        },
        report.launches
    );

    let write_to = |path: &Option<String>, body: &str| {
        if let Some(path) = path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create output directory");
                }
            }
            std::fs::write(path, body).expect("write output file");
            println!("wrote {path}");
        }
    };
    write_to(&metrics_path, &report.metrics);
    write_to(&audit_path, &report.audit);
    write_to(&top_path, &format!("{}\n", report.top_json));
    if json_path.is_some() {
        let violations: Vec<String> = report
            .violations
            .iter()
            .map(|v| format!("    \"{}\"", v.replace('"', "'")))
            .collect();
        let body = format!(
            concat!(
                "{{\n  \"soak\": \"health\",\n  \"rounds\": {},\n",
                "  \"detection_launches\": {},\n  \"post_total\": {},\n",
                "  \"post_on_sick\": {},\n  \"avoidance\": {:.4},\n",
                "  \"recovered\": {},\n  \"consistent\": {},\n",
                "  \"launches\": {},\n  \"violations\": [\n{}\n  ]\n}}\n"
            ),
            rounds,
            report
                .detection_launches
                .map_or("null".to_string(), |n| n.to_string()),
            report.post_total,
            report.post_on_sick,
            report.avoidance,
            report.recovered,
            report.consistent,
            report.launches,
            if violations.is_empty() {
                String::new()
            } else {
                violations.join(",\n")
            },
        );
        write_to(&json_path, &body);
    }

    if report.violations.is_empty() {
        println!();
        println!("all gates passed");
    } else {
        eprintln!();
        for v in &report.violations {
            eprintln!("GATE VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
