//! Regenerates the §IV-C heterogeneity evaluation: MatrixMul (same
//! kernel, split data) and SpMV (partition stage on GPUs, compute stage
//! on FPGAs) on growing mixed clusters.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin hetero
//! ```

use haocl_bench::{hetero, text::render_table};
use haocl_workloads::RunOptions;

fn main() {
    let clusters = [(1usize, 1usize), (2, 1), (2, 2), (4, 2), (4, 4), (8, 4)];
    let rows = hetero::rows(&clusters, &RunOptions::modeled_resident()).expect("hetero rows");
    println!("Heterogeneity evaluation (§IV-C) — mixed GPU+FPGA clusters");
    println!();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.label.clone(),
                format!("{}G+{}F", r.gpus, r.fpgas),
                format!("{}", r.makespan),
                format!("{:.2}x", r.speedup),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["workload", "cluster", "makespan", "speedup"], &table)
    );
    println!();
    println!("(speedups are relative to the smallest mixed cluster of each series)");
}
