//! Measures the abstract's claim that HaoCL "imposes a negligible
//! overhead": every benchmark on one GPU node, native vs through the
//! HaoCL wrapper + Gigabit backbone.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin overhead
//! ```

use haocl_bench::{overhead, text::render_table};
use haocl_workloads::{RunOptions, Workload};

fn main() {
    let rows =
        overhead::rows(&Workload::paper_suite(), &RunOptions::modeled()).expect("overhead rows");
    println!("Single-node overhead: HaoCL vs native OpenCL (virtual time)");
    println!();
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                format!("{}", r.local),
                format!("{}", r.haocl_colocated),
                format!("{:+.2}%", r.overhead_pct),
                format!("{}", r.haocl_remote),
                format!("{:+.2}%", r.remote_overhead_pct),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &[
                "app",
                "Local (native)",
                "HaoCL (co-located)",
                "overhead",
                "HaoCL (remote host)",
                "overhead",
            ],
            &table
        )
    );
    println!();
    println!(
        "(co-located = the paper's single-node deployment, host on the device\n\
         node; remote = host on a separate machine, so the input crosses the\n\
         Gigabit link — dominated by data shipping for I/O-bound apps)"
    );
}
