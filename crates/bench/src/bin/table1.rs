//! Regenerates Table I: benchmark applications and input sizes.
//!
//! ```text
//! cargo run -p haocl-bench --bin table1
//! ```

use haocl_bench::text::render_table;
use haocl_workloads::table::table1;

fn main() {
    println!("Table I — Benchmark applications");
    println!();
    let rows: Vec<Vec<String>> = table1()
        .into_iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.description.to_string(),
                r.paper_input_size.to_string(),
                format!("{:.0} MB", r.generated_bytes as f64 / 1e6),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["App.", "Description", "Paper size", "Generated"], &rows)
    );
}
