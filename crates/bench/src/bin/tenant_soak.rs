//! Multi-tenant serving-plane soak with CI gates.
//!
//! ```text
//! cargo run --release -p haocl-bench --bin tenant_soak
//! cargo run --release -p haocl-bench --bin tenant_soak -- --rounds 12 \
//!     --json out.json --trace trace.json --metrics metrics.prom --audit audit.log
//! ```
//!
//! Four synthetic tenants (two equal-weight, one weight-2, one hog
//! oversubmitting a bounded queue) share a 2-GPU cluster through the
//! serving plane for a fixed virtual-compute budget. The process exits
//! nonzero when any gate fails:
//!
//! * **no starvation** — every tenant's completed count > 0;
//! * **fairness** — equal-weight tenants' completed compute within 1.5×
//!   over the contended window;
//! * **admission** — the hog was shed (bounded queues held);
//! * **consistency** — each tenant's buffer matches its completed
//!   count, and `submitted == completed (+ pending)` per tenant.
//!
//! `HAOCL_CHAOS_SPEC` / `HAOCL_CHAOS_SEED` arm fault injection exactly
//! as for every cluster launch — the nightly chaos matrix re-runs this
//! soak with a crash+lossy spec while the tenants are active.

use haocl_bench::{tenant_soak, text::render_table};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let arg_after = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let rounds: usize = arg_after("--rounds")
        .map(|v| v.parse().expect("--rounds takes a number"))
        .unwrap_or(8);
    let json_path = arg_after("--json");
    let trace_path = arg_after("--trace");
    let metrics_path = arg_after("--metrics");
    let audit_path = arg_after("--audit");

    println!("Tenant soak — {rounds} contended rounds, 4 tenants on a 2-GPU cluster");
    println!();
    let report = tenant_soak::run(rounds).expect("tenant soak run");

    let table: Vec<Vec<String>> = report
        .rows
        .iter()
        .map(|r| {
            vec![
                r.name.to_string(),
                r.weight.to_string(),
                r.submitted.to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.3}ms", r.compute_nanos as f64 / 1e6),
                r.mem_bytes.to_string(),
                if r.consistent { "ok" } else { "MISMATCH" }.to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "tenant",
                "weight",
                "submitted",
                "completed",
                "shed",
                "compute",
                "mem",
                "digest"
            ],
            &table
        )
    );
    println!();
    println!(
        "equal-weight fairness ratio: {:.3} (gate <= 1.5)   weight-2 ratio: {:.3}",
        report.fairness_ratio, report.weighted_ratio
    );
    if !report.chaos_schedule.is_empty() {
        println!("chaos faults injected: {}", report.chaos_schedule.len());
        for line in &report.chaos_schedule {
            println!("  {line}");
        }
    }

    let write_to = |path: &Option<String>, body: &str| {
        if let Some(path) = path {
            if let Some(dir) = std::path::Path::new(path).parent() {
                if !dir.as_os_str().is_empty() {
                    std::fs::create_dir_all(dir).expect("create output directory");
                }
            }
            std::fs::write(path, body).expect("write output file");
            println!("wrote {path}");
        }
    };
    write_to(&trace_path, &report.trace_json);
    write_to(&metrics_path, &report.metrics);
    write_to(&audit_path, &report.audit);
    if json_path.is_some() {
        let records: Vec<String> = report
            .rows
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"tenant\": \"{}\", \"weight\": {}, \"submitted\": {}, ",
                        "\"completed\": {}, \"shed\": {}, \"compute_nanos\": {}, ",
                        "\"contended_compute_nanos\": {}, \"mem_bytes\": {}, ",
                        "\"digest\": \"{:016x}\", \"consistent\": {}}}"
                    ),
                    r.name,
                    r.weight,
                    r.submitted,
                    r.completed,
                    r.shed,
                    r.compute_nanos,
                    r.contended_compute_nanos,
                    r.mem_bytes,
                    r.digest,
                    r.consistent,
                )
            })
            .collect();
        let violations: Vec<String> = report
            .violations
            .iter()
            .map(|v| format!("    \"{}\"", v.replace('"', "'")))
            .collect();
        let body = format!(
            concat!(
                "{{\n  \"soak\": \"tenant\",\n  \"rounds\": {},\n",
                "  \"fairness_ratio\": {:.4},\n  \"weighted_ratio\": {:.4},\n",
                "  \"tenants\": [\n{}\n  ],\n  \"violations\": [\n{}\n  ]\n}}\n"
            ),
            rounds,
            report.fairness_ratio,
            report.weighted_ratio,
            records.join(",\n"),
            if violations.is_empty() {
                String::new()
            } else {
                violations.join(",\n")
            },
        );
        write_to(&json_path, &body);
    }

    if report.violations.is_empty() {
        println!();
        println!("all gates passed");
    } else {
        eprintln!();
        for v in &report.violations {
            eprintln!("GATE VIOLATION: {v}");
        }
        std::process::exit(1);
    }
}
