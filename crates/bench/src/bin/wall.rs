//! Wall-clock hot-path report: real requests/sec and p50/p99 latency
//! for the VM engines (interpreter vs compiled, per paper kernel) and
//! the wire framing strategies (copy vs pooled).
//!
//! ```text
//! cargo run --release -p haocl-bench --bin wall
//! cargo run --release -p haocl-bench --bin wall -- --iters 200 \
//!     --json-vm results/BENCH_wall_vm.json \
//!     --json-wire results/BENCH_wall_wire.json
//! ```
//!
//! The nightly `wall-bench` CI job uploads both JSON artifacts and
//! gates the compiled engine at ≥ 2× the interpreter summed across the
//! five paper kernels.

use haocl_bench::text::render_table;
use haocl_bench::wall::{self, LatencyStats};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let flag_value = |flag: &str| {
        args.iter().position(|a| a == flag).map(|i| {
            args.get(i + 1).cloned().unwrap_or_else(|| {
                eprintln!("{flag} requires a value");
                std::process::exit(2);
            })
        })
    };
    let iters: usize = flag_value("--iters")
        .map(|v| v.parse().expect("--iters takes a number"))
        .unwrap_or(60);
    let json_vm = flag_value("--json-vm");
    let json_wire = flag_value("--json-wire");

    println!("Wall-clock hot path — real time, not the virtual models");
    println!();

    let vm = wall::vm_rows(iters).unwrap_or_else(|e| {
        eprintln!("VM wall bench failed: {e}");
        std::process::exit(1);
    });
    let table: Vec<Vec<String>> = vm
        .iter()
        .map(|r| {
            vec![
                r.app.to_string(),
                r.engine.to_string(),
                format!("{:.0}", r.stats.requests_per_sec()),
                format!("{}", r.stats.p50_nanos),
                format!("{}", r.stats.p99_nanos),
                format!("{:#018x}", r.digest),
            ]
        })
        .collect();
    println!("== VM engines ({iters} launches each) ==");
    print!(
        "{}",
        render_table(
            &["app", "engine", "req/s", "p50 ns", "p99 ns", "digest"],
            &table
        )
    );
    println!();
    println!("compiled vs interpreter:");
    for (app, speedup) in wall::speedups(&vm) {
        println!("  {app}: {speedup:.2}x");
    }
    println!();

    let wire = wall::wire_rows(iters.max(200));
    let table: Vec<Vec<String>> = wire
        .iter()
        .map(|r| {
            vec![
                r.payload.to_string(),
                r.payload_bytes.to_string(),
                r.path.to_string(),
                format!("{:.0}", r.stats.requests_per_sec()),
                format!("{}", r.stats.p50_nanos),
                format!("{}", r.stats.p99_nanos),
            ]
        })
        .collect();
    println!("== Wire framing (encode → segment → reassemble) ==");
    print!(
        "{}",
        render_table(
            &["payload", "bytes", "path", "req/s", "p50 ns", "p99 ns"],
            &table
        )
    );

    if let Some(path) = json_vm {
        let rows: Vec<String> = vm
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"app\": \"{}\", \"engine\": \"{}\", {}, ",
                        "\"digest\": \"{:#018x}\"}}"
                    ),
                    r.app,
                    r.engine,
                    stats_json(&r.stats),
                    r.digest,
                )
            })
            .collect();
        let speedups: Vec<String> = wall::speedups(&vm)
            .iter()
            .map(|(app, s)| format!("\"{app}\": {s:.4}"))
            .collect();
        let body = format!(
            concat!(
                "{{\n  \"bench\": \"wall_vm\",\n  \"iters\": {},\n",
                "  \"compiled_speedup\": {{{}}},\n  \"rows\": [\n{}\n  ]\n}}\n"
            ),
            iters,
            speedups.join(", "),
            rows.join(",\n"),
        );
        write_artifact(&path, &body);
    }
    if let Some(path) = json_wire {
        let rows: Vec<String> = wire
            .iter()
            .map(|r| {
                format!(
                    concat!(
                        "    {{\"payload\": \"{}\", \"payload_bytes\": {}, ",
                        "\"path\": \"{}\", {}}}"
                    ),
                    r.payload,
                    r.payload_bytes,
                    r.path,
                    stats_json(&r.stats),
                )
            })
            .collect();
        let body = format!(
            "{{\n  \"bench\": \"wall_wire\",\n  \"rows\": [\n{}\n  ]\n}}\n",
            rows.join(",\n"),
        );
        write_artifact(&path, &body);
    }
}

fn stats_json(s: &LatencyStats) -> String {
    format!(
        concat!(
            "\"requests\": {}, \"total_nanos\": {}, \"requests_per_sec\": {:.2}, ",
            "\"p50_nanos\": {}, \"p99_nanos\": {}"
        ),
        s.requests,
        s.total_nanos,
        s.requests_per_sec(),
        s.p50_nanos,
        s.p99_nanos,
    )
}

fn write_artifact(path: &str, body: &str) {
    if let Some(dir) = std::path::Path::new(path).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).expect("create output directory");
        }
    }
    std::fs::write(path, body).expect("write output file");
    println!("wrote {path}");
}
