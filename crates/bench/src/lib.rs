//! The benchmark harness: functions that regenerate every table and
//! figure of the HaoCL paper, shared by the report binaries
//! (`cargo run -p haocl-bench --bin fig2` etc.) and the Criterion
//! benches.
//!
//! | Paper artefact | Harness entry | Binary |
//! |----------------|---------------|--------|
//! | Table I        | [`haocl_workloads::table::table1`] | `table1` |
//! | Fig. 2 (end-to-end speedup) | [`fig2::rows`] | `fig2` |
//! | Fig. 2 heterogeneity series (§IV-C) | [`hetero::rows`] | `hetero` |
//! | Fig. 3 (MatrixMul breakdown) | [`fig3::rows`] | `fig3` |
//! | "negligible overhead" claim | [`overhead::rows`] | `overhead` |
//! | Design ablations (ours) | [`ablations`] | `ablations` |
//!
//! Absolute numbers come from the virtual-time models, not the authors'
//! testbed; the *shapes* (who wins, by what factor, where curves bend)
//! are the reproduction target. See `EXPERIMENTS.md`.

pub mod text;
pub mod wall;

use haocl::{DeviceKind, Error, Platform};
use haocl_cluster::ClusterConfig;
use haocl_workloads::{registry_with_all, RunOptions, RunReport, Workload};

/// Runs a workload under HaoCL on a synthetic cluster.
///
/// # Errors
///
/// Propagates driver failures.
pub fn run_haocl(
    config: &ClusterConfig,
    workload: &Workload,
    opts: &RunOptions,
) -> Result<RunReport, Error> {
    let platform = Platform::cluster(config, registry_with_all())?;
    workload.run(&platform, opts)
}

/// Fig. 2: end-to-end speedup over a single native GPU node.
pub mod fig2 {
    use super::*;
    use haocl_baselines::{run_local, SnuClD, System};
    use haocl_sim::SimDuration;

    /// One measured point of Fig. 2.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub app: &'static str,
        /// The system/cluster series (e.g. "HaoCL-GPU").
        pub series: String,
        /// Device-node count.
        pub nodes: usize,
        /// End-to-end virtual time.
        pub makespan: SimDuration,
        /// Speedup over the single-node Local-GPU run of the same app.
        pub speedup: f64,
        /// Self-relative scaling: speedup of this series' point over the
        /// same series at 1 node (how the curve bends as nodes grow).
        pub scaling: f64,
        /// Per-phase breakdown of the run (virtual time per category).
        pub phases: haocl_sim::PhaseBreakdown,
    }

    /// Produces Fig. 2's series for `workload` at the given node counts:
    /// Local-GPU (1), HaoCL-GPU, HaoCL-FPGA, HaoCL-Hetero (half/half) and
    /// SnuCL-D (GPU nodes; absent for CFD, which SnuCL-D cannot run).
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn rows(
        workload: &Workload,
        node_counts: &[usize],
        opts: &RunOptions,
    ) -> Result<Vec<Row>, Error> {
        let mut rows = Vec::new();
        let local = run_local(&[DeviceKind::Gpu], workload, opts)?;
        let base = local.makespan;
        rows.push(Row {
            app: workload.name(),
            series: format!("{}-GPU", System::LocalNative),
            nodes: 1,
            makespan: base,
            speedup: 1.0,
            scaling: 1.0,
            phases: local.phases.clone(),
        });
        let local_fpga = run_local(&[DeviceKind::Fpga], workload, opts)?;
        rows.push(Row {
            app: workload.name(),
            series: format!("{}-FPGA", System::LocalNative),
            nodes: 1,
            makespan: local_fpga.makespan,
            speedup: ratio(base, local_fpga.makespan),
            scaling: 1.0,
            phases: local_fpga.phases.clone(),
        });
        let mut series_base: std::collections::HashMap<&'static str, SimDuration> =
            std::collections::HashMap::new();
        for &n in node_counts {
            let mut push = |series: &'static str, rows: &mut Vec<Row>, report: &RunReport| {
                let first = *series_base.entry(series).or_insert(report.makespan);
                rows.push(Row {
                    app: workload.name(),
                    series: series.to_string(),
                    nodes: n,
                    makespan: report.makespan,
                    speedup: ratio(base, report.makespan),
                    scaling: ratio(first, report.makespan),
                    phases: report.phases.clone(),
                });
            };
            let gpu = run_haocl(&ClusterConfig::gpu_cluster(n), workload, opts)?;
            push("HaoCL-GPU", &mut rows, &gpu);
            let fpga = run_haocl(&ClusterConfig::fpga_cluster(n), workload, opts)?;
            push("HaoCL-FPGA", &mut rows, &fpga);
            if n >= 2 {
                let hetero = run_haocl(
                    &ClusterConfig::hetero_cluster(n - n / 2, n / 2),
                    workload,
                    opts,
                )?;
                push("HaoCL-Hetero", &mut rows, &hetero);
            }
            if !matches!(workload, Workload::Cfd(_)) {
                // SnuCL-D re-executes the host program on every node, so
                // its redundant data placement is paid on every run —
                // steady-state residency does not apply to it.
                let snucl_opts = RunOptions {
                    data_resident: false,
                    ..*opts
                };
                let snucl =
                    SnuClD::new().run(&ClusterConfig::gpu_cluster(n), workload, &snucl_opts)?;
                push("SnuCL-D", &mut rows, &snucl);
            }
        }
        Ok(rows)
    }

    fn ratio(base: SimDuration, this: SimDuration) -> f64 {
        base.as_secs_f64() / this.as_secs_f64()
    }
}

/// Fig. 3: MatrixMul runtime breakdown by phase.
pub mod fig3 {
    use super::*;
    use haocl_sim::{Phase, SimDuration};
    use haocl_workloads::matmul::MatmulConfig;

    /// One bar of Fig. 3.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Matrix dimension.
        pub size: usize,
        /// GPU-node count.
        pub nodes: usize,
        /// Data creation time.
        pub data_create: SimDuration,
        /// Kernel compute wall time (devices run in parallel, so this is
        /// the per-phase device time divided by the node count).
        pub compute: SimDuration,
        /// Host↔node data transfer time.
        pub data_transfer: SimDuration,
        /// System initialization (reported as negligible in the paper).
        pub init: SimDuration,
        /// End-to-end makespan.
        pub total: SimDuration,
    }

    /// Reproduces Fig. 3: one row per (matrix size, node count).
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn rows(
        sizes: &[usize],
        node_counts: &[usize],
        opts: &RunOptions,
    ) -> Result<Vec<Row>, Error> {
        let mut out = Vec::new();
        for &size in sizes {
            for &nodes in node_counts {
                let report = run_haocl(
                    &ClusterConfig::gpu_cluster(nodes),
                    &Workload::MatrixMul(MatmulConfig::with_n(size)),
                    opts,
                )?;
                out.push(Row {
                    size,
                    nodes,
                    data_create: report.phases.time(Phase::DataCreate),
                    compute: report.phases.time(Phase::Compute) / nodes as u64,
                    data_transfer: report.phases.time(Phase::DataTransfer),
                    init: report.phases.time(Phase::Init),
                    total: report.makespan,
                });
            }
        }
        Ok(out)
    }
}

/// §IV-C heterogeneity evaluation: MM data-split and SpMV stage-split on
/// mixed clusters.
pub mod hetero {
    use super::*;
    use haocl_sim::SimDuration;
    use haocl_workloads::matmul::MatmulConfig;
    use haocl_workloads::spmv::{self, SpmvConfig};

    /// One measured point of the heterogeneity evaluation.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name plus distribution strategy.
        pub label: String,
        /// GPU nodes in the cluster.
        pub gpus: usize,
        /// FPGA nodes in the cluster.
        pub fpgas: usize,
        /// End-to-end virtual time.
        pub makespan: SimDuration,
        /// Speedup over the smallest mixed cluster measured.
        pub speedup: f64,
    }

    /// MatrixMul (same kernel, split data) and SpMV (partition stage on
    /// GPUs, compute stage on FPGAs) across growing mixed clusters.
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn rows(cluster_sizes: &[(usize, usize)], opts: &RunOptions) -> Result<Vec<Row>, Error> {
        let mut out = Vec::new();
        let mm = Workload::MatrixMul(MatmulConfig::paper_scale());
        let mut mm_base: Option<SimDuration> = None;
        for &(gpus, fpgas) in cluster_sizes {
            let report = run_haocl(&ClusterConfig::hetero_cluster(gpus, fpgas), &mm, opts)?;
            let base = *mm_base.get_or_insert(report.makespan);
            out.push(Row {
                label: "MM (data split)".to_string(),
                gpus,
                fpgas,
                makespan: report.makespan,
                speedup: base.as_secs_f64() / report.makespan.as_secs_f64(),
            });
        }
        let spmv_cfg = SpmvConfig::paper_scale();
        let mut spmv_base: Option<SimDuration> = None;
        for &(gpus, fpgas) in cluster_sizes {
            let platform = Platform::cluster(
                &ClusterConfig::hetero_cluster(gpus, fpgas),
                registry_with_all(),
            )?;
            let report = spmv::run_hetero(&platform, &spmv_cfg, opts)?;
            let base = *spmv_base.get_or_insert(report.makespan);
            out.push(Row {
                label: "SpMV (stage split)".to_string(),
                gpus,
                fpgas,
                makespan: report.makespan,
                speedup: base.as_secs_f64() / report.makespan.as_secs_f64(),
            });
        }
        Ok(out)
    }
}

/// The abstract's "negligible overhead" claim: HaoCL on one node vs the
/// native local run.
pub mod overhead {
    use super::*;
    use haocl_baselines::run_local;
    use haocl_sim::SimDuration;

    /// One workload's single-node comparison.
    #[derive(Debug, Clone)]
    pub struct Row {
        /// Benchmark name.
        pub app: &'static str,
        /// Native single-node time.
        pub local: SimDuration,
        /// HaoCL with the host process co-located on the device node
        /// (the paper's single-node deployment; backbone is loopback).
        pub haocl_colocated: SimDuration,
        /// HaoCL with the host on a separate machine (Gigabit Ethernet
        /// between host and node).
        pub haocl_remote: SimDuration,
        /// Co-located overhead over native, percent (the paper's
        /// "negligible overhead" figure).
        pub overhead_pct: f64,
        /// Remote-node overhead over native, percent (dominated by input
        /// shipping for I/O-bound workloads).
        pub remote_overhead_pct: f64,
    }

    /// Measures every workload on one GPU node: native, HaoCL co-located
    /// and HaoCL with a remote host.
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn rows(workloads: &[Workload], opts: &RunOptions) -> Result<Vec<Row>, Error> {
        let mut out = Vec::new();
        for w in workloads {
            let local = run_local(&[DeviceKind::Gpu], w, opts)?;
            let colocated = run_haocl(&ClusterConfig::colocated_single(DeviceKind::Gpu), w, opts)?;
            let remote = run_haocl(&ClusterConfig::gpu_cluster(1), w, opts)?;
            let pct =
                |t: SimDuration| (t.as_secs_f64() / local.makespan.as_secs_f64() - 1.0) * 100.0;
            out.push(Row {
                app: w.name(),
                local: local.makespan,
                haocl_colocated: colocated.makespan,
                haocl_remote: remote.makespan,
                overhead_pct: pct(colocated.makespan),
                remote_overhead_pct: pct(remote.makespan),
            });
        }
        Ok(out)
    }
}

/// A traced fig2-style configuration run: produces the observability
/// artifacts (`trace.json`, `metrics.prom`, scheduler audit log) that the
/// nightly bench workflow uploads and `fig2 --json` summarizes.
pub mod probe {
    use super::*;
    use haocl::auto::AutoScheduler;
    use haocl::{Context, DeviceType, Kernel, Program};
    use haocl_kernel::{CostModel, NdRange};
    use haocl_sched::policies;
    use haocl_workloads::matmul::MatmulConfig;

    /// Observability artifacts of one traced probe run.
    #[derive(Debug, Clone)]
    pub struct Artifacts {
        /// Chrome trace-event JSON (load in `chrome://tracing`/Perfetto,
        /// or replay with `haocl-trace`).
        pub trace_json: String,
        /// Prometheus text-format metrics dump.
        pub metrics: String,
        /// Scheduler decision audit log, one line per placement.
        pub audit: String,
        /// Placement counts by (kernel, winning device kind).
        pub audit_summary: std::collections::BTreeMap<(String, String), u64>,
    }

    /// Runs one fig2 configuration (MatrixMul on a 2+2 hetero cluster)
    /// with tracing enabled, then an auto-scheduled kernel burst on the
    /// same platform so the decision audit log has placements to report
    /// (the workload drivers pick devices explicitly and never consult
    /// the scheduler).
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn run() -> Result<Artifacts, Error> {
        let platform =
            Platform::cluster(&ClusterConfig::hetero_cluster(2, 2), registry_with_all())?;
        platform.set_tracing(true);
        let workload = Workload::MatrixMul(MatmulConfig::with_n(1024));
        workload.run(&platform, &RunOptions::modeled())?;
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new()))?;
        let program = Program::with_bitstream_kernels(&ctx, [haocl_workloads::matmul::KERNEL_NAME]);
        program.build()?;
        let kernel = Kernel::new(&program, haocl_workloads::matmul::KERNEL_NAME)?;
        kernel.set_fidelity(haocl::Fidelity::Modeled);
        kernel.set_cost(CostModel::new().flops(2e11).bytes_read(1e9));
        bind_dummy_args(&ctx, &kernel)?;
        for _ in 0..4 {
            auto.launch(&kernel, NdRange::linear(1024, 64))?;
        }
        Ok(Artifacts {
            trace_json: platform.export_chrome_trace(),
            metrics: platform.render_metrics(),
            audit: platform.render_audit_log(),
            audit_summary: platform.obs().audit.summary(),
        })
    }

    fn bind_dummy_args(ctx: &Context, kernel: &Kernel) -> Result<(), Error> {
        use haocl::{Buffer, MemFlags};
        let dummy = Buffer::new_modeled(ctx, MemFlags::READ_WRITE, 1024)?;
        for i in 0..kernel.arity() {
            if kernel.set_arg_buffer(i, &dummy).is_err() {
                kernel.set_arg_i32(i, 0)?;
            }
        }
        Ok(())
    }
}

/// Design-choice ablations beyond the paper's figures.
pub mod ablations {
    use super::*;
    use haocl::auto::AutoScheduler;
    use haocl::{CommandQueue, Context, DeviceType, Kernel, Program};
    use haocl_kernel::{CostModel, NdRange};
    use haocl_net::LinkModel;
    use haocl_sched::policies;
    use haocl_sched::SchedulingPolicy;
    use haocl_sim::{SimDuration, SimTime};
    use haocl_workloads::matmul::MatmulConfig;

    /// Scheduler-policy ablation: the virtual makespan of a burst of
    /// mixed kernels (dense batch + streaming) on a mixed cluster under
    /// each built-in policy.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn scheduler_policies(launches: usize) -> Result<Vec<(String, SimDuration)>, Error> {
        let mk_policy = |name: &str| -> Box<dyn SchedulingPolicy> {
            match name {
                "round-robin" => Box::new(policies::RoundRobin::new()),
                "least-loaded" => Box::new(policies::LeastLoaded::new()),
                "hetero-aware" => Box::new(policies::HeteroAware::new()),
                "power-aware" => Box::new(policies::PowerAware::new()),
                other => unreachable!("unknown policy {other}"),
            }
        };
        let mut out = Vec::new();
        for name in ["round-robin", "least-loaded", "hetero-aware", "power-aware"] {
            let platform =
                Platform::cluster(&ClusterConfig::hetero_cluster(2, 2), registry_with_all())?;
            let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
            let auto = AutoScheduler::new(&ctx, mk_policy(name))?;
            let program = Program::with_bitstream_kernels(
                &ctx,
                [
                    haocl_workloads::matmul::KERNEL_NAME,
                    haocl_workloads::spmv::KERNEL_NAME,
                ],
            );
            program.build()?;
            // Argument-less modeled launches: the ablation studies pure
            // placement quality, so kernels carry costs only.
            let dense = Kernel::new(&program, haocl_workloads::matmul::KERNEL_NAME)?;
            dense.set_fidelity(haocl::Fidelity::Modeled);
            dense.set_cost(CostModel::new().flops(2e11).bytes_read(1e9));
            bind_dummy_args(&ctx, &dense)?;
            let stream = Kernel::new(&program, haocl_workloads::spmv::KERNEL_NAME)?;
            stream.set_fidelity(haocl::Fidelity::Modeled);
            stream.set_cost(CostModel::new().flops(5e10).bytes_read(5e8).streaming());
            bind_dummy_args(&ctx, &stream)?;
            let mut last = SimTime::ZERO;
            for i in 0..launches {
                let k = if i % 2 == 0 { &dense } else { &stream };
                let (event, _) = auto.launch(k, NdRange::linear(1024, 64))?;
                last = last.max(event.finished_at());
            }
            out.push((
                name.to_string(),
                last.saturating_duration_since(SimTime::ZERO),
            ));
        }
        Ok(out)
    }

    fn bind_dummy_args(ctx: &Context, kernel: &Kernel) -> Result<(), Error> {
        use haocl::{Buffer, MemFlags};
        let dummy = Buffer::new_modeled(ctx, MemFlags::READ_WRITE, 1024)?;
        for i in 0..kernel.arity() {
            // Buffers for pointer params, zeros for scalars: modeled
            // launches never execute, so types only need to be plausible.
            if kernel.set_arg_buffer(i, &dummy).is_err() {
                kernel.set_arg_i32(i, 0)?;
            }
        }
        Ok(())
    }

    /// Result of the [`pipelining`] ablation.
    #[derive(Debug, Clone, Copy)]
    pub struct PipeliningAblation {
        /// Fan-out makespan claiming each response before the next
        /// submit (the paper's synchronous host semantics).
        pub synchronous: SimDuration,
        /// Fan-out makespan submitting every launch before claiming any
        /// response (the pipelined backbone).
        pub pipelined: SimDuration,
    }

    impl PipeliningAblation {
        /// How much faster the pipelined backbone finishes the fan-out.
        pub fn speedup(&self) -> f64 {
            self.synchronous.as_secs_f64() / self.pipelined.as_secs_f64()
        }
    }

    /// Pipelining ablation (the asynchronous backbone's win): a fan-out
    /// of independent modeled launches — one kernel and one buffer per
    /// GPU node, `rounds` launches each — timed under both host
    /// semantics on fresh clusters.
    ///
    /// The NMP acks a launch as soon as it schedules it (device time is
    /// projected), so what a synchronous host serializes on is the
    /// control-plane round trip, not the compute. The ablation therefore
    /// models a rack-scale link with visible latency and keeps the
    /// kernels tiny: synchronously every launch in the fan-out pays a
    /// full round trip back-to-back (`nodes * rounds` trips); pipelined,
    /// the requests of a round stream out together and the makespan
    /// collapses to one round trip per round.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn pipelining(nodes: usize, rounds: usize) -> Result<PipeliningAblation, Error> {
        let run = |pipelined: bool| -> Result<SimDuration, Error> {
            let mut config = ClusterConfig::gpu_cluster(nodes);
            config.link = LinkModel::custom(1.25e9, SimDuration::from_micros(200));
            let platform = Platform::cluster(&config, registry_with_all())?;
            let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
            let program =
                Program::with_bitstream_kernels(&ctx, [haocl_workloads::matmul::KERNEL_NAME]);
            program.build()?;
            // One kernel + queue + buffer per device: the launches are
            // mutually independent, so only the host semantics decide
            // whether the round trips overlap.
            let mut lanes = Vec::new();
            for device in ctx.devices() {
                let kernel = Kernel::new(&program, haocl_workloads::matmul::KERNEL_NAME)?;
                kernel.set_fidelity(haocl::Fidelity::Modeled);
                kernel.set_cost(CostModel::new().flops(1e6));
                bind_dummy_args(&ctx, &kernel)?;
                lanes.push((CommandQueue::new(&ctx, device)?, kernel));
            }
            // Warm-up round outside the timed region: loads the
            // bitstream on every node and stages the dummy buffers, so
            // both runs time the steady-state fan-out alone.
            for (queue, kernel) in &lanes {
                queue
                    .enqueue_nd_range_kernel(kernel, NdRange::linear(1024, 64))?
                    .wait()?;
            }
            let t0 = platform.now();
            for _ in 0..rounds {
                for (queue, kernel) in &lanes {
                    let event = queue.enqueue_nd_range_kernel(kernel, NdRange::linear(1024, 64))?;
                    if !pipelined {
                        event.wait()?;
                    }
                }
            }
            for (queue, _) in &lanes {
                queue.finish();
            }
            Ok(platform.now().saturating_duration_since(t0))
        };
        Ok(PipeliningAblation {
            synchronous: run(false)?,
            pipelined: run(true)?,
        })
    }

    /// Network-bandwidth ablation: MatrixMul makespan on 8 GPU nodes as
    /// the interconnect scales from 1 to 100 Gb/s.
    ///
    /// # Errors
    ///
    /// Propagates driver failures.
    pub fn network_bandwidth(gbps_points: &[f64]) -> Result<Vec<(f64, SimDuration)>, Error> {
        let mut out = Vec::new();
        for &gbps in gbps_points {
            let mut config = ClusterConfig::gpu_cluster(8);
            config.link = LinkModel::custom(gbps * 125.0e6, config.link.latency);
            let report = run_haocl(
                &config,
                &Workload::MatrixMul(MatmulConfig::paper_scale()),
                &RunOptions::modeled(),
            )?;
            out.push((gbps, report.makespan));
        }
        Ok(out)
    }

    /// One measured configuration of the [`locality`] ablation.
    #[derive(Debug, Clone)]
    pub struct LocalityRow {
        /// Workload the kernels come from (`"BFS"` or `"CFD"`).
        pub app: &'static str,
        /// `"locality-aware"` or `"locality-blind"`.
        pub config: &'static str,
        /// Time spent in the `DataTransfer` phase over the launch loop.
        pub data_transfer: SimDuration,
        /// Bytes relayed through the host during the launch loop
        /// (`haocl_dataplane_bytes_total{path="host_relay"}` delta).
        pub relay_bytes: u64,
        /// Bytes moved NMP-to-NMP during the launch loop
        /// (`haocl_dataplane_bytes_total{path="peer"}` delta).
        pub peer_bytes: u64,
        /// FNV-1a digest of the output buffer read back after the loop.
        /// Must match across configs: placement may move data, never
        /// change results.
        pub digest: u64,
    }

    /// Locality ablation (the residency-aware data plane's win): a loop
    /// of real (full-fidelity) workload kernel launches on a 2-GPU
    /// cluster, auto-scheduled under two configurations:
    ///
    /// * `locality-aware` — the default data plane: the
    ///   [`policies::LocalityAware`] policy keeps each launch where its
    ///   buffers already live, and peer NMP transfers are enabled.
    /// * `peer-transfer` — [`policies::RoundRobin`] bounces launches
    ///   across the nodes (forcing a migration per launch) but peer
    ///   transfers stay on, so the migrations ride NMP-to-NMP and the
    ///   host relays nothing.
    /// * `locality-blind` — [`policies::RoundRobin`] with peer
    ///   transfers disabled, so every migration of the written buffer
    ///   relays through the host (pre-residency behaviour).
    ///
    /// Inputs are staged once before the measured region; counters and
    /// the phase breakdown are snapshotted so each row covers only the
    /// launch loop. The kernels (`bfs_apply`, `cfd_flux`) are
    /// deterministic and idempotent, so both configs must produce
    /// byte-identical outputs — the digest proves placement never
    /// changed results.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn locality(iterations: usize) -> Result<Vec<LocalityRow>, Error> {
        let mut out = Vec::new();
        for app in ["BFS", "CFD"] {
            for (config, local, peer) in [
                ("locality-aware", true, true),
                ("peer-transfer", false, true),
                ("locality-blind", false, false),
            ] {
                out.push(locality_case(app, config, local, peer, iterations)?);
            }
        }
        Ok(out)
    }

    fn locality_case(
        app: &'static str,
        config: &'static str,
        local: bool,
        peer: bool,
        iterations: usize,
    ) -> Result<LocalityRow, Error> {
        use haocl::{Buffer, MemFlags};
        use haocl_obs::names;
        use haocl_sim::Phase;

        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(2), registry_with_all())?;
        platform.set_peer_transfers(peer);
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let policy: Box<dyn SchedulingPolicy> = if local {
            Box::new(policies::LocalityAware::new())
        } else {
            Box::new(policies::RoundRobin::new())
        };
        let auto = AutoScheduler::new(&ctx, policy)?;
        // Staging and read-back go through the first device's queue;
        // the launches themselves are placed by the scheduler.
        let queue = CommandQueue::new(&ctx, &ctx.devices()[0])?;

        let (kernel, global, output) = match app {
            "BFS" => {
                let n = 4096usize;
                let program = Program::with_bitstream_kernels(
                    &ctx,
                    [haocl_workloads::bfs::APPLY_KERNEL_NAME],
                );
                program.build()?;
                let kernel = Kernel::new(&program, haocl_workloads::bfs::APPLY_KERNEL_NAME)?;
                let depth = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * n as u64)?;
                let updates = Buffer::new(&ctx, MemFlags::READ_ONLY, 8 * n as u64)?;
                let mut update_list = Vec::with_capacity(2 * n);
                for i in 0..n as i32 {
                    update_list.push(i);
                    update_list.push(i % 7);
                }
                queue.enqueue_write_buffer(&depth, 0, &i32_bytes(&vec![-1; n]))?;
                queue.enqueue_write_buffer(&updates, 0, &i32_bytes(&update_list))?;
                kernel.set_arg_buffer(0, &depth)?;
                kernel.set_arg_buffer(1, &updates)?;
                kernel.set_arg_i32(2, n as i32)?;
                (kernel, n, depth)
            }
            _ => {
                let cfg = haocl_workloads::cfd::CfdConfig::test_scale();
                let (vars, neigh) = haocl_workloads::cfd::generate_state(&cfg);
                let n = cfg.cells;
                let program =
                    Program::with_bitstream_kernels(&ctx, [haocl_workloads::cfd::KERNEL_NAME]);
                program.build()?;
                let kernel = Kernel::new(&program, haocl_workloads::cfd::KERNEL_NAME)?;
                let vars_d = Buffer::new(&ctx, MemFlags::READ_ONLY, 4 * vars.len() as u64)?;
                let neigh_d = Buffer::new(&ctx, MemFlags::READ_ONLY, 4 * neigh.len() as u64)?;
                let out_d = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * vars.len() as u64)?;
                queue.enqueue_write_buffer(&vars_d, 0, &f32_bytes(&vars))?;
                queue.enqueue_write_buffer(&neigh_d, 0, &i32_bytes(&neigh))?;
                queue.enqueue_write_buffer(&out_d, 0, &vec![0u8; 4 * vars.len()])?;
                kernel.set_arg_buffer(0, &vars_d)?;
                kernel.set_arg_buffer(1, &neigh_d)?;
                kernel.set_arg_buffer(2, &out_d)?;
                kernel.set_arg_i32(3, n as i32)?;
                kernel.set_arg_i32(4, 0)?;
                kernel.set_arg_i32(5, n as i32)?;
                (kernel, n, out_d)
            }
        };

        // Measured region: snapshot the data-plane counters and phase
        // clock after staging, so both rows cover only the launch loop.
        let metrics = &platform.obs().metrics;
        let relay_label = [("path", names::PATH_HOST_RELAY)];
        let peer_label = [("path", names::PATH_PEER)];
        let relay0 = metrics.counter_value(names::DATAPLANE_BYTES, &relay_label);
        let peer0 = metrics.counter_value(names::DATAPLANE_BYTES, &peer_label);
        platform.reset_phases();

        for _ in 0..iterations {
            let (event, _) = auto.launch(&kernel, NdRange::linear(global as u64, 64))?;
            event.wait()?;
        }

        let data_transfer = platform.phase_breakdown().time(Phase::DataTransfer);
        let relay_bytes = metrics.counter_value(names::DATAPLANE_BYTES, &relay_label) - relay0;
        let peer_bytes = metrics.counter_value(names::DATAPLANE_BYTES, &peer_label) - peer0;

        // Read-back happens after the measurement window: it relays the
        // same bytes in either config and would only blur the deltas.
        let mut result = vec![0u8; output.size() as usize];
        queue.enqueue_read_buffer(&output, 0, &mut result)?;
        Ok(LocalityRow {
            app,
            config,
            data_transfer,
            relay_bytes,
            peer_bytes,
            digest: fnv1a(&result),
        })
    }

    fn i32_bytes(values: &[i32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn f32_bytes(values: &[f32]) -> Vec<u8> {
        values.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// One configuration of the [`fusion`] ablation.
    #[derive(Debug, Clone, Copy)]
    pub struct FusionRow {
        /// Workload the chain comes from (`"KNN"` or `"SpMV"`).
        pub app: &'static str,
        /// `"fused"` or `"unfused"`.
        pub config: &'static str,
        /// Kernel launches captured in the graph.
        pub nodes: usize,
        /// Wire launch commands actually issued for those nodes.
        pub wire_launches: usize,
        /// Commands saved versus one command per node.
        pub commands_saved: usize,
        /// FNV-1a digest of the output buffers read back after the
        /// graph completes. Must match across configs: fusion may
        /// collapse commands, never change results.
        pub digest: u64,
    }

    impl FusionRow {
        /// Fractional reduction in wire launch commands versus
        /// `baseline` (`0.75` = three commands in four eliminated).
        #[must_use]
        pub fn command_reduction_vs(&self, baseline: &FusionRow) -> f64 {
            if baseline.wire_launches == 0 {
                return 0.0;
            }
            1.0 - self.wire_launches as f64 / baseline.wire_launches as f64
        }
    }

    /// Kernel-fusion ablation (the effect prover's win): chains of
    /// small full-fidelity paper kernels dispatched through a
    /// [`haocl::LaunchGraph`] on a 2-GPU cluster, with the fusion
    /// prover on (`fused`) and off (`unfused`):
    ///
    /// * `KNN` — Rodinia NN's per-record distance pass (`nn_dist`),
    ///   once per query in the batch. The launches share the read-only
    ///   coordinate buffers and each writes its own distance buffer, so
    ///   the prover collapses the whole batch into one fused dispatch.
    /// * `SpMV` — the partition stage's per-row nonzero count
    ///   (`spmv_row_nnz`), once per partitioning round. Rounds share
    ///   the read-only `row_ptr` and write disjoint count buffers.
    ///
    /// Both kernels compile from the paper sources through `clc`, so
    /// the effect summaries the prover needs ride in on the kernel
    /// reports. The digest over the read-back outputs must match
    /// across configs — fusion saves wire commands, never changes
    /// bytes.
    ///
    /// # Errors
    ///
    /// Propagates launch failures.
    pub fn fusion() -> Result<Vec<FusionRow>, Error> {
        let mut out = Vec::new();
        for app in ["KNN", "SpMV"] {
            for (config, fused) in [("fused", true), ("unfused", false)] {
                out.push(fusion_case(app, config, fused)?);
            }
        }
        Ok(out)
    }

    fn fusion_case(
        app: &'static str,
        config: &'static str,
        fused: bool,
    ) -> Result<FusionRow, Error> {
        use haocl::{Buffer, LaunchGraph, MemFlags};

        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(2), registry_with_all())?;
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new()))?;
        let queue = CommandQueue::new(&ctx, &ctx.devices()[0])?;

        let mut graph = LaunchGraph::new();
        graph.set_fusion(fused);
        let outputs: Vec<Buffer> = match app {
            "KNN" => {
                let cfg = haocl_workloads::knn::KnnConfig {
                    records: 1024,
                    queries: 4,
                    k: 5,
                    seed: 42,
                };
                let (lat, lng) = haocl_workloads::knn::generate_records(&cfg);
                let (qlat, qlng) = haocl_workloads::knn::generate_queries(&cfg);
                let program = Program::from_source(&ctx, haocl_workloads::knn::KERNEL_SOURCE);
                program.build()?;
                let lat_d = Buffer::new(&ctx, MemFlags::READ_ONLY, 4 * lat.len() as u64)?;
                let lng_d = Buffer::new(&ctx, MemFlags::READ_ONLY, 4 * lng.len() as u64)?;
                queue.enqueue_write_buffer(&lat_d, 0, &f32_bytes(&lat))?;
                queue.enqueue_write_buffer(&lng_d, 0, &f32_bytes(&lng))?;
                let mut dists = Vec::with_capacity(cfg.queries);
                for q in 0..cfg.queries {
                    let dist = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * cfg.records as u64)?;
                    let kernel = Kernel::new(&program, haocl_workloads::knn::DIST_KERNEL_NAME)?;
                    kernel.set_arg_buffer(0, &lat_d)?;
                    kernel.set_arg_buffer(1, &lng_d)?;
                    kernel.set_arg_buffer(2, &dist)?;
                    kernel.set_arg_f32(3, qlat[q])?;
                    kernel.set_arg_f32(4, qlng[q])?;
                    kernel.set_arg_i32(5, cfg.records as i32)?;
                    graph.add(&kernel, NdRange::linear(cfg.records as u64, 64))?;
                    dists.push(dist);
                }
                dists
            }
            _ => {
                let cfg = haocl_workloads::spmv::SpmvConfig::test_scale();
                let m = haocl_workloads::spmv::generate_matrix(&cfg);
                let rows = m.row_ptr.len() - 1;
                let row_ptr: Vec<i32> = m.row_ptr.iter().map(|&v| v as i32).collect();
                let program = Program::from_source(&ctx, haocl_workloads::spmv::KERNEL_SOURCE);
                program.build()?;
                let ptr_d = Buffer::new(&ctx, MemFlags::READ_ONLY, 4 * row_ptr.len() as u64)?;
                queue.enqueue_write_buffer(&ptr_d, 0, &i32_bytes(&row_ptr))?;
                let rounds = 3;
                let mut counts = Vec::with_capacity(rounds);
                for _ in 0..rounds {
                    let nnz = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * rows as u64)?;
                    let kernel = Kernel::new(&program, haocl_workloads::spmv::NNZ_KERNEL_NAME)?;
                    kernel.set_arg_buffer(0, &ptr_d)?;
                    kernel.set_arg_buffer(1, &nnz)?;
                    kernel.set_arg_i32(2, rows as i32)?;
                    graph.add(&kernel, NdRange::linear(rows as u64, 64))?;
                    counts.push(nnz);
                }
                counts
            }
        };

        let report = auto.launch_graph(&graph)?;
        let mut all = Vec::new();
        for buf in &outputs {
            let mut bytes = vec![0u8; buf.size() as usize];
            queue.enqueue_read_buffer(buf, 0, &mut bytes)?;
            all.extend_from_slice(&bytes);
        }
        Ok(FusionRow {
            app,
            config,
            nodes: report.nodes,
            wire_launches: report.wire_launches,
            commands_saved: report.commands_saved,
            digest: fnv1a(&all),
        })
    }
}

/// The multi-tenant serving-plane soak: concurrent synthetic tenants
/// (mixed priorities, one hog) share one cluster through the
/// [`haocl::ServingPlane`] for a fixed virtual-compute budget, then the
/// run gates on starvation, fairness, admission control and per-tenant
/// output consistency. The CI `tenant-soak` job drives this through the
/// `tenant_soak` binary; the nightly chaos matrix re-runs it with
/// `HAOCL_CHAOS_SPEC` armed to prove the accounting survives faults.
pub mod tenant_soak {
    use super::*;
    use haocl::serve::ServingPlane;
    use haocl::{
        CommandQueue, Context, DeviceType, Kernel, MemFlags, Program, Session, TenantQuota,
        TenantSpec,
    };
    use haocl_kernel::{CostModel, NdRange};
    use haocl_sched::policies;
    use haocl_sim::SimDuration;

    /// Lanes (i32) in each tenant's private buffer.
    const LANES: usize = 64;

    /// Each completed launch advances the tenant's buffer by one
    /// deterministic, *order-sensitive* step (unlike xor, k applications
    /// are distinguishable from k±1), so the read-back digest proves the
    /// exact completed count.
    const CHURN_SRC: &str =
        "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

    /// The reference model of [`CHURN_SRC`] applied `k` times to a
    /// zero-initialised buffer.
    fn churn_ref(k: u64) -> Vec<u8> {
        let mut lanes = [0i32; LANES];
        for _ in 0..k {
            for (i, v) in lanes.iter_mut().enumerate() {
                *v = v.wrapping_mul(3).wrapping_add(i as i32);
            }
        }
        lanes.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Final per-tenant accounting of one soak run.
    #[derive(Debug, Clone)]
    pub struct TenantRow {
        /// Tenant display name.
        pub name: &'static str,
        /// Fair-share weight.
        pub weight: u32,
        /// Launches accepted by admission control.
        pub submitted: u64,
        /// Launches completed.
        pub completed: u64,
        /// Submissions shed (queue full on the hog).
        pub shed: u64,
        /// Virtual compute nanoseconds consumed in total.
        pub compute_nanos: u64,
        /// Compute nanoseconds at the contended snapshot — the quantity
        /// fairness ratios are measured over.
        pub contended_compute_nanos: u64,
        /// Device-memory bytes still charged at the end (one live
        /// buffer each).
        pub mem_bytes: u64,
        /// FNV-1a digest of the tenant's buffer read back at the end.
        pub digest: u64,
        /// Whether the digest matches [`churn_ref`] at `completed`
        /// applications.
        pub consistent: bool,
    }

    /// Everything one soak run produced: accounting, gate violations
    /// and the observability artifacts CI uploads.
    #[derive(Debug, Clone)]
    pub struct SoakReport {
        /// Per-tenant accounting, in registration order.
        pub rows: Vec<TenantRow>,
        /// max/min completed-compute ratio between the equal-weight
        /// tenants over the contended window (gate: ≤ 1.5).
        pub fairness_ratio: f64,
        /// Weight-2 tenant's compute over the equal-weight mean over
        /// the contended window (informational; ≈ 2 under contention).
        pub weighted_ratio: f64,
        /// Gate violations; empty means the run passes.
        pub violations: Vec<String>,
        /// Chrome trace-event JSON (for `haocl-trace --check`).
        pub trace_json: String,
        /// Prometheus text-format metrics dump (`haocl_tenant_*`).
        pub metrics: String,
        /// Scheduler decision audit log (tenant-labelled lines).
        pub audit: String,
        /// Injected chaos faults, one line each (empty without chaos).
        pub chaos_schedule: Vec<String>,
    }

    /// One synthetic tenant of the soak scenario.
    struct Actor {
        name: &'static str,
        weight: u32,
        /// Submissions per round.
        burst: usize,
        session: Session,
        kernel: Kernel,
        buffer: haocl::Buffer,
    }

    /// Runs the soak: four tenants (two equal-weight, one weight-2
    /// priority tenant, one hog with a tiny bounded queue that
    /// oversubmits every round) share a 2-GPU cluster for `rounds`
    /// contended scheduling rounds. Chaos opt-in via `HAOCL_CHAOS_SPEC`
    /// applies as for every cluster launch.
    ///
    /// # Errors
    ///
    /// Propagates cluster bring-up and launch failures (under chaos,
    /// recovery is expected to mask them — a surfaced failure is a real
    /// finding).
    pub fn run(rounds: usize) -> Result<SoakReport, Error> {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(2), registry_with_all())?;
        platform.set_tracing(true);
        if std::env::var("HAOCL_CHAOS_SPEC").is_ok() {
            // Peer-fed replicas are deliberately distrusted across a
            // failover (the replayed re-pull can race the crash), so a
            // crash would roll tainted buffers back to the host shadow —
            // correct but useless for digest gating. Pin the data plane
            // to the host relay: every lineage stays journal-replayable
            // and the digests must survive any schedule bit-for-bit.
            platform.set_peer_transfers(false);
        }
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let plane = ServingPlane::new(&ctx, Box::new(policies::HeteroAware::new()))?;
        let staging = CommandQueue::new(&ctx, &ctx.devices()[0])?;
        let program = Program::from_source(&ctx, CHURN_SRC);
        program.build()?;

        let buf_bytes = 4 * LANES as u64;
        let mut actors = Vec::new();
        for (name, weight, burst, max_pending) in [
            ("equal-a", 1u32, 4usize, 1024usize),
            ("equal-b", 1, 4, 1024),
            // Oversubscribed so its arrival rate never caps its share:
            // weight only shows under backlog.
            ("prio", 2, 8, 1024),
            // The hog: submits 4x the others into a queue of 8, so
            // admission control must shed it every round while the
            // fair-share tier keeps everyone else progressing.
            ("hog", 1, 16, 8),
        ] {
            let session = plane.open_session(
                TenantSpec::new(name).weight(weight).quota(
                    TenantQuota::unlimited()
                        .mem_bytes(buf_bytes)
                        .max_pending(max_pending),
                ),
            );
            let kernel = Kernel::new(&program, "churn")?;
            kernel.set_cost(CostModel::new().flops(1e8).bytes_read(buf_bytes as f64));
            let buffer = session.create_buffer(MemFlags::READ_WRITE, buf_bytes)?;
            kernel.set_arg_buffer(0, &buffer)?;
            actors.push(Actor {
                name,
                weight,
                burst,
                session,
                kernel,
                buffer,
            });
        }

        // Calibrate one launch's virtual compute time so each round's
        // drain window admits roughly half the round's submissions —
        // queues stay backlogged, which is the regime fairness is
        // defined over.
        actors[0]
            .session
            .submit(&actors[0].kernel, NdRange::linear(LANES as u64, 1))?;
        plane.drain()?;
        let per_launch = plane
            .stats(actors[0].session.tenant())
            .map_or(1, |s| s.compute_nanos.max(1));

        for _ in 0..rounds {
            for actor in &actors {
                for _ in 0..actor.burst {
                    match actor
                        .session
                        .submit(&actor.kernel, NdRange::linear(LANES as u64, 1))
                    {
                        Ok(()) => {}
                        // Sheds are the point of the hog; admission
                        // errors change no cluster state.
                        Err(haocl::Error::Overloaded(_)) => {}
                        Err(e) => return Err(e),
                    }
                }
            }
            plane.drain_budget(SimDuration::from_nanos(per_launch * 12))?;
        }

        // Fairness is measured at the contended point, before the final
        // settle empties every queue.
        let contended: Vec<u64> = actors
            .iter()
            .map(|a| {
                plane
                    .stats(a.session.tenant())
                    .map_or(0, |s| s.compute_nanos)
            })
            .collect();
        plane.drain()?;

        let mut violations = Vec::new();
        let mut rows = Vec::new();
        for (actor, &contended_compute) in actors.iter().zip(&contended) {
            let stats = plane.stats(actor.session.tenant()).unwrap_or_default();
            let mut readback = vec![0u8; buf_bytes as usize];
            staging.enqueue_read_buffer(&actor.buffer, 0, &mut readback)?;
            staging.finish();
            let expected = churn_ref(stats.completed);
            let consistent = readback == expected;
            if stats.completed == 0 {
                violations.push(format!("starvation: tenant {} completed 0", actor.name));
            }
            if stats.submitted != stats.completed + stats.pending as u64 {
                violations.push(format!(
                    "accounting: tenant {} submitted {} != completed {} + pending {}",
                    actor.name, stats.submitted, stats.completed, stats.pending
                ));
            }
            if !consistent {
                violations.push(format!(
                    "consistency: tenant {} buffer does not match {} applications",
                    actor.name, stats.completed
                ));
            }
            rows.push(TenantRow {
                name: actor.name,
                weight: actor.weight,
                submitted: stats.submitted,
                completed: stats.completed,
                shed: stats.shed,
                compute_nanos: stats.compute_nanos,
                contended_compute_nanos: contended_compute,
                mem_bytes: stats.mem_bytes,
                digest: fnv1a(&readback),
                consistent,
            });
        }
        let fairness_ratio = {
            let (a, b) = (contended[0].max(1) as f64, contended[1].max(1) as f64);
            (a / b).max(b / a)
        };
        if fairness_ratio > 1.5 {
            violations.push(format!(
                "fairness: equal-weight ratio {fairness_ratio:.2} exceeds 1.5"
            ));
        }
        let weighted_ratio =
            contended[2].max(1) as f64 / ((contended[0] + contended[1]).max(1) as f64 / 2.0);
        if rows[3].shed == 0 {
            violations.push("admission: the hog was never shed".to_string());
        }
        for row in &rows {
            if row.mem_bytes != buf_bytes {
                violations.push(format!(
                    "quota: tenant {} holds {} charged bytes, expected {}",
                    row.name, row.mem_bytes, buf_bytes
                ));
            }
        }

        Ok(SoakReport {
            rows,
            fairness_ratio,
            weighted_ratio,
            violations,
            trace_json: platform.export_chrome_trace(),
            metrics: platform.render_metrics(),
            audit: platform.render_audit_log(),
            chaos_schedule: platform.chaos_schedule(),
        })
    }

    /// FNV-1a digest (same parameters as the ablation digests).
    fn fnv1a(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The degraded-device soak: a 3-GPU fleet establishes healthy drift
/// baselines, then one node is silently throttled (its descriptor keeps
/// advertising full speed). The run gates on the telemetry plane doing
/// its job — the drift detector flags the sick node within a bounded
/// number of launches, placements shift off it (≥ 90% avoidance after
/// detection), outputs stay byte-identical to the healthy reference,
/// and the node recovers once re-qualified at full speed. The CI
/// `degraded-soak` job drives this through the `health_soak` binary and
/// uploads the `haocl-top --report json` snapshot it embeds.
pub mod health_soak {
    use super::*;
    use haocl::auto::AutoScheduler;
    use haocl::{
        Buffer, CommandQueue, Context, DeviceType, Kernel, MemFlags, NodeCondition, NodeId, Program,
    };
    use haocl_kernel::{CostModel, NdRange};
    use haocl_obs::FleetSnapshot;
    use haocl_sched::policies;

    /// Lanes (i32) in the shared output buffer.
    const LANES: usize = 64;

    /// Node (and, in a one-GPU-per-node fleet, device index) that falls
    /// sick mid-run.
    const SICK: u32 = 1;

    /// Launches after injection within which detection must happen.
    /// The detector needs its strikes; the scheduler also has to keep
    /// *giving* the slowing node launches long enough to collect them.
    const DETECTION_BUDGET: usize = 40;

    /// Same order-sensitive churn step as the tenant soak: `k`
    /// applications are distinguishable from `k±1`, so the digest pins
    /// the exact completed count regardless of which devices ran them.
    const CHURN_SRC: &str =
        "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

    /// Reference output after `k` applications to a zeroed buffer.
    fn churn_ref(k: u64) -> Vec<u8> {
        let mut lanes = [0i32; LANES];
        for _ in 0..k {
            for (i, v) in lanes.iter_mut().enumerate() {
                *v = v.wrapping_mul(3).wrapping_add(i as i32);
            }
        }
        lanes.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Everything one degraded-device soak produced.
    #[derive(Debug, Clone)]
    pub struct HealthReport {
        /// Launches between throttle injection and the `Degraded`
        /// verdict (`None` = never detected).
        pub detection_launches: Option<usize>,
        /// Post-detection launches placed, total.
        pub post_total: usize,
        /// Post-detection launches that still landed on the sick node.
        pub post_on_sick: usize,
        /// `1 - post_on_sick / post_total` (gate: ≥ 0.9).
        pub avoidance: f64,
        /// Whether the node's verdict returned to healthy after the
        /// throttle was lifted and the node re-qualified.
        pub recovered: bool,
        /// Whether the final buffer is byte-identical to the healthy
        /// reference at the completed launch count.
        pub consistent: bool,
        /// Total launches completed across all phases.
        pub launches: u64,
        /// Gate violations; empty means the run passes.
        pub violations: Vec<String>,
        /// Prometheus text-format metrics dump.
        pub metrics: String,
        /// Scheduler decision audit log.
        pub audit: String,
        /// The `haocl-top --report json` snapshot of the final state.
        pub top_json: String,
    }

    struct Fleet {
        auto: AutoScheduler,
        kernel: Kernel,
        buffer: Buffer,
        staging: CommandQueue,
        launches: u64,
    }

    impl Fleet {
        /// One placed launch; returns the chosen node.
        fn step(&mut self) -> Result<NodeId, Error> {
            let (_, choice) = self
                .auto
                .launch(&self.kernel, NdRange::linear(LANES as u64, 1))?;
            self.launches += 1;
            Ok(self.auto.queues()[choice].device().node_id())
        }
    }

    /// Runs the soak. `probe_rounds` scales the healthy warmup and the
    /// recovery re-qualification phases (8 is plenty; the detector
    /// freezes its baseline after 3 observations per node).
    ///
    /// # Errors
    ///
    /// Propagates cluster bring-up and launch failures.
    pub fn run(probe_rounds: usize) -> Result<HealthReport, Error> {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(3), registry_with_all())?;
        platform.set_tracing(true);
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new()))?;
        let staging = CommandQueue::new(&ctx, &ctx.devices()[0])?;
        let program = Program::from_source(&ctx, CHURN_SRC);
        program.build()?;
        let kernel = Kernel::new(&program, "churn")?;
        kernel.set_cost(CostModel::new().flops(1e9).bytes_read(4.0 * LANES as f64));
        let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES as u64)?;
        kernel.set_arg_buffer(0, &buffer)?;
        let mut fleet = Fleet {
            auto,
            kernel,
            buffer,
            staging,
            launches: 0,
        };
        let sick = NodeId::new(SICK);
        let mut violations = Vec::new();

        // Phase 1 — healthy warmup. Round-robin guarantees every node
        // collects enough observations to freeze its drift baseline
        // (identical devices would otherwise let ties starve a node).
        fleet.auto.set_policy(Box::new(policies::RoundRobin::new()));
        for _ in 0..probe_rounds.max(4) * 3 {
            fleet.step()?;
        }
        if fleet.auto.quarantine().condition(sick) != NodeCondition::Healthy {
            violations.push("baseline: node flagged before any fault was injected".into());
        }

        // Phase 2 — silent degradation: node 1's GPU runs 3× slow while
        // its descriptor still advertises full speed. Only observed
        // timings can betray it. Probing traffic stays round-robin —
        // detection must not depend on the load balancer happening to
        // visit the sick node.
        platform.set_device_throttle(sick, 0, 3.0)?;
        let mut detection_launches = None;
        for i in 0..DETECTION_BUDGET {
            fleet.step()?;
            if fleet.auto.drift().is_degraded(sick) {
                detection_launches = Some(i + 1);
                break;
            }
        }
        fleet
            .auto
            .set_policy(Box::new(policies::HeteroAware::new()));
        if detection_launches.is_none() {
            violations.push(format!(
                "detection: sick node not flagged within {DETECTION_BUDGET} launches"
            ));
        }
        if detection_launches.is_some()
            && fleet.auto.quarantine().condition(sick) != NodeCondition::Degraded
        {
            violations.push("verdict: drift flag did not reach the quarantine tracker".into());
        }

        // Phase 3 — post-detection placement: the degraded node stays a
        // candidate (advisory, not banned) but should lose almost every
        // placement to its healthy peers.
        let post_total = probe_rounds.max(4) * 3;
        let mut post_on_sick = 0usize;
        for _ in 0..post_total {
            if fleet.step()? == sick {
                post_on_sick += 1;
            }
        }
        let avoidance = 1.0 - post_on_sick as f64 / post_total as f64;
        if avoidance < 0.9 {
            violations.push(format!(
                "avoidance: only {:.0}% of post-detection placements avoided the sick node",
                avoidance * 100.0
            ));
        }

        // Phase 4 — recovery: lift the throttle and re-qualify the node
        // with probe launches (round-robin again — an avoided node never
        // produces the observations that would clear it).
        platform.set_device_throttle(sick, 0, 1.0)?;
        fleet.auto.set_policy(Box::new(policies::RoundRobin::new()));
        for _ in 0..probe_rounds.max(4) * 3 {
            fleet.step()?;
        }
        fleet
            .auto
            .set_policy(Box::new(policies::HeteroAware::new()));
        let recovered = fleet.auto.quarantine().condition(sick) == NodeCondition::Healthy;
        if !recovered {
            violations.push("recovery: node still flagged after returning to baseline".into());
        }

        // Consistency: the buffer must be byte-identical to the healthy
        // reference at the completed count — placement shifts are not
        // allowed to change results.
        let mut readback = vec![0u8; 4 * LANES];
        fleet
            .staging
            .enqueue_read_buffer(&fleet.buffer, 0, &mut readback)?;
        fleet.staging.finish();
        let consistent = readback == churn_ref(fleet.launches);
        if !consistent {
            violations.push(format!(
                "consistency: buffer does not match {} healthy applications",
                fleet.launches
            ));
        }

        let metrics = platform.render_metrics();
        let audit = platform.render_audit_log();
        let top_json = FleetSnapshot::from_text(&metrics, &audit).to_json();
        Ok(HealthReport {
            detection_launches,
            post_total,
            post_on_sick,
            avoidance,
            recovered,
            consistent,
            launches: fleet.launches,
            violations,
            metrics,
            audit,
            top_json,
        })
    }
}

/// Elastic-fleet soak: repeated traffic spikes drive the autoscaler up,
/// idle valleys drive it back down through graceful drains, with CI
/// gates on reaction latency, post-drain digest exactness, and zero
/// quarantines under pure voluntary departures.
pub mod autoscale_soak {
    use super::*;
    use haocl::auto::AutoScheduler;
    use haocl::{
        AutoscaleConfig, Autoscaler, Buffer, CommandQueue, Context, Decision, DeviceType,
        DrainOptions, Kernel, MemFlags, MembershipState, NodeSpec, Program,
    };
    use haocl_kernel::{CostModel, NdRange};
    use haocl_obs::FleetSnapshot;
    use haocl_sched::policies;

    /// Lanes (i32) in the shared output buffer.
    const LANES: usize = 64;

    /// Backlog depth of one traffic spike (well above `high_depth`).
    const SPIKE: usize = 10;

    /// Policy ticks the scaler may take to react to a sustained spike
    /// (sustain streak + post-action cooldown + one tick of slack).
    const REACTION_BUDGET: usize = 6;

    /// Same order-sensitive churn step as the other soaks.
    const CHURN_SRC: &str =
        "__kernel void churn(__global int* a) { int i = get_global_id(0); a[i] = a[i] * 3 + i; }";

    /// Reference output after `k` applications to a zeroed buffer.
    fn churn_ref(k: u64) -> Vec<u8> {
        let mut lanes = [0i32; LANES];
        for _ in 0..k {
            for (i, v) in lanes.iter_mut().enumerate() {
                *v = v.wrapping_mul(3).wrapping_add(i as i32);
            }
        }
        lanes.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    /// Everything one elastic soak produced.
    #[derive(Debug, Clone)]
    pub struct AutoscaleReport {
        /// Spike/valley rounds driven.
        pub rounds: usize,
        /// Scale-ups actuated (gate: one per round).
        pub scale_ups: usize,
        /// Scale-downs actuated (gate: one per round).
        pub scale_downs: usize,
        /// Worst ticks-to-ScaleUp across rounds (gate: ≤ budget).
        pub worst_reaction_ticks: usize,
        /// Total launches completed.
        pub launches: u64,
        /// Whether every post-drain readback was byte-identical to the
        /// reference at the completed launch count.
        pub consistent: bool,
        /// Final `haocl_quarantines_total` sum (gate: 0 — every epoch
        /// bump in this soak is a voluntary drain).
        pub quarantines: u64,
        /// Gate violations; empty means the run passes.
        pub violations: Vec<String>,
        /// Prometheus text-format metrics dump.
        pub metrics: String,
        /// Scheduler decision audit log.
        pub audit: String,
        /// The `haocl-top --report json` snapshot of the final state.
        pub top_json: String,
    }

    /// Runs `rounds` spike/valley cycles on a fleet that starts as one
    /// GPU node. Chaos opt-in via `HAOCL_CHAOS_SPEC` applies as for
    /// every cluster launch; under chaos the soak pins the data plane to
    /// the host relay (as the tenant soak does, for replayable
    /// lineages), retries drains that a fault schedule interrupts, and
    /// drops the quarantine gate — a crash racing a drain *should* book
    /// a strike.
    ///
    /// # Errors
    ///
    /// Propagates cluster bring-up, launch, join and drain failures
    /// (under chaos, recovery and drain retries are expected to mask
    /// them — a surfaced failure is a real finding).
    pub fn run(rounds: usize) -> Result<AutoscaleReport, Error> {
        let platform = Platform::cluster(&ClusterConfig::gpu_cluster(1), registry_with_all())?;
        platform.set_tracing(true);
        let chaotic = std::env::var("HAOCL_CHAOS_SPEC").is_ok();
        if chaotic {
            platform.set_peer_transfers(false);
        }
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All))?;
        let mut auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new()))?;
        let mut scaler = Autoscaler::new(AutoscaleConfig {
            high_depth: 4.0,
            low_depth: 1.0,
            sustain_ticks: 2,
            cooldown_ticks: 2,
            min_nodes: 1,
            max_nodes: 3,
        });
        let program = Program::from_source(&ctx, CHURN_SRC);
        program.build()?;
        let kernel = Kernel::new(&program, "churn")?;
        kernel.set_cost(CostModel::new().flops(1e9).bytes_read(4.0 * LANES as f64));
        let buffer = Buffer::new(&ctx, MemFlags::READ_WRITE, 4 * LANES as u64)?;
        kernel.set_arg_buffer(0, &buffer)?;
        let staging = |auto: &AutoScheduler| -> CommandQueue {
            auto.queues()
                .iter()
                .find(|q| {
                    platform.node_membership(q.device().node_id()) == Some(MembershipState::Active)
                })
                .expect("at least one active node")
                .clone()
        };

        let mut violations = Vec::new();
        let mut launches = 0u64;
        let mut scale_ups = 0usize;
        let mut scale_downs = 0usize;
        let mut worst_reaction_ticks = 0usize;
        let mut consistent = true;
        for round in 0..rounds {
            // Spike: a backlog far above `high_depth` piles onto the
            // shrunken fleet; the queue-depth gauge carries it to the
            // scaler, which must react within the budget.
            for _ in 0..SPIKE {
                auto.launch(&kernel, NdRange::linear(LANES as u64, 1))?;
                launches += 1;
            }
            let mut reacted = false;
            for tick in 1..=REACTION_BUDGET {
                if platform.autoscale_tick(&mut scaler) == Decision::ScaleUp {
                    worst_reaction_ticks = worst_reaction_ticks.max(tick);
                    reacted = true;
                    break;
                }
            }
            if !reacted {
                violations.push(format!(
                    "reaction: round {round} spike not answered within {REACTION_BUDGET} ticks"
                ));
                for q in auto.queues() {
                    q.finish();
                }
                continue;
            }
            let spec = NodeSpec {
                name: format!("burst{round}"),
                addr: format!("10.0.8.{}:7100", round + 1),
                devices: vec![DeviceKind::Gpu],
            };
            let burst = platform.add_node(&spec)?;
            auto.sync_membership()?;
            scale_ups += 1;
            // The tail of the spike rides the grown fleet: round-robin
            // now spreads real launches (and the buffer's resident
            // bytes) onto the new node before the valley takes it back
            // out — the drain below migrates state that matters.
            for _ in 0..SPIKE {
                auto.launch(&kernel, NdRange::linear(LANES as u64, 1))?;
                launches += 1;
            }
            for q in auto.queues() {
                q.finish();
            }

            // Valley: the fleet idles; the scaler must ask for a
            // scale-down, and the burst node drains cleanly.
            let mut down = false;
            for _ in 0..REACTION_BUDGET {
                if platform.autoscale_tick(&mut scaler) == Decision::ScaleDown {
                    down = true;
                    break;
                }
            }
            if !down {
                violations.push(format!(
                    "scale-down: round {round} idle fleet held within {REACTION_BUDGET} ticks"
                ));
                continue;
            }
            // The valley retires the elastic node the spike added: the
            // seed node is the fleet's stable anchor, the burst node is
            // the capacity being handed back — usually while holding
            // the newest bytes, so the drain migrates state that
            // matters. A fault schedule can kill the very node being
            // drained; the drain leaves it Draining (retryable) and the
            // retry rides failover replay. On a clean network one
            // attempt must suffice.
            let victim = burst;
            let mut drained = false;
            for _ in 0..3 {
                match platform.drain_node(victim, DrainOptions::default()) {
                    Ok(_) => {
                        drained = true;
                        break;
                    }
                    Err(e) if chaotic => {
                        assert_eq!(
                            platform.node_membership(victim),
                            Some(MembershipState::Draining),
                            "failed drain of {victim:?} did not leave it Draining: {e}"
                        );
                    }
                    Err(e) => return Err(e),
                }
            }
            if !drained {
                // Capacity is wedged at the ceiling; later rounds would
                // fail the reaction gate for the wrong reason. End the
                // soak early — partial counts still print.
                break;
            }
            scale_downs += 1;

            // Post-drain digest: the shrunken fleet must still hold the
            // exact bytes of every completed launch.
            let mut readback = vec![0u8; 4 * LANES];
            let q = staging(&auto);
            q.enqueue_read_buffer(&buffer, 0, &mut readback)?;
            q.finish();
            if readback != churn_ref(launches) {
                consistent = false;
                violations.push(format!(
                    "consistency: round {round} post-drain digest does not match {launches} \
                     applications"
                ));
            }
        }

        let metrics = platform.render_metrics();
        let quarantines: u64 = haocl_obs::top::parse_metrics(&metrics)
            .iter()
            .filter(|s| s.name == haocl_obs::names::QUARANTINES)
            .map(|s| s.value as u64)
            .sum();
        if quarantines != 0 && !chaotic {
            violations.push(format!(
                "quarantine: {quarantines} strike(s) booked under pure voluntary drains"
            ));
        }
        let audit = platform.render_audit_log();
        let top_json = FleetSnapshot::from_text(&metrics, &audit).to_json();
        Ok(AutoscaleReport {
            rounds,
            scale_ups,
            scale_downs,
            worst_reaction_ticks,
            launches,
            consistent,
            quarantines,
            violations,
            metrics,
            audit,
            top_json,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_workloads::matmul::MatmulConfig;

    #[test]
    fn fig2_produces_all_series_for_matmul() {
        let rows = fig2::rows(
            &Workload::MatrixMul(MatmulConfig::with_n(1024)),
            &[1, 2],
            &RunOptions::modeled(),
        )
        .unwrap();
        let series: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.series.as_str()).collect();
        for s in [
            "Local-GPU",
            "Local-FPGA",
            "HaoCL-GPU",
            "HaoCL-FPGA",
            "SnuCL-D",
        ] {
            assert!(series.contains(s), "missing series {s}");
        }
        // Hetero appears only for n >= 2.
        assert!(series.contains("HaoCL-Hetero"));
    }

    #[test]
    fn fig3_rows_have_all_phases() {
        let rows = fig3::rows(&[1024], &[2], &RunOptions::modeled()).unwrap();
        assert_eq!(rows.len(), 1);
        let r = &rows[0];
        assert!(r.compute > haocl_sim::SimDuration::ZERO);
        assert!(r.data_transfer > haocl_sim::SimDuration::ZERO);
        assert!(r.data_create > haocl_sim::SimDuration::ZERO);
        assert!(r.total >= r.compute);
    }

    #[test]
    fn overhead_is_small_for_matmul_at_paper_scale() {
        // At paper scale compute dominates, so the wrapper + backbone
        // overhead on one node shrinks to a modest share (the abstract's
        // "negligible overhead" claim). Small inputs are legitimately
        // transfer-dominated.
        let rows = overhead::rows(
            &[Workload::MatrixMul(MatmulConfig::paper_scale())],
            &RunOptions::modeled(),
        )
        .unwrap();
        assert_eq!(rows.len(), 1);
        assert!(
            rows[0].overhead_pct.abs() < 2.0,
            "co-located overhead {}% should be negligible",
            rows[0].overhead_pct
        );
        assert!(
            rows[0].remote_overhead_pct < 50.0,
            "remote-host overhead {}%",
            rows[0].remote_overhead_pct
        );
    }

    #[test]
    fn pipelining_ablation_shows_at_least_2x_on_4_node_fanout() {
        let result = ablations::pipelining(4, 2).unwrap();
        assert!(
            result.pipelined < result.synchronous,
            "pipelined {} should beat synchronous {}",
            result.pipelined,
            result.synchronous
        );
        assert!(
            result.speedup() >= 2.0,
            "4-node fan-out speedup {:.2}x (sync {} vs pipelined {})",
            result.speedup(),
            result.synchronous,
            result.pipelined
        );
    }

    #[test]
    fn scheduler_ablation_covers_four_policies() {
        let results = ablations::scheduler_policies(8).unwrap();
        assert_eq!(results.len(), 4);
        // The hetero-aware policy is never the worst.
        let hetero = results.iter().find(|(n, _)| n == "hetero-aware").unwrap().1;
        let worst = results.iter().map(|(_, d)| *d).max().unwrap();
        assert!(hetero <= worst);
    }

    #[test]
    fn fusion_ablation_saves_commands_and_preserves_digests() {
        let rows = ablations::fusion().unwrap();
        assert_eq!(rows.len(), 4);
        for app in ["KNN", "SpMV"] {
            let find = |config: &str| {
                rows.iter()
                    .find(|r| r.app == app && r.config == config)
                    .unwrap()
            };
            let fused = find("fused");
            let unfused = find("unfused");
            // Fusion may collapse commands, never change results.
            assert_eq!(
                fused.digest, unfused.digest,
                "{app}: fused output diverged from unfused replay"
            );
            assert_eq!(
                unfused.wire_launches, unfused.nodes,
                "{app}: unfused baseline must issue one command per node"
            );
            assert!(
                fused.commands_saved > 0,
                "{app}: prover approved no fusions"
            );
            // The acceptance bar: the prover cuts wire launch commands
            // by at least 30% on a small-kernel chain.
            let reduction = fused.command_reduction_vs(unfused);
            assert!(
                reduction >= 0.30,
                "{app}: expected >=30% command reduction, got {:.0}% \
                 (fused {} vs unfused {})",
                reduction * 100.0,
                fused.wire_launches,
                unfused.wire_launches
            );
        }
    }

    #[test]
    fn locality_ablation_cuts_relay_traffic_without_changing_results() {
        let rows = ablations::locality(6).unwrap();
        assert_eq!(rows.len(), 6);
        for app in ["BFS", "CFD"] {
            let find = |config: &str| {
                rows.iter()
                    .find(|r| r.app == app && r.config == config)
                    .unwrap()
            };
            let aware = find("locality-aware");
            let hop = find("peer-transfer");
            let blind = find("locality-blind");
            // Placement may move data, never change results.
            for r in [hop, blind] {
                assert_eq!(
                    aware.digest, r.digest,
                    "{app}/{}: outputs must be byte-identical across configs",
                    r.config
                );
            }
            // The acceptance bar: residency-aware placement cuts
            // host-relayed data-plane traffic at least in half.
            assert!(
                blind.relay_bytes >= 2 * aware.relay_bytes.max(1),
                "{app}: expected >=2x relay reduction, aware={} blind={}",
                aware.relay_bytes,
                blind.relay_bytes
            );
            // When placement still bounces, migrations ride the peer
            // path: the host relays at most the one-time staging that
            // locality-blind also pays, and the bulk moves NMP-to-NMP.
            assert!(
                hop.peer_bytes > 0,
                "{app}: peer-transfer config moved no peer bytes"
            );
            assert!(
                blind.relay_bytes >= 2 * hop.relay_bytes.max(1),
                "{app}: peer transfers should halve relayed bytes, peer-config relay={} blind={}",
                hop.relay_bytes,
                blind.relay_bytes
            );
        }
    }

    #[test]
    fn autoscale_soak_passes_all_gates() {
        let report = autoscale_soak::run(2).unwrap();
        assert!(
            report.violations.is_empty(),
            "gate violations: {:?}",
            report.violations
        );
        assert_eq!((report.scale_ups, report.scale_downs), (2, 2));
        assert!(report.consistent);
        assert_eq!(report.quarantines, 0);
        // The haocl-top artifact carries the elastic columns.
        assert!(report.top_json.contains("\"autoscale_events\":4"));
        assert!(report.top_json.contains("\"state\":\"departed\""));
    }
}
