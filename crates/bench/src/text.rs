//! Plain-text table rendering for the report binaries.

/// Renders an aligned text table with a header row.
///
/// # Examples
///
/// ```
/// let t = haocl_bench::text::render_table(
///     &["app", "time"],
///     &[vec!["MatrixMul".to_string(), "1.2s".to_string()]],
/// );
/// assert!(t.contains("MatrixMul"));
/// assert!(t.lines().count() >= 3);
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&render_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aligns_columns() {
        let t = render_table(
            &["a", "bbbb"],
            &[
                vec!["xx".into(), "y".into()],
                vec!["x".into(), "yyyyy".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        // The separator is as wide as the widest row.
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[1].len() >= lines[0].len());
    }

    #[test]
    fn empty_rows_still_render_header() {
        let t = render_table(&["only"], &[]);
        assert!(t.starts_with("only\n"));
    }
}
