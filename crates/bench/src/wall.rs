//! Wall-clock hot-path benchmarks (`BENCH_wall_*.json`).
//!
//! Unlike the figure harnesses, which report *virtual* time from the
//! link and device models, this module times the host process itself:
//! real requests/sec and p50/p99 latency through the two layers the
//! compiled-execution PR rebuilt —
//!
//! * the `clc` VM, per engine (reference interpreter vs the compiled
//!   closure engine, serial and parallel), on the five paper kernels
//!   with real inputs; every engine must produce byte-identical
//!   buffers, so each row carries an output digest and
//!   [`vm_rows`] fails on divergence;
//! * the wire path, per framing strategy (the historic copy-per-chunk
//!   path vs pooled zero-copy segmentation/reassembly) at small and
//!   bulk payload sizes.
//!
//! The `wall` binary renders both tables and writes them as
//! `BENCH_wall_vm.json` / `BENCH_wall_wire.json`; the nightly
//! `wall-bench` CI job uploads those and gates the compiled engine at
//! ≥ 2× the interpreter across the paper kernels.

use std::time::Instant;

use haocl_clc::vm::{run_ndrange_with_engine, ArgValue, EngineKind, GlobalBuffer, NdRange};
use haocl_clc::{compile, CompiledProgram};
use haocl_net::frame::{
    encode_frame, encode_frame_pooled, segment, segment_pooled, FrameAssembler,
};
use haocl_net::pool::{BufferPool, PooledBytes};

/// Wall-clock latency distribution over one measured loop.
#[derive(Debug, Clone, Copy)]
pub struct LatencyStats {
    /// Requests measured.
    pub requests: u64,
    /// Total wall time across all requests, nanoseconds.
    pub total_nanos: u64,
    /// Median per-request latency, nanoseconds.
    pub p50_nanos: u64,
    /// 99th-percentile per-request latency, nanoseconds.
    pub p99_nanos: u64,
}

impl LatencyStats {
    /// Collapses raw per-request samples into the distribution.
    fn from_samples(mut samples: Vec<u64>) -> Self {
        assert!(!samples.is_empty(), "no samples measured");
        let total: u64 = samples.iter().sum();
        samples.sort_unstable();
        let pct = |p: f64| {
            let idx = ((samples.len() - 1) as f64 * p).round() as usize;
            samples[idx]
        };
        LatencyStats {
            requests: samples.len() as u64,
            total_nanos: total.max(1),
            p50_nanos: pct(0.50),
            p99_nanos: pct(0.99),
        }
    }

    /// Sustained throughput over the measured loop.
    pub fn requests_per_sec(&self) -> f64 {
        self.requests as f64 / (self.total_nanos as f64 / 1e9)
    }
}

/// One (kernel, engine) measurement of the VM layer.
#[derive(Debug, Clone)]
pub struct VmRow {
    /// Paper benchmark the kernel comes from.
    pub app: &'static str,
    /// `"interp"`, `"compiled-serial"` or `"compiled"`.
    pub engine: &'static str,
    /// Launch latency distribution.
    pub stats: LatencyStats,
    /// FNV-1a digest over every buffer after the measured loop. All
    /// engines must agree — [`vm_rows`] enforces it.
    pub digest: u64,
}

/// The engines every kernel is measured under, reference first.
const ENGINES: [(&str, EngineKind); 3] = [
    ("interp", EngineKind::Interp),
    ("compiled-serial", EngineKind::CompiledSerial),
    ("compiled", EngineKind::Compiled),
];

/// One prepared paper-kernel launch: compiled program, bound arguments
/// and initial buffer contents (reset before every engine's loop so
/// each engine sees identical inputs).
struct Launch {
    app: &'static str,
    program: CompiledProgram,
    kernel: &'static str,
    args: Vec<ArgValue>,
    buffers: Vec<GlobalBuffer>,
    range: NdRange,
}

/// Deterministic pseudo-random stream (SplitMix64) for input data; the
/// bench must not depend on a seeded RNG crate.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn f32s(&mut self, n: usize) -> Vec<f32> {
        (0..n)
            .map(|_| (self.next() % 1000) as f32 / 100.0 + 0.5)
            .collect()
    }
}

/// Builds the five measured launches with real, deterministic inputs.
///
/// # Panics
///
/// Panics if a paper kernel stops compiling (the lint-corpus suite
/// pins that too).
fn paper_launches() -> Vec<Launch> {
    let mut rng = Mix(42);
    let mut out = Vec::new();

    // MatrixMul: dense 48x48 — the inner k-loop dominates, which is
    // where closure fusion pays.
    let n = 48usize;
    out.push(Launch {
        app: "MatrixMul",
        program: compile(haocl_workloads::matmul::KERNEL_SOURCE).expect("matmul compiles"),
        kernel: haocl_workloads::matmul::KERNEL_NAME,
        args: vec![
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(n as i32),
            ArgValue::from_i32(n as i32),
        ],
        buffers: vec![
            GlobalBuffer::from_f32(&rng.f32s(n * n)),
            GlobalBuffer::from_f32(&rng.f32s(n * n)),
            GlobalBuffer::zeroed(4 * n * n),
        ],
        range: NdRange::d2([n as u64, n as u64], [8, 8]),
    });

    // SpMV: 2048 rows, 8 nonzeros per row, CSR.
    let rows = 2048usize;
    let nnz_per_row = 8usize;
    let nnz = rows * nnz_per_row;
    let row_ptr: Vec<i32> = (0..=rows).map(|r| (r * nnz_per_row) as i32).collect();
    let cols: Vec<i32> = (0..nnz)
        .map(|_| (rng.next() % rows as u64) as i32)
        .collect();
    out.push(Launch {
        app: "SpMV",
        program: compile(haocl_workloads::spmv::KERNEL_SOURCE).expect("spmv compiles"),
        kernel: haocl_workloads::spmv::KERNEL_NAME,
        args: vec![
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::global(3),
            ArgValue::global(4),
            ArgValue::from_i32(rows as i32),
        ],
        buffers: vec![
            GlobalBuffer::from_i32(&row_ptr),
            GlobalBuffer::from_i32(&cols),
            GlobalBuffer::from_f32(&rng.f32s(nnz)),
            GlobalBuffer::from_f32(&rng.f32s(rows)),
            GlobalBuffer::zeroed(4 * rows),
        ],
        range: NdRange::linear(rows as u64, 64),
    });

    // BFS apply: 4096 scattered depth updates.
    let count = 4096usize;
    let mut updates = Vec::with_capacity(2 * count);
    for t in 0..count as i32 {
        updates.push(t);
        updates.push((rng.next() % 32) as i32);
    }
    out.push(Launch {
        app: "BFS",
        program: compile(haocl_workloads::bfs::KERNEL_SOURCE).expect("bfs compiles"),
        kernel: haocl_workloads::bfs::APPLY_KERNEL_NAME,
        args: vec![
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_i32(count as i32),
        ],
        buffers: vec![
            GlobalBuffer::from_i32(&vec![-1; count]),
            GlobalBuffer::from_i32(&updates),
        ],
        range: NdRange::linear(count as u64, 64),
    });

    // KNN distance pass: 4096 records against one query.
    let records = 4096usize;
    out.push(Launch {
        app: "KNN",
        program: compile(haocl_workloads::knn::KERNEL_SOURCE).expect("knn compiles"),
        kernel: haocl_workloads::knn::DIST_KERNEL_NAME,
        args: vec![
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_f32(3.25),
            ArgValue::from_f32(7.5),
            ArgValue::from_i32(records as i32),
        ],
        buffers: vec![
            GlobalBuffer::from_f32(&rng.f32s(records)),
            GlobalBuffer::from_f32(&rng.f32s(records)),
            GlobalBuffer::zeroed(4 * records),
        ],
        range: NdRange::linear(records as u64, 64),
    });

    // CFD flux: 1024 cells, 4 neighbours each, 5 conserved variables.
    let cells = 1024usize;
    let neigh: Vec<i32> = (0..4 * cells)
        .map(|_| (rng.next() % cells as u64) as i32)
        .collect();
    out.push(Launch {
        app: "CFD",
        program: compile(haocl_workloads::cfd::KERNEL_SOURCE).expect("cfd compiles"),
        kernel: haocl_workloads::cfd::KERNEL_NAME,
        args: vec![
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(cells as i32),
            ArgValue::from_i32(0),
            ArgValue::from_i32(cells as i32),
        ],
        buffers: vec![
            GlobalBuffer::from_f32(&rng.f32s(5 * cells)),
            GlobalBuffer::from_i32(&neigh),
            GlobalBuffer::zeroed(4 * 5 * cells),
        ],
        range: NdRange::linear(cells as u64, 64),
    });

    out
}

/// Measures every paper kernel under every engine: `iters` timed
/// launches each, after one untimed warm-up launch (which also pays
/// the compiled engine's one-time lowering).
///
/// # Errors
///
/// Returns a description of the first launch failure or cross-engine
/// output divergence (both are bugs, not measurement noise).
pub fn vm_rows(iters: usize) -> Result<Vec<VmRow>, String> {
    let mut out = Vec::new();
    for launch in paper_launches() {
        let kernel = launch
            .program
            .kernel(launch.kernel)
            .expect("paper kernel present");
        // Interleave the engines round-robin so slow machine-load
        // drift lands on every engine equally instead of biasing
        // whichever engine ran its block last.
        let mut buffers: Vec<_> = ENGINES.iter().map(|_| launch.buffers.clone()).collect();
        let mut samples: Vec<Vec<u64>> =
            ENGINES.iter().map(|_| Vec::with_capacity(iters)).collect();
        for (e, (name, engine)) in ENGINES.into_iter().enumerate() {
            run_ndrange_with_engine(kernel, &launch.args, &mut buffers[e], &launch.range, engine)
                .map_err(|err| format!("{} warm-up on {name}: {err}", launch.app))?;
        }
        for _ in 0..iters {
            for (e, (name, engine)) in ENGINES.into_iter().enumerate() {
                let t0 = Instant::now();
                run_ndrange_with_engine(
                    kernel,
                    &launch.args,
                    &mut buffers[e],
                    &launch.range,
                    engine,
                )
                .map_err(|err| format!("{} on {name}: {err}", launch.app))?;
                samples[e].push(t0.elapsed().as_nanos() as u64);
            }
        }
        let reference = buffers_digest(&buffers[0]);
        for (e, (name, _)) in ENGINES.into_iter().enumerate() {
            let digest = buffers_digest(&buffers[e]);
            if digest != reference {
                return Err(format!(
                    "{}: engine {name} produced digest {digest:#018x}, \
                     interpreter produced {reference:#018x}",
                    launch.app
                ));
            }
            out.push(VmRow {
                app: launch.app,
                engine: name,
                stats: LatencyStats::from_samples(samples[e].clone()),
                digest,
            });
        }
    }
    Ok(out)
}

/// Ratio of interpreter to compiled median launch latency, per app.
/// This is the nightly gate's input: the compiled engine must clear
/// `>= 2.0` on summed medians across the paper kernels. Medians, not
/// totals — one scheduler hiccup inside one launch must not move the
/// gate.
pub fn speedups(rows: &[VmRow]) -> Vec<(&'static str, f64)> {
    let mut out = Vec::new();
    let apps: Vec<&'static str> = {
        let mut seen = Vec::new();
        for r in rows {
            if !seen.contains(&r.app) {
                seen.push(r.app);
            }
        }
        seen
    };
    for app in apps {
        let time = |engine: &str| {
            rows.iter()
                .find(|r| r.app == app && r.engine == engine)
                .map(|r| r.stats.p50_nanos as f64)
        };
        if let (Some(interp), Some(compiled)) = (time("interp"), time("compiled")) {
            out.push((app, interp / compiled));
        }
    }
    out
}

/// One (payload size, framing strategy) measurement of the wire layer.
#[derive(Debug, Clone)]
pub struct WireRow {
    /// `"small"` (256 B) or `"bulk"` (64 KiB).
    pub payload: &'static str,
    /// Payload bytes per request.
    pub payload_bytes: usize,
    /// `"copy"` (historic per-chunk copies) or `"pooled"` (zero-copy).
    pub path: &'static str,
    /// Frame round-trip (encode → segment → reassemble) distribution.
    pub stats: LatencyStats,
    /// FNV-1a digest of the last reassembled frame (copy and pooled
    /// must agree per payload size).
    pub digest: u64,
}

/// Measures encode → MTU segmentation → reassembly round trips through
/// both framing strategies at a small and a bulk payload size.
pub fn wire_rows(iters: usize) -> Vec<WireRow> {
    let mut out = Vec::new();
    for (payload, payload_bytes) in [("small", 256usize), ("bulk", 64 * 1024)] {
        let mut rng = Mix(7);
        let body: Vec<u8> = (0..payload_bytes).map(|_| rng.next() as u8).collect();

        // Historic path: every frame is a fresh Vec, every chunk and
        // every reassembled frame a copy.
        let mut asm = FrameAssembler::new();
        let mut samples = Vec::with_capacity(iters);
        let mut digest = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let frame = encode_frame(&body);
            let mut frames = Vec::new();
            for chunk in segment(&frame) {
                frames.extend(asm.push(chunk).expect("clean stream"));
            }
            samples.push(t0.elapsed().as_nanos() as u64);
            digest = fnv1a(&frames[0]);
        }
        out.push(WireRow {
            payload,
            payload_bytes,
            path: "copy",
            stats: LatencyStats::from_samples(samples),
            digest,
        });

        // Pooled path: one recycled allocation per frame, chunks and
        // completed frames are views of it.
        let pool = BufferPool::new();
        let mut asm = FrameAssembler::new();
        let mut samples = Vec::with_capacity(iters);
        let mut pooled_digest = 0;
        for _ in 0..iters {
            let t0 = Instant::now();
            let frame = encode_frame_pooled(&pool, |v| v.extend_from_slice(&body));
            let mut frames: Vec<PooledBytes> = Vec::new();
            for chunk in segment_pooled(&frame) {
                frames.extend(asm.push_pooled(&chunk).expect("clean stream"));
            }
            samples.push(t0.elapsed().as_nanos() as u64);
            pooled_digest = fnv1a(&frames[0]);
            drop(frames);
            drop(frame);
        }
        assert_eq!(
            digest, pooled_digest,
            "{payload}: pooled reassembly diverged from the copying path"
        );
        out.push(WireRow {
            payload,
            payload_bytes,
            path: "pooled",
            stats: LatencyStats::from_samples(samples),
            digest: pooled_digest,
        });
    }
    out
}

/// FNV-1a over the concatenated buffer bytes (same parameters as the
/// ablation digests).
fn buffers_digest(buffers: &[GlobalBuffer]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for buf in buffers {
        for &b in buf.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vm_rows_cover_every_engine_and_agree_on_outputs() {
        // vm_rows itself fails on digest divergence; this pins coverage.
        let rows = vm_rows(2).expect("wall VM bench runs clean");
        assert_eq!(rows.len(), 5 * ENGINES.len());
        for (name, _) in ENGINES {
            assert_eq!(rows.iter().filter(|r| r.engine == name).count(), 5);
        }
        for r in &rows {
            assert!(r.stats.requests_per_sec() > 0.0);
            assert!(r.stats.p50_nanos <= r.stats.p99_nanos);
        }
    }

    #[test]
    fn compiled_engine_clears_2x_over_interpreter() {
        // The PR's acceptance bar, gated in-tree at a small iteration
        // count and re-checked nightly at bench scale. Summed medians
        // over the five paper kernels so one scheduler hiccup on a
        // short kernel cannot flake the gate. The strict bar only
        // means something on optimized code: under `cargo test` in a
        // debug profile both engines run unoptimized and the compiled
        // engine's inlined fast paths don't exist, so there the test
        // only pins that the bench machinery produces a sane ratio.
        let rows =
            vm_rows(if cfg!(debug_assertions) { 4 } else { 8 }).expect("wall VM bench runs clean");
        let sum = |engine: &str| -> u64 {
            rows.iter()
                .filter(|r| r.engine == engine)
                .map(|r| r.stats.p50_nanos)
                .sum()
        };
        let interp = sum("interp");
        let compiled = sum("compiled");
        let speedup = interp as f64 / compiled as f64;
        let bar = if cfg!(debug_assertions) { 0.5 } else { 2.0 };
        assert!(
            speedup >= bar,
            "compiled engine speedup {speedup:.2}x across paper kernels \
             (interp {interp} ns vs compiled {compiled} ns median sums) \
             is below the {bar}x bar"
        );
    }

    #[test]
    fn wire_paths_agree_and_report_sane_stats() {
        let rows = wire_rows(16);
        assert_eq!(rows.len(), 4);
        for size in ["small", "bulk"] {
            let find = |path: &str| {
                rows.iter()
                    .find(|r| r.payload == size && r.path == path)
                    .unwrap()
            };
            assert_eq!(find("copy").digest, find("pooled").digest);
        }
    }
}
