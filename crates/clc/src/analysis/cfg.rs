//! Control-flow graph construction over kernel bytecode.
//!
//! Basic blocks are delimited by jump targets and by `Jump`,
//! `JumpIfFalse`, `JumpIfTrue`, `Return` and `Barrier` instructions
//! (`Barrier` terminates a block so that "barrier region" reasoning can
//! work at block granularity: no block ever contains an interior barrier).

use crate::bytecode::Instr;

/// A maximal straight-line instruction sequence.
#[derive(Debug, Clone)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the last instruction (the terminator).
    pub end: usize,
    /// Successor block ids.
    pub succs: Vec<usize>,
}

/// The control-flow graph of one kernel.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// Blocks in instruction order; block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Instruction index → owning block id.
    pub block_of: Vec<usize>,
}

/// A fixed-size bitset over block ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockSet {
    words: Vec<u64>,
}

impl BlockSet {
    /// The empty set over `n` blocks.
    pub fn empty(n: usize) -> Self {
        BlockSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// The full set over `n` blocks.
    pub fn full(n: usize) -> Self {
        let mut s = BlockSet::empty(n);
        for i in 0..n {
            s.insert(i);
        }
        s
    }

    /// Adds `i`; returns whether it was newly inserted.
    pub fn insert(&mut self, i: usize) -> bool {
        let (w, b) = (i / 64, i % 64);
        let newly = self.words[w] & (1 << b) == 0;
        self.words[w] |= 1 << b;
        newly
    }

    /// Membership test.
    pub fn contains(&self, i: usize) -> bool {
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// In-place intersection.
    pub fn intersect(&mut self, other: &BlockSet) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place union; returns whether anything changed.
    pub fn union(&mut self, other: &BlockSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let next = *a | *b;
            changed |= next != *a;
            *a = next;
        }
        changed
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

impl Cfg {
    /// Builds the CFG for `code`.
    pub fn build(code: &[Instr]) -> Cfg {
        let n = code.len();
        if n == 0 {
            return Cfg {
                blocks: Vec::new(),
                block_of: Vec::new(),
            };
        }
        let mut leader = vec![false; n];
        leader[0] = true;
        for (pc, ins) in code.iter().enumerate() {
            match ins {
                Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => {
                    if (*t as usize) < n {
                        leader[*t as usize] = true;
                    }
                    if pc + 1 < n {
                        leader[pc + 1] = true;
                    }
                }
                Instr::Return | Instr::Barrier if pc + 1 < n => {
                    leader[pc + 1] = true;
                }
                _ => {}
            }
        }
        let mut blocks = Vec::new();
        let mut start = 0;
        for (pc, _) in leader.iter().enumerate().skip(1).filter(|(_, l)| **l) {
            blocks.push(Block {
                start,
                end: pc,
                succs: Vec::new(),
            });
            start = pc;
        }
        blocks.push(Block {
            start,
            end: n,
            succs: Vec::new(),
        });
        let mut block_of = vec![0usize; n];
        for (i, b) in blocks.iter().enumerate() {
            block_of[b.start..b.end].fill(i);
        }
        let m = blocks.len();
        for i in 0..m {
            let last = blocks[i].end - 1;
            let mut succs = Vec::new();
            let mut push = |b: usize| {
                if !succs.contains(&b) {
                    succs.push(b);
                }
            };
            match code[last] {
                Instr::Jump(t) => {
                    if (t as usize) < n {
                        push(block_of[t as usize]);
                    }
                }
                Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => {
                    if blocks[i].end < n {
                        push(block_of[blocks[i].end]);
                    }
                    if (t as usize) < n {
                        push(block_of[t as usize]);
                    }
                }
                Instr::Return => {}
                _ => {
                    if blocks[i].end < n {
                        push(block_of[blocks[i].end]);
                    }
                }
            }
            blocks[i].succs = succs;
        }
        Cfg { blocks, block_of }
    }

    /// Post-dominator sets, one per block, each including the block itself.
    ///
    /// A virtual exit joins every exit block (and, defensively, blocks with
    /// no successors at all), so kernels with multiple `return`s work.
    pub fn post_dominators(&self) -> Vec<BlockSet> {
        let m = self.blocks.len();
        // Index m is the virtual exit.
        let mut pdom: Vec<BlockSet> = (0..m).map(|_| BlockSet::full(m + 1)).collect();
        let mut exit = BlockSet::empty(m + 1);
        exit.insert(m);
        pdom.push(exit);
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate high→low: blocks are roughly topological in
            // instruction order, so reverse order converges fast.
            for b in (0..m).rev() {
                let mut acc: Option<BlockSet> = None;
                let succs = &self.blocks[b].succs;
                if succs.is_empty() {
                    acc = Some(pdom[m].clone());
                } else {
                    for &s in succs {
                        match &mut acc {
                            None => acc = Some(pdom[s].clone()),
                            Some(a) => a.intersect(&pdom[s]),
                        }
                    }
                }
                let mut next = acc.expect("at least one successor or virtual exit");
                next.insert(b);
                if next != pdom[b] {
                    pdom[b] = next;
                    changed = true;
                }
            }
        }
        pdom.truncate(m);
        pdom
    }

    /// Blocks control-dependent on the branch terminating `branch_block`:
    /// every block that post-dominates some successor of the branch but not
    /// the branch block itself.
    pub fn control_dependents(&self, branch_block: usize, pdom: &[BlockSet]) -> BlockSet {
        let m = self.blocks.len();
        let mut out = BlockSet::empty(m);
        if self.blocks[branch_block].succs.len() < 2 {
            return out;
        }
        for b in 0..m {
            if pdom[branch_block].contains(b) {
                continue;
            }
            if self.blocks[branch_block]
                .succs
                .iter()
                .any(|&s| pdom[s].contains(b))
            {
                out.insert(b);
            }
        }
        out
    }

    /// Blocks reachable from the entry block.
    pub fn reachable(&self) -> BlockSet {
        let m = self.blocks.len();
        let mut seen = BlockSet::empty(m);
        if m == 0 {
            return seen;
        }
        let mut stack = vec![0usize];
        seen.insert(0);
        while let Some(b) = stack.pop() {
            for &s in &self.blocks[b].succs {
                if seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        seen
    }

    /// For each block, the set of blocks reachable from it (itself
    /// included) along paths that never leave a barrier-terminated block —
    /// i.e. without crossing a `barrier()`. Two `__local` accesses can be
    /// concurrent iff one's block barrier-free-reaches the other's.
    pub fn barrier_free_reach(&self, code: &[Instr]) -> Vec<BlockSet> {
        let m = self.blocks.len();
        let ends_in_barrier: Vec<bool> = self
            .blocks
            .iter()
            .map(|b| matches!(code[b.end - 1], Instr::Barrier))
            .collect();
        (0..m)
            .map(|from| {
                let mut seen = BlockSet::empty(m);
                seen.insert(from);
                let mut stack = vec![from];
                while let Some(b) = stack.pop() {
                    if ends_in_barrier[b] {
                        continue;
                    }
                    for &s in &self.blocks[b].succs {
                        if seen.insert(s) {
                            stack.push(s);
                        }
                    }
                }
                seen
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bytecode::Instr as I;
    use crate::types::ScalarType;

    fn push0() -> I {
        I::PushInt(0, ScalarType::I32)
    }

    #[test]
    fn straight_line_is_one_block() {
        let code = [push0(), push0(), I::Return];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 1);
        assert!(cfg.blocks[0].succs.is_empty());
    }

    #[test]
    fn diamond_has_four_blocks() {
        // 0: push, 1: jif 4, 2: push, 3: jump 5, 4: push, 5: return
        let code = [
            I::PushBool(true),
            I::JumpIfFalse(4),
            push0(),
            I::Jump(5),
            push0(),
            I::Return,
        ];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 4);
        assert_eq!(cfg.blocks[0].succs, vec![1, 2]);
        assert_eq!(cfg.blocks[1].succs, vec![3]);
        assert_eq!(cfg.blocks[2].succs, vec![3]);
        let pdom = cfg.post_dominators();
        // The merge block post-dominates everything.
        assert!(pdom[0].contains(3));
        assert!(pdom[1].contains(3));
        // Branch arms are control-dependent on the branch.
        let cd = cfg.control_dependents(0, &pdom);
        assert!(cd.contains(1));
        assert!(cd.contains(2));
        assert!(!cd.contains(3));
    }

    #[test]
    fn barrier_splits_blocks_and_reach() {
        let code = [push0(), I::Barrier, push0(), I::Return];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks.len(), 2);
        let reach = cfg.barrier_free_reach(&code);
        assert!(reach[0].contains(0));
        assert!(!reach[0].contains(1), "cannot cross the barrier");
        assert!(reach[1].contains(1));
    }

    #[test]
    fn loop_backedge_reaches_itself() {
        // 0: push cond, 1: jif 4 (exit), 2: push, 3: jump 0, 4: return
        let code = [
            I::PushBool(true),
            I::JumpIfFalse(4),
            push0(),
            I::Jump(0),
            I::Return,
        ];
        let cfg = Cfg::build(&code);
        let reach = cfg.barrier_free_reach(&code);
        let body = cfg.block_of[2];
        assert!(reach[body].contains(cfg.block_of[0]));
        assert!(reach[body].contains(body));
    }
}
