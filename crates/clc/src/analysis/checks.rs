//! The analyzer proper: abstract interpretation of kernel bytecode over
//! the CFG, driving the barrier-divergence, local-memory race and bounds
//! checks, plus the AST-level use-before-init check and feature
//! extraction.
//!
//! # Soundness stance
//!
//! Divergence and race detection are *conservative*: a kernel the
//! analyzer accepts should not trip the VM's corresponding dynamic
//! checks, at the price of occasional false positives (e.g. guarded
//! reduction trees, whose disjointness needs relational reasoning
//! between the guard and the index). Bounds and use-before-init are
//! *best-effort* warnings unless an access is provably out of bounds.

use std::collections::{HashMap, HashSet};

use crate::analysis::cfg::{BlockSet, Cfg};
use crate::analysis::dataflow::{self, Form, ForwardAnalysis, Iv, Pt, PtrBase, Sc, Uoff, AV};
use crate::analysis::effects::{
    AccessMode, AccessPattern, ArgEffect, EffectSummary, PatternBase, GEOM_SYM, LOAD_SYM,
    MAX_PATTERNS,
};
use crate::analysis::{KernelFeatures, KernelReport};
use crate::ast::{Block as AstBlock, Expr, KernelDecl, ParamType, Stmt};
use crate::bytecode::{BinKind, CompiledKernel, Geom, Instr};
use crate::diag::{Diagnostic, Diagnostics, Severity, Stage};
use crate::types::{AddressSpace, ScalarType};

/// Interval bounds beyond this magnitude are treated as "unknown" rather
/// than "meaningfully bounded" when deciding whether to warn.
const HUGE: i64 = 1 << 40;

/// The per-point abstract state: operand stack plus local slots.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct AbsState {
    stack: Vec<AV>,
    slots: Vec<AV>,
}

/// A `__local`/memory access observed during the final replay pass.
#[derive(Debug, Clone, Copy)]
struct Event {
    pc: usize,
    block: usize,
    write: bool,
    base: PtrBase,
    form: Form,
    range: Iv,
    value_item_dep: bool,
    ctrl_tainted: bool,
}

/// Observations collected by replaying the solved states.
#[derive(Default)]
struct Obs {
    /// `(block, condition form)` at each conditional terminator.
    branches: Vec<(usize, Form)>,
    /// Memory accesses.
    events: Vec<Event>,
    /// Dimensions the kernel queries `get_global_id`/`get_local_id` for.
    active: [bool; 3],
    /// A geometry query had a non-constant dimension operand.
    all_active: bool,
}

struct Analyzer<'a> {
    kernel: &'a CompiledKernel,
    block_of: &'a [usize],
    tainted: BlockSet,
}

impl ForwardAnalysis for Analyzer<'_> {
    type State = AbsState;

    fn boundary(&self) -> AbsState {
        let mut slots = Vec::with_capacity(self.kernel.n_slots as usize);
        for (i, p) in self.kernel.params.iter().enumerate() {
            let slot = i as u16;
            slots.push(match p {
                ParamType::Scalar(_) => AV::Scalar(Sc {
                    form: Form::uniform_sym(u32::from(slot)),
                    range: Iv::TOP,
                }),
                ParamType::Pointer(AddressSpace::Local, _) => AV::Ptr(Pt {
                    base: PtrBase::LocalDyn(slot),
                    form: Form::constant(0),
                    range: Iv::constant(0),
                }),
                ParamType::Pointer(..) => AV::Ptr(Pt {
                    base: PtrBase::Global(slot),
                    form: Form::constant(0),
                    range: Iv::constant(0),
                }),
            });
        }
        while slots.len() < self.kernel.n_slots as usize {
            slots.push(AV::Scalar(Sc::constant(0)));
        }
        AbsState {
            stack: Vec::new(),
            slots,
        }
    }

    fn transfer(&mut self, state: &mut AbsState, pc: usize, instr: &Instr) {
        self.step(state, pc, instr, None);
    }

    fn join(&self, into: &mut AbsState, from: &AbsState) -> bool {
        let mut changed = false;
        // Structured codegen keeps stack heights equal at joins; truncate
        // defensively if they ever differ.
        let n = into.stack.len().min(from.stack.len());
        if into.stack.len() != n {
            into.stack.truncate(n);
            changed = true;
        }
        for i in 0..n {
            let j = into.stack[i].join(from.stack[i]);
            if j != into.stack[i] {
                into.stack[i] = j;
                changed = true;
            }
        }
        for i in 0..into.slots.len().min(from.slots.len()) {
            let j = into.slots[i].join(from.slots[i]);
            if j != into.slots[i] {
                into.slots[i] = j;
                changed = true;
            }
        }
        changed
    }
}

impl Analyzer<'_> {
    fn pop(st: &mut AbsState) -> AV {
        st.stack.pop().unwrap_or_else(AV::top)
    }

    /// One instruction's abstract effect; `obs` is only set in the final
    /// replay pass.
    fn step(&self, st: &mut AbsState, pc: usize, instr: &Instr, mut obs: Option<&mut Obs>) {
        let in_tainted = self.tainted.contains(self.block_of[pc]);
        match *instr {
            Instr::PushInt(v, _) => st.stack.push(AV::Scalar(Sc::constant(v))),
            Instr::PushFloat(..) => st.stack.push(AV::Scalar(Sc {
                form: Form::uniform_opaque(),
                range: Iv::TOP,
            })),
            Instr::PushBool(b) => st.stack.push(AV::Scalar(Sc::constant(i64::from(b)))),
            Instr::PushLocalPtr { byte_offset, .. } => st.stack.push(AV::Ptr(Pt {
                base: PtrBase::LocalArray(byte_offset),
                form: Form::constant(0),
                range: Iv::constant(0),
            })),
            Instr::LoadLocal(s) => {
                let v = st.slots.get(s as usize).copied().unwrap_or_else(AV::top);
                st.stack.push(v);
            }
            Instr::StoreLocal(s) => {
                let mut v = Self::pop(st);
                if in_tainted {
                    // Implicit flow: a value stored under work-item-dependent
                    // control is itself work-item-dependent.
                    v = v.taint();
                }
                if let Some(slot) = st.slots.get_mut(s as usize) {
                    *slot = v;
                }
            }
            Instr::LoadMem(_) => {
                let ptr = Self::pop(st);
                let val = match ptr {
                    AV::Ptr(p) => {
                        if let Some(o) = obs.as_deref_mut() {
                            o.events.push(Event {
                                pc,
                                block: self.block_of[pc],
                                write: false,
                                base: p.base,
                                form: p.form,
                                range: p.range,
                                value_item_dep: false,
                                ctrl_tainted: in_tainted,
                            });
                        }
                        if p.form.is_uniform() {
                            // Same address for every work-item → same value.
                            Sc {
                                form: Form::uniform_sym(LOAD_SYM + pc as u32),
                                range: Iv::TOP,
                            }
                        } else {
                            Sc::top()
                        }
                    }
                    AV::Scalar(_) => Sc::top(),
                };
                st.stack.push(AV::Scalar(val));
            }
            Instr::StoreMem(_) => {
                let value = Self::pop(st);
                let ptr = Self::pop(st);
                if let (AV::Ptr(p), Some(o)) = (ptr, obs.as_deref_mut()) {
                    o.events.push(Event {
                        pc,
                        block: self.block_of[pc],
                        write: true,
                        base: p.base,
                        form: p.form,
                        range: p.range,
                        value_item_dep: value.as_scalar().form.is_item_dependent(),
                        ctrl_tainted: in_tainted,
                    });
                }
            }
            Instr::PtrAdd => {
                let idx = Self::pop(st).as_scalar();
                let ptr = Self::pop(st);
                let out = match ptr {
                    AV::Ptr(p) => AV::Ptr(Pt {
                        base: p.base,
                        form: p.form + idx.form,
                        range: p.range + idx.range,
                    }),
                    AV::Scalar(_) => AV::Ptr(Pt {
                        base: PtrBase::Unknown,
                        form: Form::top(),
                        range: Iv::TOP,
                    }),
                };
                st.stack.push(out);
            }
            Instr::Bin(kind, _) => {
                let rhs = Self::pop(st).as_scalar();
                let lhs = Self::pop(st).as_scalar();
                let out = match kind {
                    BinKind::Add => Sc {
                        form: lhs.form + rhs.form,
                        range: lhs.range + rhs.range,
                    },
                    BinKind::Sub => Sc {
                        form: lhs.form - rhs.form,
                        range: lhs.range - rhs.range,
                    },
                    BinKind::Mul => Sc {
                        form: lhs.form * rhs.form,
                        range: lhs.range * rhs.range,
                    },
                    BinKind::Rem => {
                        let range = match rhs.range.as_const() {
                            Some(c) if c > 0 => {
                                Iv::range(if lhs.range.lo >= 0 { 0 } else { 1 - c }, c - 1)
                            }
                            _ => Iv::TOP,
                        };
                        Sc {
                            form: lhs.form.opaque_combine(rhs.form),
                            range,
                        }
                    }
                    BinKind::And => {
                        let mask = match (lhs.range.as_const(), rhs.range.as_const()) {
                            (_, Some(m)) | (Some(m), _) if m >= 0 => Some(m),
                            _ => None,
                        };
                        Sc {
                            form: lhs.form.opaque_combine(rhs.form),
                            range: mask.map_or(Iv::TOP, |m| Iv::range(0, m)),
                        }
                    }
                    _ => Sc {
                        form: lhs.form.opaque_combine(rhs.form),
                        range: Iv::TOP,
                    },
                };
                st.stack.push(AV::Scalar(out));
            }
            Instr::Cmp(..) => {
                let rhs = Self::pop(st).as_scalar();
                let lhs = Self::pop(st).as_scalar();
                st.stack.push(AV::Scalar(Sc {
                    form: lhs.form.opaque_combine(rhs.form),
                    range: Iv::range(0, 1),
                }));
            }
            Instr::Neg(_) => {
                let v = Self::pop(st).as_scalar();
                st.stack.push(AV::Scalar(Sc {
                    form: -v.form,
                    range: -v.range,
                }));
            }
            Instr::BitNot(_) | Instr::NotBool => {
                let v = Self::pop(st).as_scalar();
                let form = if v.form.is_uniform() {
                    Form::uniform_opaque()
                } else {
                    Form::top()
                };
                let range = if matches!(instr, Instr::NotBool) {
                    Iv::range(0, 1)
                } else {
                    Iv::TOP
                };
                st.stack.push(AV::Scalar(Sc { form, range }));
            }
            Instr::Cast { from, to } => {
                if let Some(AV::Scalar(s)) = st.stack.last_mut() {
                    let from_int = from.is_integer() || from == ScalarType::Bool;
                    if to == ScalarType::Bool {
                        s.range = Iv::range(0, 1);
                    } else if !from_int || !to.is_integer() || to.size_bytes() < from.size_bytes() {
                        s.range = Iv::TOP;
                    }
                }
            }
            Instr::Jump(_) => {}
            Instr::JumpIfFalse(_) | Instr::JumpIfTrue(_) => {
                let c = Self::pop(st).as_scalar();
                if let Some(o) = obs.as_deref_mut() {
                    o.branches.push((self.block_of[pc], c.form));
                }
            }
            Instr::CallMath1(..) => {
                let v = Self::pop(st).as_scalar();
                let form = if v.form.is_uniform() {
                    Form::uniform_opaque()
                } else {
                    Form::top()
                };
                st.stack.push(AV::Scalar(Sc {
                    form,
                    range: Iv::TOP,
                }));
            }
            Instr::CallMath2(..) => {
                let b = Self::pop(st).as_scalar();
                let a = Self::pop(st).as_scalar();
                st.stack.push(AV::Scalar(Sc {
                    form: a.form.opaque_combine(b.form),
                    range: Iv::TOP,
                }));
            }
            Instr::Query(g) => {
                let dim_v = Self::pop(st).as_scalar();
                let dim = dim_v
                    .range
                    .as_const()
                    .filter(|k| (0..3).contains(k))
                    .map(|k| k as usize);
                let nonneg = Iv::range(0, i64::MAX);
                let positive = Iv::range(1, i64::MAX);
                let out = match (g, dim) {
                    (Geom::GlobalId, Some(d)) => {
                        if let Some(o) = obs.as_deref_mut() {
                            o.active[d] = true;
                        }
                        Sc {
                            form: Form::gid(d, GEOM_SYM + d as u32),
                            range: nonneg,
                        }
                    }
                    (Geom::LocalId, Some(d)) => {
                        if let Some(o) = obs.as_deref_mut() {
                            o.active[d] = true;
                        }
                        Sc {
                            form: Form::lid(d),
                            range: nonneg,
                        }
                    }
                    (Geom::GlobalId | Geom::LocalId, None) => {
                        if let Some(o) = obs {
                            o.all_active = true;
                        }
                        Sc {
                            form: Form::top(),
                            range: nonneg,
                        }
                    }
                    (Geom::GroupId, Some(d)) => Sc {
                        form: Form::uniform_sym(GEOM_SYM + 100 + d as u32),
                        range: nonneg,
                    },
                    (Geom::GlobalSize, Some(d)) => Sc {
                        form: Form::uniform_sym(GEOM_SYM + 200 + d as u32),
                        range: positive,
                    },
                    (Geom::LocalSize, Some(d)) => Sc {
                        form: Form::uniform_sym(GEOM_SYM + 300 + d as u32),
                        range: positive,
                    },
                    (Geom::NumGroups, Some(d)) => Sc {
                        form: Form::uniform_sym(GEOM_SYM + 400 + d as u32),
                        range: positive,
                    },
                    (Geom::WorkDim, _) => Sc {
                        form: Form::uniform_sym(GEOM_SYM + 500),
                        range: Iv::range(1, 3),
                    },
                    (_, None) => Sc {
                        form: Form::uniform_opaque(),
                        range: nonneg,
                    },
                };
                st.stack.push(AV::Scalar(out));
            }
            Instr::Barrier | Instr::Return => {}
            Instr::Dup => {
                let v = st.stack.last().copied().unwrap_or_else(AV::top);
                st.stack.push(v);
            }
            Instr::Pop => {
                Self::pop(st);
            }
        }
    }
}

/// Whether a structured item-dependent index form provably maps distinct
/// work-items to distinct elements.
fn is_private(form: &Form, active: &[bool; 3], dims: Option<&[u64]>) -> bool {
    if form.tainted {
        return false;
    }
    let nz: Vec<usize> = (0..3).filter(|&d| form.coeffs[d] != 0).collect();
    match nz.len() {
        1 => {
            let d = nz[0];
            active.iter().enumerate().all(|(e, &a)| !a || e == d)
        }
        2 => {
            // The 2-D tile pattern `row*stride + col` over a declared
            // `[rows][stride]` array, assuming the launch's local size does
            // not exceed the declared extents.
            let Some(dims) = dims else { return false };
            if dims.len() != 2 {
                return false;
            }
            let stride = dims[1];
            if stride <= 1 {
                return false;
            }
            let (a, b) = (nz[0], nz[1]);
            let (ca, cb) = (form.coeffs[a].unsigned_abs(), form.coeffs[b].unsigned_abs());
            let pattern = (ca == stride && cb == 1) || (ca == 1 && cb == stride);
            pattern
                && active
                    .iter()
                    .enumerate()
                    .all(|(e, &x)| !x || e == a || e == b)
        }
        _ => false,
    }
}

/// Analyzes one compiled kernel against its declaration.
pub(crate) fn analyze(decl: &KernelDecl, kernel: &CompiledKernel, source: &str) -> KernelReport {
    let mut diags = Diagnostics::new();
    let cfg = Cfg::build(&kernel.code);
    let m = cfg.blocks.len();
    let pdom = cfg.post_dominators();

    // Control-taint fixpoint: solve, observe branch conditions, widen the
    // tainted-block set, repeat until stable. Monotone and bounded by the
    // block count, so this terminates.
    let mut tainted = BlockSet::empty(m);
    let (obs, entries) = loop {
        let mut analyzer = Analyzer {
            kernel,
            block_of: &cfg.block_of,
            tainted: tainted.clone(),
        };
        let entries = dataflow::solve(&cfg, &kernel.code, &mut analyzer);
        let mut obs = Obs::default();
        for (b, entry) in entries.iter().enumerate() {
            let Some(entry) = entry else { continue };
            let mut st = entry.clone();
            for pc in cfg.blocks[b].start..cfg.blocks[b].end {
                analyzer.step(&mut st, pc, &kernel.code[pc], Some(&mut obs));
            }
        }
        let mut changed = false;
        for &(b, form) in &obs.branches {
            if form.is_item_dependent() {
                changed |= tainted.union(&cfg.control_dependents(b, &pdom));
            }
        }
        if !changed {
            break (obs, entries);
        }
    };
    let active = if obs.all_active {
        [true; 3]
    } else {
        obs.active
    };

    let pos = |pc: usize| -> (usize, usize) {
        kernel
            .spans
            .get(pc)
            .map(|s| s.line_col(source))
            .unwrap_or((1, 1))
    };
    let mut seen: HashSet<String> = HashSet::new();
    let mut emit = |diags: &mut Diagnostics, sev: Severity, pc: usize, msg: String| {
        let (line, col) = pos(pc);
        let d = Diagnostic::at_position(Stage::Analysis, sev, line, col, msg);
        if seen.insert(d.render()) {
            diags.push(d);
        }
    };

    // --- Check 1: barrier divergence. -----------------------------------
    for site in &kernel.barrier_sites {
        let b = cfg.block_of[site.pc as usize];
        if entries[b].is_none() {
            continue;
        }
        if tainted.contains(b) {
            diags.push(Diagnostic::at_position(
                Stage::Analysis,
                Severity::Error,
                site.line as usize,
                site.col as usize,
                "barrier divergence: this barrier is inside work-item-dependent control \
                 flow, so the work-items of a group may not all reach it"
                    .to_string(),
            ));
        }
    }

    // --- Check 2: local-memory races. ------------------------------------
    let reach = cfg.barrier_free_reach(&kernel.code);
    let reachable = cfg.reachable();
    // anc[b] = blocks that reach b without crossing a barrier. Two accesses
    // can be concurrent iff some common block reaches both barrier-free
    // (they lie in one barrier interval).
    let mut anc: Vec<BlockSet> = (0..m).map(|_| BlockSet::empty(m)).collect();
    for (p, rp) in reach.iter().enumerate() {
        if !reachable.contains(p) {
            continue;
        }
        for (b, a) in anc.iter_mut().enumerate() {
            if rp.contains(b) {
                a.insert(p);
            }
        }
    }
    let connected = |x: usize, y: usize| {
        let mut i = anc[x].clone();
        i.intersect(&anc[y]);
        !i.is_empty()
    };
    let base_name = |base: PtrBase| -> Option<String> {
        match base {
            PtrBase::LocalArray(off) => kernel
                .local_arrays
                .iter()
                .find(|a| a.byte_offset == off)
                .map(|a| a.name.clone()),
            PtrBase::LocalDyn(slot) => decl.params.get(slot as usize).map(|p| p.name.clone()),
            _ => None,
        }
    };
    let base_dims = |base: PtrBase| -> Option<&[u64]> {
        match base {
            PtrBase::LocalArray(off) => kernel
                .local_arrays
                .iter()
                .find(|a| a.byte_offset == off)
                .map(|a| a.dims.as_slice()),
            _ => None,
        }
    };
    let local_events: Vec<Event> = obs
        .events
        .iter()
        .filter(|e| matches!(e.base, PtrBase::LocalArray(_) | PtrBase::LocalDyn(_)))
        .copied()
        .collect();
    for w in local_events.iter().filter(|e| e.write) {
        let name = base_name(w.base).unwrap_or_else(|| "<local>".to_string());
        if w.form.tainted {
            emit(
                &mut diags,
                Severity::Error,
                w.pc,
                format!(
                    "data race on `{name}`: store uses an unpredictable \
                     work-item-dependent index"
                ),
            );
            continue;
        }
        if w.form.is_uniform() {
            if w.value_item_dep {
                emit(
                    &mut diags,
                    Severity::Error,
                    w.pc,
                    format!(
                        "data race on `{name}`: work-items store different values \
                         to the same element"
                    ),
                );
            } else if w.ctrl_tainted
                && local_events
                    .iter()
                    .any(|x| x.pc != w.pc && x.base == w.base && connected(x.block, w.block))
            {
                emit(
                    &mut diags,
                    Severity::Error,
                    w.pc,
                    format!(
                        "data race on `{name}`: divergent store may conflict with \
                         other work-items' accesses without an intervening barrier"
                    ),
                );
            }
            continue;
        }
        // Structured work-item-dependent index.
        if !is_private(&w.form, &active, base_dims(w.base)) {
            emit(
                &mut diags,
                Severity::Error,
                w.pc,
                format!("data race on `{name}`: distinct work-items may store to the same element"),
            );
            continue;
        }
        if local_events.iter().any(|x| {
            x.pc != w.pc && x.base == w.base && x.form != w.form && connected(x.block, w.block)
        }) {
            emit(
                &mut diags,
                Severity::Error,
                w.pc,
                format!(
                    "data race on `{name}`: accessed with different work-item index \
                     patterns without an intervening barrier"
                ),
            );
        }
    }

    // --- Check 3: bounds on statically-sized local arrays. ----------------
    for e in &local_events {
        let PtrBase::LocalArray(off) = e.base else {
            continue;
        };
        let Some(info) = kernel.local_arrays.iter().find(|a| a.byte_offset == off) else {
            continue;
        };
        let extent = info.extent_elems() as i64;
        let (lo, hi) = (e.range.lo, e.range.hi);
        if lo >= extent || hi < 0 {
            emit(
                &mut diags,
                Severity::Error,
                e.pc,
                format!(
                    "index of `{}` is always out of bounds ({} element{})",
                    info.name,
                    extent,
                    if extent == 1 { "" } else { "s" }
                ),
            );
        } else if (hi >= extent && hi < HUGE) || (lo < 0 && lo > -HUGE) {
            emit(
                &mut diags,
                Severity::Warning,
                e.pc,
                format!(
                    "index of `{}` may be out of bounds ({} element{})",
                    info.name,
                    extent,
                    if extent == 1 { "" } else { "s" }
                ),
            );
        }
    }

    // --- Check 4: use-before-init of private scalars (AST level, since
    // sema's deterministic zero-init hides this in the bytecode). ----------
    check_uninit(decl, source, &mut diags);

    // --- Features. --------------------------------------------------------
    let mut flops = 0u64;
    let mut bytes = 0u64;
    for ins in &kernel.code {
        match *ins {
            Instr::Bin(_, t) | Instr::Neg(t) | Instr::CallMath1(_, t) | Instr::CallMath2(_, t)
                if t.is_float() =>
            {
                flops += 1;
            }
            Instr::LoadMem(t) | Instr::StoreMem(t) => bytes += t.size_bytes() as u64,
            _ => {}
        }
    }
    let reach_count = (0..m).filter(|&b| reachable.contains(b)).count().max(1);
    let div_count = (0..m)
        .filter(|&b| tainted.contains(b) && reachable.contains(b))
        .count();
    let features = KernelFeatures {
        local_bytes: kernel.static_local_bytes,
        barrier_count: kernel.barrier_sites.len() as u32,
        arithmetic_intensity: flops as f64 / bytes.max(1) as f64,
        divergence_score: div_count as f64 / reach_count as f64,
    };

    let effects = summarize_effects(kernel, &obs, &active);

    KernelReport {
        diagnostics: diags,
        features,
        effects,
    }
}

// ---------------------------------------------------------------------------
// Effect summaries (inter-kernel; see `analysis::effects`).
// ---------------------------------------------------------------------------

/// Folds the replay pass's global-memory events into per-argument effect
/// summaries. Over-approximates: an access through a pointer whose base
/// the dataflow lost (`PtrBase::Unknown`) is charged to *every* global
/// pointer argument with an unprovable pattern and unbounded interval.
fn summarize_effects(kernel: &CompiledKernel, obs: &Obs, active: &[bool; 3]) -> EffectSummary {
    let mut args: Vec<ArgEffect> = kernel
        .params
        .iter()
        .map(|p| {
            let mut a = ArgEffect::untouched();
            match p {
                ParamType::Scalar(_) | ParamType::Pointer(AddressSpace::Local, _) => {}
                ParamType::Pointer(_, t) => a.elem_bytes = t.size_bytes() as u32,
            }
            a
        })
        .collect();
    for e in &obs.events {
        match e.base {
            PtrBase::Global(slot) => {
                if let Some(a) = args.get_mut(slot as usize) {
                    fold_event(a, e.write, &e.form, e.range, active);
                }
            }
            PtrBase::LocalArray(_) | PtrBase::LocalDyn(_) => {}
            // Base lost: the access may land in any global buffer.
            _ => {
                for a in args.iter_mut().filter(|a| a.elem_bytes != 0) {
                    fold_event(a, e.write, &Form::top(), Iv::TOP, active);
                }
            }
        }
    }
    EffectSummary {
        args,
        barriers: kernel.barrier_sites.len() as u32,
    }
}

/// Folds one access into an argument's effect.
fn fold_event(a: &mut ArgEffect, write: bool, form: &Form, range: Iv, active: &[bool; 3]) {
    let first = a.mode == AccessMode::None;
    a.mode = a.mode.observe(write);
    let bounds = (range.lo > -HUGE && range.hi < HUGE).then_some((range.lo, range.hi));
    a.elem_bounds = if first {
        bounds
    } else {
        match (a.elem_bounds, bounds) {
            (Some((lo, hi)), Some((l2, h2))) => Some((lo.min(l2), hi.max(h2))),
            _ => None,
        }
    };
    let base = if form.tainted {
        PatternBase::Opaque
    } else {
        match form.uoff {
            Uoff::Known(k) => PatternBase::Const(k),
            Uoff::Sym { id, add } if (GEOM_SYM..LOAD_SYM).contains(&id) => PatternBase::Geom {
                id: id - GEOM_SYM,
                add,
            },
            _ => PatternBase::Opaque,
        }
    };
    // Globally item-private means injective over the *whole* NDRange, not
    // just within a group (contrast `is_private`, which serves the
    // per-group `__local` checks): a unit coefficient on exactly one
    // local-id dimension, rebased by that same dimension's group base —
    // i.e. the index is `gid(d) + const` — with no other dimension active.
    let provable = !form.tainted && {
        let nz: Vec<usize> = (0..3).filter(|&d| form.coeffs[d] != 0).collect();
        nz.len() == 1
            && form.coeffs[nz[0]] == 1
            && matches!(base, PatternBase::Geom { id, .. } if id as usize == nz[0])
            && active.iter().enumerate().all(|(e, &x)| !x || e == nz[0])
    };
    let pat = AccessPattern {
        write,
        coeffs: if form.tainted { [0; 3] } else { form.coeffs },
        base,
        provable,
    };
    if !a.patterns.contains(&pat) {
        if a.patterns.len() >= MAX_PATTERNS {
            a.complete = false;
        } else {
            a.patterns.push(pat);
        }
    }
}

// ---------------------------------------------------------------------------
// Use-before-init (AST walk).
// ---------------------------------------------------------------------------

/// Scope stack mapping tracked private scalars to "definitely assigned".
type Env = Vec<HashMap<String, bool>>;

struct UninitCx<'a> {
    source: &'a str,
    warned: HashSet<String>,
    diags: Vec<Diagnostic>,
}

fn check_uninit(decl: &KernelDecl, source: &str, out: &mut Diagnostics) {
    let mut cx = UninitCx {
        source,
        warned: HashSet::new(),
        diags: Vec::new(),
    };
    let mut env: Env = vec![HashMap::new()];
    walk_block(&decl.body, &mut env, &mut cx);
    out.extend(cx.diags);
}

fn read_var(name: &str, span: crate::diag::Span, env: &Env, cx: &mut UninitCx) {
    for scope in env.iter().rev() {
        if let Some(&assigned) = scope.get(name) {
            if !assigned && cx.warned.insert(name.to_string()) {
                cx.diags.push(Diagnostic::at(
                    Stage::Analysis,
                    Severity::Warning,
                    span,
                    cx.source,
                    format!("`{name}` may be read before it is assigned"),
                ));
            }
            return;
        }
    }
}

fn assign_var(name: &str, env: &mut Env) {
    for scope in env.iter_mut().rev() {
        if let Some(assigned) = scope.get_mut(name) {
            *assigned = true;
            return;
        }
    }
}

fn walk_block(b: &AstBlock, env: &mut Env, cx: &mut UninitCx) {
    env.push(HashMap::new());
    for s in &b.stmts {
        walk_stmt(s, env, cx);
    }
    env.pop();
}

fn walk_stmt(s: &Stmt, env: &mut Env, cx: &mut UninitCx) {
    match s {
        Stmt::Decl(d) => {
            if let Some(init) = &d.init {
                walk_expr(init, env, cx);
            }
            if d.array_dims.is_empty() && d.space == AddressSpace::Private {
                env.last_mut()
                    .expect("scope stack never empty")
                    .insert(d.name.clone(), d.init.is_some());
            }
        }
        Stmt::Expr(e) => walk_expr(e, env, cx),
        Stmt::Block(b) => walk_block(b, env, cx),
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            walk_expr(cond, env, cx);
            let mut then_env = env.clone();
            walk_block(then, &mut then_env, cx);
            match otherwise {
                Some(other) => {
                    let mut else_env = env.clone();
                    walk_block(other, &mut else_env, cx);
                    // Assigned after the if ⇔ assigned in both arms.
                    for (scope, (t, e)) in env.iter_mut().zip(then_env.iter().zip(else_env.iter()))
                    {
                        for (name, assigned) in scope.iter_mut() {
                            if let (Some(&ta), Some(&ea)) = (t.get(name), e.get(name)) {
                                *assigned = *assigned || (ta && ea);
                            }
                        }
                    }
                }
                None => {
                    // No else: the state after is the state before.
                }
            }
        }
        Stmt::While { cond, body } => {
            walk_expr(cond, env, cx);
            // The body may run zero times: check its reads, discard its
            // assignments.
            let mut body_env = env.clone();
            walk_block(body, &mut body_env, cx);
        }
        Stmt::DoWhile { body, cond } => {
            // The body always runs at least once.
            walk_block(body, env, cx);
            walk_expr(cond, env, cx);
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            env.push(HashMap::new());
            if let Some(init) = init {
                walk_stmt(init, env, cx);
            }
            if let Some(cond) = cond {
                walk_expr(cond, env, cx);
            }
            let mut body_env = env.clone();
            walk_block(body, &mut body_env, cx);
            if let Some(step) = step {
                walk_expr(step, &mut body_env, cx);
            }
            env.pop();
        }
        Stmt::Break(_) | Stmt::Continue(_) | Stmt::Return(_) | Stmt::Barrier(_) => {}
    }
}

fn walk_expr(e: &Expr, env: &mut Env, cx: &mut UninitCx) {
    match e {
        Expr::IntLit { .. } | Expr::FloatLit { .. } => {}
        Expr::Var { name, span } => read_var(name, *span, env, cx),
        Expr::Index { base, index, .. } => {
            walk_expr(base, env, cx);
            walk_expr(index, env, cx);
        }
        Expr::Binary { lhs, rhs, .. } => {
            walk_expr(lhs, env, cx);
            walk_expr(rhs, env, cx);
        }
        Expr::Unary { operand, .. } => walk_expr(operand, env, cx),
        Expr::Ternary {
            cond,
            then,
            otherwise,
            ..
        } => {
            walk_expr(cond, env, cx);
            walk_expr(then, env, cx);
            walk_expr(otherwise, env, cx);
        }
        Expr::Cast { operand, .. } => walk_expr(operand, env, cx),
        Expr::Assign {
            op, target, value, ..
        } => {
            walk_expr(value, env, cx);
            match target.as_ref() {
                Expr::Var { name, span } => {
                    if op.is_some() {
                        // Compound assignment reads the target first.
                        read_var(name, *span, env, cx);
                    }
                    assign_var(name, env);
                }
                other => walk_expr(other, env, cx),
            }
        }
        Expr::IncDec { target, .. } => match target.as_ref() {
            Expr::Var { name, span } => {
                read_var(name, *span, env, cx);
                assign_var(name, env);
            }
            other => walk_expr(other, env, cx),
        },
        Expr::Call { args, .. } => {
            for a in args {
                walk_expr(a, env, cx);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analyze_src(src: &str) -> KernelReport {
        let toks = crate::lexer::lex(src).unwrap();
        let unit = crate::parser::parse(&toks, src).unwrap();
        let program = crate::sema::lower(&unit, src).unwrap();
        let k = program.kernels().next().unwrap();
        analyze(&unit.kernels[0], k, src)
    }

    fn errors(r: &KernelReport) -> Vec<String> {
        r.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
            .map(|d| d.message().to_string())
            .collect()
    }

    #[test]
    fn divergent_barrier_is_flagged() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                int g = get_global_id(0);
                if (g > 2) { barrier(CLK_LOCAL_MEM_FENCE); }
                a[g] = g;
            }",
        );
        let errs = errors(&r);
        assert_eq!(errs.len(), 1, "{errs:?}");
        assert!(errs[0].contains("barrier divergence"));
        assert!(r.features.divergence_score > 0.0);
    }

    #[test]
    fn uniform_barrier_is_clean() {
        let r = analyze_src(
            "__kernel void f(__global int* a, int n) {
                __local int s[64];
                int l = get_local_id(0);
                for (int i = 0; i < n; i++) {
                    s[l] = a[l];
                    barrier(CLK_LOCAL_MEM_FENCE);
                    a[l] = s[63 - l];
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
            }",
        );
        assert!(errors(&r).is_empty(), "{:?}", r.diagnostics.render());
        assert_eq!(r.features.barrier_count, 2);
        assert_eq!(r.features.local_bytes, 64 * 4);
    }

    #[test]
    fn uniform_write_of_item_dependent_value_is_a_race() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                __local int s[4];
                int l = get_local_id(0);
                s[0] = l;
                a[l] = s[0];
            }",
        );
        let errs = errors(&r);
        assert!(
            errs.iter().any(|e| e.contains("different values")),
            "{errs:?}"
        );
    }

    #[test]
    fn missing_barrier_between_mismatched_accesses_is_a_race() {
        let r = analyze_src(
            "__kernel void f(__global int* a, int n) {
                __local int s[64];
                int l = get_local_id(0);
                s[l] = a[l];
                a[l] = s[63 - l];
            }",
        );
        let errs = errors(&r);
        assert!(
            errs.iter()
                .any(|e| e.contains("different work-item index patterns")),
            "{errs:?}"
        );
    }

    #[test]
    fn barrier_separated_accesses_are_clean() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                __local int s[64];
                int l = get_local_id(0);
                s[l] = a[l];
                barrier(CLK_LOCAL_MEM_FENCE);
                a[l] = s[63 - l];
            }",
        );
        assert!(errors(&r).is_empty(), "{:?}", r.diagnostics.render());
    }

    #[test]
    fn divergent_sibling_writes_to_same_element_race() {
        let r = analyze_src(
            "__kernel void f(__global int* a, int x, int y) {
                __local int s[4];
                int l = get_local_id(0);
                if (l == 0) { s[0] = x; } else { s[0] = y; }
                a[l] = s[0];
            }",
        );
        assert!(!errors(&r).is_empty(), "{:?}", r.diagnostics.render());
    }

    #[test]
    fn constant_index_out_of_bounds_is_an_error() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                __local int s[8];
                s[8] = 1;
                a[0] = s[0];
            }",
        );
        let errs = errors(&r);
        assert!(
            errs.iter().any(|e| e.contains("always out of bounds")),
            "{errs:?}"
        );
    }

    #[test]
    fn masked_index_that_may_exceed_extent_warns() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                __local int s[8];
                int g = get_global_id(0);
                s[g & 15] = 1;
                barrier(CLK_LOCAL_MEM_FENCE);
                a[g] = s[g & 7];
            }",
        );
        // `g & 15` may collide across items too, but the bounds warning must
        // be present regardless.
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.severity() == Severity::Warning
                    && d.message().contains("may be out of bounds")),
            "{:?}",
            r.diagnostics.render()
        );
    }

    #[test]
    fn use_before_init_warns_once() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                int x;
                a[0] = x + x;
                x = 1;
                a[1] = x;
            }",
        );
        let warns: Vec<_> = r
            .diagnostics
            .iter()
            .filter(|d| d.message().contains("before it is assigned"))
            .collect();
        assert_eq!(warns.len(), 1, "{:?}", r.diagnostics.render());
    }

    #[test]
    fn branch_assignment_on_both_arms_counts() {
        let r = analyze_src(
            "__kernel void f(__global int* a, int c) {
                int x;
                if (c) { x = 1; } else { x = 2; }
                a[0] = x;
            }",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics.render());
    }

    #[test]
    fn one_armed_branch_assignment_still_warns() {
        let r = analyze_src(
            "__kernel void f(__global int* a, int c) {
                int x;
                if (c) { x = 1; }
                a[0] = x;
            }",
        );
        assert!(
            r.diagnostics
                .iter()
                .any(|d| d.message().contains("before it is assigned")),
            "{:?}",
            r.diagnostics.render()
        );
    }

    #[test]
    fn streaming_kernel_has_arithmetic_intensity() {
        let r = analyze_src(
            "__kernel void f(__global float* a, __global float* b, float s) {
                int g = get_global_id(0);
                b[g] = a[g] * s + 1.0f;
            }",
        );
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics.render());
        assert!(r.features.arithmetic_intensity > 0.0);
        assert_eq!(r.features.barrier_count, 0);
        assert_eq!(r.features.divergence_score, 0.0);
    }

    #[test]
    fn tiled_2d_transpose_pattern_is_clean() {
        let r = analyze_src(
            "__kernel void f(__global float* in, __global float* out, int n) {
                __local float tile[4][4];
                int lx = get_local_id(0);
                int ly = get_local_id(1);
                int gx = get_global_id(0);
                int gy = get_global_id(1);
                tile[ly][lx] = in[gy * n + gx];
                barrier(CLK_LOCAL_MEM_FENCE);
                out[gx * n + gy] = tile[lx][ly];
            }",
        );
        assert!(errors(&r).is_empty(), "{:?}", r.diagnostics.render());
    }

    #[test]
    fn tainted_trip_count_loop_barrier_diverges() {
        let r = analyze_src(
            "__kernel void f(__global int* a) {
                int g = get_global_id(0);
                for (int i = 0; i < g; i++) {
                    barrier(CLK_LOCAL_MEM_FENCE);
                }
                a[g] = g;
            }",
        );
        assert!(
            errors(&r).iter().any(|e| e.contains("barrier divergence")),
            "{:?}",
            r.diagnostics.render()
        );
    }

    // --- Effect summaries. ------------------------------------------------

    #[test]
    fn elementwise_kernel_summary_is_provable() {
        let r = analyze_src(
            "__kernel void saxpy(__global float* y, __global float* x, float a, int n) {
                int i = get_global_id(0);
                if (i < n) { y[i] = a * x[i] + y[i]; }
            }",
        );
        let e = &r.effects;
        assert_eq!(e.args.len(), 4);
        assert_eq!(e.barriers, 0);
        let y = &e.args[0];
        assert_eq!(y.mode, AccessMode::ReadWrite);
        assert_eq!(y.elem_bytes, 4);
        assert!(y.complete);
        assert!(!y.patterns.is_empty());
        assert!(
            y.patterns.iter().all(|p| p.provable
                && p.coeffs == [1, 0, 0]
                && p.base == PatternBase::Geom { id: 0, add: 0 }),
            "{y}"
        );
        assert!(y.patterns.iter().any(|p| p.write));
        assert!(y.patterns.iter().any(|p| !p.write));
        let x = &e.args[1];
        assert_eq!(x.mode, AccessMode::Read);
        assert!(x.patterns.iter().all(|p| p.provable && !p.write), "{x}");
        assert_eq!(e.args[2].mode, AccessMode::None);
        assert_eq!(e.args[3].mode, AccessMode::None);
    }

    #[test]
    fn scatter_through_loaded_index_is_unprovable() {
        let r = analyze_src(
            "__kernel void scatter(__global int* out, __global int* idx) {
                int i = get_global_id(0);
                out[idx[i]] = i;
            }",
        );
        let out = &r.effects.args[0];
        assert_eq!(out.mode, AccessMode::Write);
        assert!(out.patterns.iter().all(|p| !p.provable), "{out}");
        assert_eq!(out.elem_bounds, None);
    }

    #[test]
    fn shifted_access_keeps_the_addend() {
        let r = analyze_src(
            "__kernel void diff(__global int* out, __global int* in) {
                int i = get_global_id(0);
                out[i] = in[i + 1] - in[i];
            }",
        );
        let inp = &r.effects.args[1];
        assert!(inp
            .patterns
            .iter()
            .any(|p| p.base == PatternBase::Geom { id: 0, add: 1 } && p.provable));
        assert!(inp
            .patterns
            .iter()
            .any(|p| p.base == PatternBase::Geom { id: 0, add: 0 } && p.provable));
    }

    #[test]
    fn local_id_indexed_global_write_is_not_globally_private() {
        // `out[lid]` collides across groups even though it is private
        // within one — the global-privacy rule must reject it.
        let r = analyze_src(
            "__kernel void f(__global int* out) {
                out[get_local_id(0)] = 1;
            }",
        );
        let out = &r.effects.args[0];
        assert_eq!(out.mode, AccessMode::Write);
        assert!(out.patterns.iter().all(|p| !p.provable), "{out}");
    }

    #[test]
    fn symbolic_stride_write_is_unprovable() {
        let r = analyze_src(
            "__kernel void rowfill(__global float* c, int n) {
                int i = get_global_id(0);
                c[i * n] = 0.0f;
            }",
        );
        let c = &r.effects.args[0];
        assert!(c.patterns.iter().all(|p| !p.provable), "{c}");
    }

    #[test]
    fn analyzed_elementwise_chain_proves_fusable_end_to_end() {
        use crate::analysis::fusion::{prove_fusable, FusionCandidate, FusionShape};
        let scale = analyze_src(
            "__kernel void scale(__global float* y, float a, int n) {
                int i = get_global_id(0);
                if (i < n) { y[i] = y[i] * a; }
            }",
        );
        let shift = analyze_src(
            "__kernel void shift(__global float* y, float b, int n) {
                int i = get_global_id(0);
                if (i < n) { y[i] = y[i] + b; }
            }",
        );
        let shape = FusionShape {
            work_dim: 1,
            global: [256, 1, 1],
            local: [32, 1, 1],
        };
        let bufs = [Some(1u64), None, None];
        let a = FusionCandidate {
            name: "scale",
            effects: Some(&scale.effects),
            shape,
            buffers: &bufs,
        };
        let b = FusionCandidate {
            name: "shift",
            effects: Some(&shift.effects),
            shape,
            buffers: &bufs,
        };
        assert_eq!(prove_fusable(&a, &b), Ok(()));
    }
}
