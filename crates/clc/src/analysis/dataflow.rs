//! A small forward-dataflow framework over the kernel CFG, plus the
//! abstract domain the checks interpret bytecode in.
//!
//! Abstract scalar values track a *linear form* over the work-item's local
//! ids (`c0·lid(0) + c1·lid(1) + c2·lid(2) + uniform part`) next to a
//! value interval. The form answers "is this the same for every work-item
//! in the group?" (all coefficients zero, not tainted) and "does this
//! index provably touch a distinct element per work-item?" (unit
//! coefficients over the dimensions the kernel actually queries). Values
//! the form cannot represent — data-dependent loads, non-linear
//! arithmetic — collapse to *tainted*.

use std::collections::VecDeque;
use std::ops::{Add, Mul, Neg, Sub};

use crate::analysis::cfg::Cfg;
use crate::bytecode::Instr;

/// A forward, monotone dataflow problem.
pub trait ForwardAnalysis {
    /// The per-program-point abstract state.
    type State: Clone + PartialEq;

    /// State on entry to the kernel.
    fn boundary(&self) -> Self::State;

    /// Applies one instruction's effect.
    fn transfer(&mut self, state: &mut Self::State, pc: usize, instr: &Instr);

    /// Joins `from` into `into`; returns whether `into` changed.
    fn join(&self, into: &mut Self::State, from: &Self::State) -> bool;
}

/// Runs `analysis` to a fixpoint; returns the block-entry state per block
/// (`None` for blocks unreachable from the entry).
pub fn solve<A: ForwardAnalysis>(
    cfg: &Cfg,
    code: &[Instr],
    analysis: &mut A,
) -> Vec<Option<A::State>> {
    let n = cfg.blocks.len();
    let mut input: Vec<Option<A::State>> = vec![None; n];
    if n == 0 {
        return input;
    }
    input[0] = Some(analysis.boundary());
    let mut queued = vec![false; n];
    let mut work = VecDeque::from([0usize]);
    queued[0] = true;
    while let Some(b) = work.pop_front() {
        queued[b] = false;
        let mut st = input[b].clone().expect("queued blocks have input state");
        let block = &cfg.blocks[b];
        for (pc, instr) in code.iter().enumerate().take(block.end).skip(block.start) {
            analysis.transfer(&mut st, pc, instr);
        }
        for &s in &cfg.blocks[b].succs {
            let changed = match &mut input[s] {
                Some(cur) => analysis.join(cur, &st),
                slot @ None => {
                    *slot = Some(st.clone());
                    true
                }
            };
            if changed && !queued[s] {
                queued[s] = true;
                work.push_back(s);
            }
        }
    }
    input
}

// ---------------------------------------------------------------------------
// The abstract domain.
// ---------------------------------------------------------------------------

/// The group-uniform part of a linear form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Uoff {
    /// A compile-time constant.
    Known(i64),
    /// `symbolic value + constant`: a group-uniform unknown with a stable
    /// identity (parameter slot, geometry query, …), so `n - 1` and `n - 1`
    /// compare equal while `n - 1` and `m - 1` do not.
    Sym {
        /// Stable identity of the uniform unknown.
        id: u32,
        /// Constant addend.
        add: i64,
    },
    /// Group-uniform, but with no usable identity.
    Opaque,
}

/// A linear form over local ids: `Σ coeffs[d]·lid(d) + uoff`, or tainted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Form {
    /// Per-dimension `lid` coefficients (meaningless when `tainted`).
    pub coeffs: [i64; 3],
    /// The group-uniform part (meaningless when `tainted`).
    pub uoff: Uoff,
    /// Work-item-dependent in a way the form cannot represent.
    pub tainted: bool,
}

impl Form {
    /// The canonical tainted form.
    pub fn top() -> Form {
        Form {
            coeffs: [0; 3],
            uoff: Uoff::Opaque,
            tainted: true,
        }
    }

    /// A compile-time constant.
    pub fn constant(c: i64) -> Form {
        Form {
            coeffs: [0; 3],
            uoff: Uoff::Known(c),
            tainted: false,
        }
    }

    /// A group-uniform unknown with identity `id`.
    pub fn uniform_sym(id: u32) -> Form {
        Form {
            coeffs: [0; 3],
            uoff: Uoff::Sym { id, add: 0 },
            tainted: false,
        }
    }

    /// A group-uniform unknown without identity.
    pub fn uniform_opaque() -> Form {
        Form {
            coeffs: [0; 3],
            uoff: Uoff::Opaque,
            tainted: false,
        }
    }

    /// Exactly `lid(d)`.
    pub fn lid(d: usize) -> Form {
        let mut coeffs = [0; 3];
        coeffs[d] = 1;
        Form {
            coeffs,
            uoff: Uoff::Known(0),
            tainted: false,
        }
    }

    /// `gid(d)` = `lid(d)` plus a group-uniform offset with identity `id`.
    pub fn gid(d: usize, id: u32) -> Form {
        let mut coeffs = [0; 3];
        coeffs[d] = 1;
        Form {
            coeffs,
            uoff: Uoff::Sym { id, add: 0 },
            tainted: false,
        }
    }

    /// Whether the value is the same for every work-item in the group.
    pub fn is_uniform(&self) -> bool {
        !self.tainted && self.coeffs == [0; 3]
    }

    /// Whether the value may differ between work-items.
    pub fn is_item_dependent(&self) -> bool {
        self.tainted || self.coeffs != [0; 3]
    }

    /// This form with the taint bit set (canonicalized).
    pub fn taint(self) -> Form {
        Form::top()
    }

    fn add_uoff(a: Uoff, b: Uoff) -> Uoff {
        match (a, b) {
            (Uoff::Known(x), Uoff::Known(y)) => x.checked_add(y).map_or(Uoff::Opaque, Uoff::Known),
            (Uoff::Sym { id, add }, Uoff::Known(k)) | (Uoff::Known(k), Uoff::Sym { id, add }) => {
                add.checked_add(k)
                    .map_or(Uoff::Opaque, |add| Uoff::Sym { id, add })
            }
            _ => Uoff::Opaque,
        }
    }

    /// `self * k` for a compile-time constant `k`.
    pub fn scale(self, k: i64) -> Form {
        if self.tainted {
            return Form::top();
        }
        let mut coeffs = [0i64; 3];
        for (c, a) in coeffs.iter_mut().zip(self.coeffs.iter()) {
            match a.checked_mul(k) {
                Some(scaled) => *c = scaled,
                None => return Form::top(),
            }
        }
        let uoff = match self.uoff {
            Uoff::Known(x) => x.checked_mul(k).map_or(Uoff::Opaque, Uoff::Known),
            Uoff::Sym { id, add } if k == 1 => Uoff::Sym { id, add },
            _ => Uoff::Opaque,
        };
        Form {
            coeffs,
            uoff,
            tainted: false,
        }
    }

    /// Uniform-preserving combination for operators the form cannot track
    /// (division, shifts, bitwise ops, comparisons, math builtins).
    pub fn opaque_combine(self, other: Form) -> Form {
        if self.is_uniform() && other.is_uniform() {
            Form::uniform_opaque()
        } else {
            Form::top()
        }
    }

    /// Join across control-flow paths.
    pub fn join(self, other: Form) -> Form {
        if self == other {
            return self;
        }
        if self.tainted || other.tainted || self.coeffs != other.coeffs {
            return Form::top();
        }
        Form {
            coeffs: self.coeffs,
            uoff: if self.uoff == other.uoff {
                self.uoff
            } else {
                Uoff::Opaque
            },
            tainted: false,
        }
    }
}

impl Add for Form {
    type Output = Form;

    fn add(self, other: Form) -> Form {
        if self.tainted || other.tainted {
            return Form::top();
        }
        let mut coeffs = [0i64; 3];
        for (c, (a, b)) in coeffs
            .iter_mut()
            .zip(self.coeffs.iter().zip(other.coeffs.iter()))
        {
            match a.checked_add(*b) {
                Some(sum) => *c = sum,
                None => return Form::top(),
            }
        }
        Form {
            coeffs,
            uoff: Form::add_uoff(self.uoff, other.uoff),
            tainted: false,
        }
    }
}

impl Sub for Form {
    type Output = Form;

    fn sub(self, other: Form) -> Form {
        if self.tainted || other.tainted {
            return Form::top();
        }
        let mut coeffs = [0i64; 3];
        for (c, (a, b)) in coeffs
            .iter_mut()
            .zip(self.coeffs.iter().zip(other.coeffs.iter()))
        {
            match a.checked_sub(*b) {
                Some(diff) => *c = diff,
                None => return Form::top(),
            }
        }
        let uoff = match (self.uoff, other.uoff) {
            (Uoff::Known(x), Uoff::Known(y)) => x.checked_sub(y).map_or(Uoff::Opaque, Uoff::Known),
            (Uoff::Sym { id, add }, Uoff::Known(k)) => add
                .checked_sub(k)
                .map_or(Uoff::Opaque, |add| Uoff::Sym { id, add }),
            (Uoff::Sym { id: a, add: x }, Uoff::Sym { id: b, add: y }) if a == b => {
                // n - n cancels: a pure constant.
                x.checked_sub(y).map_or(Uoff::Opaque, Uoff::Known)
            }
            _ => Uoff::Opaque,
        };
        Form {
            coeffs,
            uoff,
            tainted: false,
        }
    }
}

impl Neg for Form {
    type Output = Form;

    fn neg(self) -> Form {
        Form::constant(0) - self
    }
}

/// Precise when one side is a constant; `top` otherwise (unless both
/// sides are group-uniform, which stays uniform-opaque).
impl Mul for Form {
    type Output = Form;

    fn mul(self, other: Form) -> Form {
        if self.tainted || other.tainted {
            return Form::top();
        }
        if let Uoff::Known(k) = self.uoff {
            if self.coeffs == [0; 3] {
                return other.scale(k);
            }
        }
        if let Uoff::Known(k) = other.uoff {
            if other.coeffs == [0; 3] {
                return self.scale(k);
            }
        }
        if self.is_uniform() && other.is_uniform() {
            return Form::uniform_opaque();
        }
        Form::top()
    }
}

/// A value interval with widening (best-effort; `TOP` when unknown).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Iv {
    /// Inclusive lower bound.
    pub lo: i64,
    /// Inclusive upper bound.
    pub hi: i64,
}

impl Iv {
    /// The unbounded interval.
    pub const TOP: Iv = Iv {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// A singleton interval.
    pub fn constant(c: i64) -> Iv {
        Iv { lo: c, hi: c }
    }

    /// `[lo, hi]` (callers guarantee `lo <= hi`).
    pub fn range(lo: i64, hi: i64) -> Iv {
        Iv { lo, hi }
    }

    /// The constant, if the interval is a singleton.
    pub fn as_const(&self) -> Option<i64> {
        (self.lo == self.hi).then_some(self.lo)
    }

    fn sat(v: i128) -> i64 {
        v.clamp(i64::MIN as i128, i64::MAX as i128) as i64
    }

    /// Join with widening: a bound that grew jumps straight to ±∞ so loops
    /// terminate (the price is losing loop-carried bounds — best-effort).
    pub fn widen_join(self, o: Iv) -> Iv {
        Iv {
            lo: if o.lo < self.lo { i64::MIN } else { self.lo },
            hi: if o.hi > self.hi { i64::MAX } else { self.hi },
        }
    }
}

impl Add for Iv {
    type Output = Iv;

    fn add(self, o: Iv) -> Iv {
        Iv {
            lo: Iv::sat(self.lo as i128 + o.lo as i128),
            hi: Iv::sat(self.hi as i128 + o.hi as i128),
        }
    }
}

impl Sub for Iv {
    type Output = Iv;

    fn sub(self, o: Iv) -> Iv {
        Iv {
            lo: Iv::sat(self.lo as i128 - o.hi as i128),
            hi: Iv::sat(self.hi as i128 - o.lo as i128),
        }
    }
}

impl Mul for Iv {
    type Output = Iv;

    fn mul(self, o: Iv) -> Iv {
        let products = [
            self.lo as i128 * o.lo as i128,
            self.lo as i128 * o.hi as i128,
            self.hi as i128 * o.lo as i128,
            self.hi as i128 * o.hi as i128,
        ];
        Iv {
            lo: Iv::sat(*products.iter().min().expect("non-empty")),
            hi: Iv::sat(*products.iter().max().expect("non-empty")),
        }
    }
}

impl Neg for Iv {
    type Output = Iv;

    fn neg(self) -> Iv {
        Iv {
            lo: Iv::sat(-(self.hi as i128)),
            hi: Iv::sat(-(self.lo as i128)),
        }
    }
}

/// What a pointer points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PtrBase {
    /// A `__global` (or `__constant`) buffer parameter, by slot.
    Global(u16),
    /// A statically-declared `__local` array, by arena byte offset.
    LocalArray(u32),
    /// A dynamic `__local` pointer parameter, by slot.
    LocalDyn(u16),
    /// Joined from different bases.
    Unknown,
}

/// An abstract scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sc {
    /// Linear form over local ids.
    pub form: Form,
    /// Value interval.
    pub range: Iv,
}

impl Sc {
    /// The unknown, work-item-dependent scalar.
    pub fn top() -> Sc {
        Sc {
            form: Form::top(),
            range: Iv::TOP,
        }
    }

    /// A compile-time constant.
    pub fn constant(c: i64) -> Sc {
        Sc {
            form: Form::constant(c),
            range: Iv::constant(c),
        }
    }
}

/// An abstract pointer: base plus element-offset form/interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pt {
    /// What the pointer points into.
    pub base: PtrBase,
    /// Element offset from the base, as a linear form.
    pub form: Form,
    /// Element offset interval.
    pub range: Iv,
}

/// An abstract stack/slot value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AV {
    /// A scalar.
    Scalar(Sc),
    /// A pointer.
    Ptr(Pt),
}

impl AV {
    /// The unknown scalar.
    pub fn top() -> AV {
        AV::Scalar(Sc::top())
    }

    /// The scalar inside, or the unknown scalar for pointers (defensive).
    pub fn as_scalar(&self) -> Sc {
        match self {
            AV::Scalar(s) => *s,
            AV::Ptr(_) => Sc::top(),
        }
    }

    /// Join across control-flow paths (interval side uses widening).
    pub fn join(self, other: AV) -> AV {
        match (self, other) {
            (AV::Scalar(a), AV::Scalar(b)) => AV::Scalar(Sc {
                form: a.form.join(b.form),
                range: a.range.widen_join(b.range),
            }),
            (AV::Ptr(a), AV::Ptr(b)) => AV::Ptr(Pt {
                base: if a.base == b.base {
                    a.base
                } else {
                    PtrBase::Unknown
                },
                form: a.form.join(b.form),
                range: a.range.widen_join(b.range),
            }),
            _ => AV::top(),
        }
    }

    /// Taints the form (scalar or pointer offset).
    pub fn taint(self) -> AV {
        match self {
            AV::Scalar(s) => AV::Scalar(Sc {
                form: s.form.taint(),
                range: s.range,
            }),
            AV::Ptr(p) => AV::Ptr(Pt {
                form: p.form.taint(),
                ..p
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn form_linear_arithmetic() {
        let l = Form::lid(0);
        let n = Form::uniform_sym(7);
        // n - 1 - l  →  coeff -1, uoff Sym{7, -1}
        let f = n - Form::constant(1) - l;
        assert_eq!(f.coeffs, [-1, 0, 0]);
        assert_eq!(f.uoff, Uoff::Sym { id: 7, add: -1 });
        assert!(f.is_item_dependent());
        // Same expression compares equal; different sym does not.
        let f2 = n - Form::constant(1) - l;
        assert_eq!(f, f2);
        let g = Form::uniform_sym(8) - Form::constant(1) - l;
        assert_ne!(f, g);
    }

    #[test]
    fn form_mul_by_constant_scales() {
        let y = Form::lid(1);
        let f = y * Form::constant(4) + Form::lid(0);
        assert_eq!(f.coeffs, [1, 4, 0]);
        assert_eq!(f.uoff, Uoff::Known(0));
    }

    #[test]
    fn form_nonlinear_taints() {
        let l = Form::lid(0);
        assert!((l * l).tainted);
        assert!((l * Form::uniform_sym(3)).tainted);
        assert!(l.opaque_combine(Form::constant(2)).tainted);
        assert!(
            !Form::uniform_sym(1)
                .opaque_combine(Form::constant(2))
                .tainted
        );
    }

    #[test]
    fn form_join_same_coeffs_stays_structured() {
        let a = Form::lid(0) + Form::constant(1);
        let b = Form::lid(0) + Form::constant(2);
        let j = a.join(b);
        assert_eq!(j.coeffs, [1, 0, 0]);
        assert_eq!(j.uoff, Uoff::Opaque);
        assert!(!j.tainted);
        assert!(Form::lid(0).join(Form::lid(1)).tainted);
    }

    #[test]
    fn interval_widening_terminates_growth() {
        let a = Iv::range(0, 10);
        let grown = a.widen_join(Iv::range(0, 11));
        assert_eq!(grown.hi, i64::MAX);
        assert_eq!(grown.lo, 0);
        let same = a.widen_join(Iv::range(2, 9));
        assert_eq!(same, a);
    }

    #[test]
    fn sub_cancels_matching_syms() {
        let n = Form::uniform_sym(5);
        let d = n + Form::constant(3) - n;
        assert_eq!(d.uoff, Uoff::Known(3));
        assert_eq!(d.coeffs, [0, 0, 0]);
    }
}
