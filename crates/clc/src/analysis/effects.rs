//! Per-argument effect summaries: what a kernel may do to each of its
//! arguments, abstracted to the point where two *different* kernels'
//! summaries can be compared.
//!
//! The intra-kernel checks already compute, for every global-memory
//! access, a linear index form over local ids plus a value interval (see
//! [`super::dataflow`]). This module folds those per-access facts into a
//! per-argument [`ArgEffect`] — read/write mode, element-offset bounds,
//! and a deduplicated set of [`AccessPattern`]s — shipped on every
//! [`crate::KernelReport`] and over the wire so the host runtime can
//! prove launch-fusion legality (see [`super::fusion`]) without
//! re-running the analyzer.
//!
//! Soundness stance: a summary **over-approximates**. Every byte the
//! kernel can touch at runtime is covered by the argument's mode, bounds
//! and patterns; when the analyzer cannot bound an access it degrades
//! the summary (unbounded interval, `Opaque` base, `complete = false`)
//! rather than dropping the access. The fusion prover in turn treats
//! anything degraded as a conflict, so unsound fusions are impossible by
//! construction. The oracle cross-check lives in
//! `tests/effects_proptest.rs`.

use std::fmt;

/// Symbol-id base for launch-geometry values (`get_global_id` group
/// offsets, group ids, sizes …). Shared with the checks pass, which
/// mints the ids.
pub(crate) const GEOM_SYM: u32 = 1_000_000;

/// Symbol-id base for loaded-value symbols (kernel-local identities).
pub(crate) const LOAD_SYM: u32 = 2_000_000;

/// How a kernel uses one argument overall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AccessMode {
    /// Never accessed (scalars, `__local` pointers, and untouched
    /// global pointers).
    #[default]
    None,
    /// Only loaded from.
    Read,
    /// Only stored to.
    Write,
    /// Both loaded and stored.
    ReadWrite,
}

impl AccessMode {
    /// Folds one access into the mode.
    pub fn observe(self, write: bool) -> AccessMode {
        match (self, write) {
            (AccessMode::None, false) => AccessMode::Read,
            (AccessMode::None, true) => AccessMode::Write,
            (AccessMode::Read, true) | (AccessMode::Write, false) => AccessMode::ReadWrite,
            (m, _) => m,
        }
    }

    /// Whether the argument may be stored to.
    pub fn writes(self) -> bool {
        matches!(self, AccessMode::Write | AccessMode::ReadWrite)
    }

    /// Whether the argument may be loaded from.
    pub fn reads(self) -> bool {
        matches!(self, AccessMode::Read | AccessMode::ReadWrite)
    }
}

impl fmt::Display for AccessMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessMode::None => "none",
            AccessMode::Read => "read",
            AccessMode::Write => "write",
            AccessMode::ReadWrite => "rw",
        })
    }
}

/// The group-uniform base of an access pattern, in a form comparable
/// *across kernels*.
///
/// Parameter-slot and loaded-value symbols are deliberately collapsed to
/// [`PatternBase::Opaque`]: kernel A's "parameter 2" and kernel B's
/// "parameter 2" are different runtime values, so a cross-kernel
/// comparison of such bases would be unsound. Launch-geometry symbols
/// survive — they denote the same value in any two launches with an
/// identical NDRange shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternBase {
    /// A compile-time constant element offset.
    Const(i64),
    /// A launch-geometry symbol (gid group base, group id, sizes …)
    /// plus a constant addend. Equal across kernels iff `id` and `add`
    /// are equal *and* the launches share an NDRange shape.
    Geom {
        /// Geometry symbol id (offset from [`GEOM_SYM`]).
        id: u32,
        /// Constant addend in elements.
        add: i64,
    },
    /// Not comparable across kernels (parameter values, loaded values,
    /// or anything the dataflow lost track of).
    Opaque,
}

impl fmt::Display for PatternBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            PatternBase::Const(k) => write!(f, "{k}"),
            PatternBase::Geom { id, add } => {
                match id {
                    0..=2 => write!(f, "gbase{id}")?,
                    100..=102 => write!(f, "grp{}", id - 100)?,
                    200..=202 => write!(f, "gsz{}", id - 200)?,
                    300..=302 => write!(f, "lsz{}", id - 300)?,
                    400..=402 => write!(f, "ngrp{}", id - 400)?,
                    500 => f.write_str("wdim")?,
                    _ => write!(f, "geom{id}")?,
                }
                if add != 0 {
                    write!(f, "{add:+}")?;
                }
                Ok(())
            }
            PatternBase::Opaque => f.write_str("?"),
        }
    }
}

/// One deduplicated access shape on a global-pointer argument: the
/// element index is `Σ coeffs[d]·lid(d) + base`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessPattern {
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// Per-dimension local-id coefficients (elements).
    pub coeffs: [i64; 3],
    /// The group-uniform part.
    pub base: PatternBase,
    /// Whether the pattern provably maps distinct work-items to
    /// distinct elements *and* has a cross-kernel-comparable base —
    /// the precondition for any fusion argument involving it.
    pub provable: bool,
}

impl fmt::Display for AccessPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.write { "W " } else { "R " })?;
        let mut wrote = false;
        for (d, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if wrote {
                f.write_str("+")?;
            }
            if c == 1 {
                write!(f, "l{d}")?;
            } else {
                write!(f, "{c}*l{d}")?;
            }
            wrote = true;
        }
        if wrote {
            write!(f, "+{}", self.base)?;
        } else {
            write!(f, "{}", self.base)?;
        }
        if !self.provable {
            f.write_str("!")?;
        }
        Ok(())
    }
}

/// The effect summary of one kernel argument.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ArgEffect {
    /// Overall read/write classification.
    pub mode: AccessMode,
    /// Element size of the pointee in bytes (`0` for scalar and
    /// `__local` arguments — they carry no global effect).
    pub elem_bytes: u32,
    /// Inclusive element-offset bounds over every access, when the
    /// dataflow bounded them; `None` means "anywhere in the buffer".
    pub elem_bounds: Option<(i64, i64)>,
    /// Deduplicated access shapes (capped; see [`ArgEffect::complete`]).
    pub patterns: Vec<AccessPattern>,
    /// Whether `patterns` covers every access the kernel can make on
    /// this argument. `false` when the shape set overflowed the cap —
    /// the fusion prover then treats the argument as unprovable.
    pub complete: bool,
}

impl ArgEffect {
    /// The summary of an argument that is never accessed (also the
    /// summary of scalar and `__local` arguments).
    pub fn untouched() -> ArgEffect {
        ArgEffect {
            complete: true,
            ..ArgEffect::default()
        }
    }
}

impl fmt::Display for ArgEffect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mode)?;
        if self.mode == AccessMode::None {
            return Ok(());
        }
        write!(f, " {}B", self.elem_bytes)?;
        match self.elem_bounds {
            Some((lo, hi)) => write!(f, " [{lo}..{hi}]")?,
            None => f.write_str(" [unbounded]")?,
        }
        f.write_str(" {")?;
        for (i, p) in self.patterns.iter().enumerate() {
            if i > 0 {
                f.write_str("; ")?;
            }
            write!(f, "{p}")?;
        }
        f.write_str("}")?;
        if !self.complete {
            f.write_str(" overflow")?;
        }
        Ok(())
    }
}

/// The inter-kernel effect summary of one kernel: one [`ArgEffect`] per
/// declared parameter, plus the barrier fact the fusion prover needs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EffectSummary {
    /// Per-parameter effects, in declaration order.
    pub args: Vec<ArgEffect>,
    /// Number of `barrier(...)` sites (from the divergence check).
    pub barriers: u32,
}

impl EffectSummary {
    /// Whether the summary carries any information (an empty summary
    /// means the analyzer did not run — e.g. bitstream kernels).
    pub fn is_empty(&self) -> bool {
        self.args.is_empty()
    }
}

/// Maximum distinct access shapes kept per argument before the summary
/// degrades to `complete = false`.
pub(crate) const MAX_PATTERNS: usize = 16;
