//! The fusion-legality prover: may two adjacent launches run as one
//! fused dispatch?
//!
//! Fusing launches `A; B` replaces two wire commands with one and lets a
//! device run the bodies under a single dispatch, where work-items may
//! interleave `A`- and `B`-work arbitrarily. That interleaving is
//! invisible exactly when, on every buffer both launches touch with at
//! least one store, every access pair involving a store is *provably the
//! same per-item element*: identical local-id coefficients, an identical
//! cross-kernel-comparable base, and a pattern that maps distinct
//! work-items to distinct elements. Then item *i* of `B` depends only on
//! item *i* of `A`, so any schedule — fully serialized, per-group, or
//! per-item — produces byte-identical memory.
//!
//! Everything the summaries cannot prove is **conservatively rejected**
//! with a machine-readable [`FusionReject`]; the prover never guesses.
//! The preconditions:
//!
//! * identical NDRange shapes (so geometry symbols denote equal values),
//! * no barriers in either kernel when a data dependence exists (a
//!   barrier orders *groups internally*; fusion would need a cross-group
//!   ordering argument the analysis does not attempt),
//! * complete, width-consistent summaries on every shared buffer with a
//!   store.
//!
//! Legality composes pairwise: a chain `K1; …; Kn` is fusable iff every
//! ordered pair is (checked by the caller — see the runtime's
//! `AutoScheduler::launch_graph`).

use std::fmt;

use super::effects::{AccessMode, EffectSummary};

/// The launch shape of a fusion candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FusionShape {
    /// Number of dimensions (1–3).
    pub work_dim: u32,
    /// Global sizes per dimension.
    pub global: [u64; 3],
    /// Local (work-group) sizes per dimension.
    pub local: [u64; 3],
}

/// One launch as the prover sees it: a kernel's effect summary plus the
/// launch-time facts (shape and which buffer each argument is bound to).
#[derive(Debug, Clone)]
pub struct FusionCandidate<'a> {
    /// Kernel name (for diagnostics only).
    pub name: &'a str,
    /// The kernel's static effect summary, `None` when the toolchain
    /// did not produce one (e.g. pre-built bitstreams).
    pub effects: Option<&'a EffectSummary>,
    /// The launch's NDRange shape.
    pub shape: FusionShape,
    /// Buffer identity per argument slot (`None` for scalar/`__local`
    /// arguments). Any equality-comparable token works; the runtime
    /// uses buffer-object identity.
    pub buffers: &'a [Option<u64>],
}

/// Why a pair of launches cannot be fused. `code()` is the stable
/// machine-readable identifier surfaced in audit logs and lint output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FusionReject {
    /// The launches' NDRange shapes differ.
    ShapeMismatch,
    /// A kernel has no effect summary (analyzer did not run).
    MissingSummary {
        /// The kernel without a summary.
        kernel: String,
    },
    /// A summary's argument list does not match its bound arguments.
    ArityMismatch {
        /// The kernel whose summary is inconsistent.
        kernel: String,
    },
    /// An involved argument's pattern set overflowed the analyzer cap.
    IncompleteSummary {
        /// The kernel whose summary overflowed.
        kernel: String,
        /// Argument slot.
        arg: u32,
    },
    /// The two kernels access a shared buffer with different element
    /// widths, so their patterns are not comparable.
    ElemWidthMismatch {
        /// Argument slot in the earlier launch.
        earlier_arg: u32,
        /// Argument slot in the later launch.
        later_arg: u32,
    },
    /// A kernel contains barriers and a data dependence exists on a
    /// shared buffer.
    BarrierHazard {
        /// The kernel with barriers.
        kernel: String,
    },
    /// Two stores to a shared buffer whose per-item disjointness the
    /// summaries cannot prove.
    WriteWriteHazard {
        /// Argument slot in the earlier launch.
        earlier_arg: u32,
        /// Argument slot in the later launch.
        later_arg: u32,
    },
    /// A store and a load on a shared buffer whose per-item alignment
    /// the summaries cannot prove.
    ReadWriteHazard {
        /// Argument slot in the earlier launch.
        earlier_arg: u32,
        /// Argument slot in the later launch.
        later_arg: u32,
    },
}

impl FusionReject {
    /// Stable machine-readable reason code.
    pub fn code(&self) -> &'static str {
        match self {
            FusionReject::ShapeMismatch => "shape-mismatch",
            FusionReject::MissingSummary { .. } => "missing-summary",
            FusionReject::ArityMismatch { .. } => "arity-mismatch",
            FusionReject::IncompleteSummary { .. } => "incomplete-summary",
            FusionReject::ElemWidthMismatch { .. } => "elem-width-mismatch",
            FusionReject::BarrierHazard { .. } => "barrier-hazard",
            FusionReject::WriteWriteHazard { .. } => "write-write-overlap",
            FusionReject::ReadWriteHazard { .. } => "read-write-overlap",
        }
    }
}

impl fmt::Display for FusionReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FusionReject::ShapeMismatch => f.write_str("NDRange shapes differ"),
            FusionReject::MissingSummary { kernel } => {
                write!(f, "kernel `{kernel}` has no effect summary")
            }
            FusionReject::ArityMismatch { kernel } => {
                write!(f, "kernel `{kernel}`'s summary does not match its arguments")
            }
            FusionReject::IncompleteSummary { kernel, arg } => {
                write!(f, "kernel `{kernel}` arg {arg}: pattern set overflowed")
            }
            FusionReject::ElemWidthMismatch {
                earlier_arg,
                later_arg,
            } => write!(
                f,
                "shared buffer accessed with different element widths (args {earlier_arg}/{later_arg})"
            ),
            FusionReject::BarrierHazard { kernel } => write!(
                f,
                "kernel `{kernel}` barriers with a data dependence on a shared buffer"
            ),
            FusionReject::WriteWriteHazard {
                earlier_arg,
                later_arg,
            } => write!(
                f,
                "unprovable write-write overlap on a shared buffer (args {earlier_arg}/{later_arg})"
            ),
            FusionReject::ReadWriteHazard {
                earlier_arg,
                later_arg,
            } => write!(
                f,
                "unprovable read-write overlap on a shared buffer (args {earlier_arg}/{later_arg})"
            ),
        }
    }
}

/// Proves (or conservatively refutes) that the launch `earlier` can be
/// fused with the immediately following launch `later`.
///
/// # Errors
///
/// The first [`FusionReject`] encountered, in deterministic
/// (slot-order) traversal.
pub fn prove_fusable(
    earlier: &FusionCandidate<'_>,
    later: &FusionCandidate<'_>,
) -> Result<(), FusionReject> {
    if earlier.shape != later.shape {
        return Err(FusionReject::ShapeMismatch);
    }
    let ea = summary_of(earlier)?;
    let eb = summary_of(later)?;

    // Every buffer both launches bind, with at least one side storing
    // through it, creates a dependence the summaries must discharge.
    for (ai, akey) in earlier.buffers.iter().enumerate() {
        let Some(akey) = akey else { continue };
        let a_eff = &ea.args[ai];
        if a_eff.mode == AccessMode::None {
            continue;
        }
        for (bi, bkey) in later.buffers.iter().enumerate() {
            if Some(*akey) != *bkey {
                continue;
            }
            let b_eff = &eb.args[bi];
            if b_eff.mode == AccessMode::None {
                continue;
            }
            if !a_eff.mode.writes() && !b_eff.mode.writes() {
                continue; // read-read: never a hazard
            }
            // A dependence exists. Barriers order a group internally;
            // proving that ordering still holds across a fused dispatch
            // would need a cross-group argument we do not attempt.
            if ea.barriers > 0 {
                return Err(FusionReject::BarrierHazard {
                    kernel: earlier.name.to_string(),
                });
            }
            if eb.barriers > 0 {
                return Err(FusionReject::BarrierHazard {
                    kernel: later.name.to_string(),
                });
            }
            if !a_eff.complete {
                return Err(FusionReject::IncompleteSummary {
                    kernel: earlier.name.to_string(),
                    arg: ai as u32,
                });
            }
            if !b_eff.complete {
                return Err(FusionReject::IncompleteSummary {
                    kernel: later.name.to_string(),
                    arg: bi as u32,
                });
            }
            if a_eff.elem_bytes != b_eff.elem_bytes {
                return Err(FusionReject::ElemWidthMismatch {
                    earlier_arg: ai as u32,
                    later_arg: bi as u32,
                });
            }
            for pa in &a_eff.patterns {
                for pb in &b_eff.patterns {
                    if !pa.write && !pb.write {
                        continue;
                    }
                    // The only overlap the prover accepts: both sides
                    // provably item-private with the *same* per-item
                    // element. Anything else is a hazard.
                    let same_elem =
                        pa.provable && pb.provable && pa.coeffs == pb.coeffs && pa.base == pb.base;
                    if !same_elem {
                        return Err(if pa.write && pb.write {
                            FusionReject::WriteWriteHazard {
                                earlier_arg: ai as u32,
                                later_arg: bi as u32,
                            }
                        } else {
                            FusionReject::ReadWriteHazard {
                                earlier_arg: ai as u32,
                                later_arg: bi as u32,
                            }
                        });
                    }
                }
            }
        }
    }
    Ok(())
}

fn summary_of<'a>(c: &FusionCandidate<'a>) -> Result<&'a EffectSummary, FusionReject> {
    let effects =
        c.effects
            .filter(|e| !e.is_empty())
            .ok_or_else(|| FusionReject::MissingSummary {
                kernel: c.name.to_string(),
            })?;
    if effects.args.len() != c.buffers.len() {
        return Err(FusionReject::ArityMismatch {
            kernel: c.name.to_string(),
        });
    }
    Ok(effects)
}

#[cfg(test)]
mod tests {
    use super::super::effects::{AccessPattern, ArgEffect, PatternBase};
    use super::*;

    fn shape() -> FusionShape {
        FusionShape {
            work_dim: 1,
            global: [64, 1, 1],
            local: [8, 1, 1],
        }
    }

    fn gid_pattern(write: bool) -> AccessPattern {
        AccessPattern {
            write,
            coeffs: [1, 0, 0],
            base: PatternBase::Geom { id: 0, add: 0 },
            provable: true,
        }
    }

    fn arg(mode: AccessMode, patterns: Vec<AccessPattern>) -> ArgEffect {
        ArgEffect {
            mode,
            elem_bytes: 4,
            elem_bounds: Some((0, 63)),
            patterns,
            complete: true,
        }
    }

    fn summary(args: Vec<ArgEffect>) -> EffectSummary {
        EffectSummary { args, barriers: 0 }
    }

    #[test]
    fn item_private_write_chain_is_fusable() {
        let s = summary(vec![arg(
            AccessMode::ReadWrite,
            vec![gid_pattern(false), gid_pattern(true)],
        )]);
        let bufs = [Some(7u64)];
        let a = FusionCandidate {
            name: "a",
            effects: Some(&s),
            shape: shape(),
            buffers: &bufs,
        };
        let b = FusionCandidate {
            name: "b",
            effects: Some(&s),
            shape: shape(),
            buffers: &bufs,
        };
        assert_eq!(prove_fusable(&a, &b), Ok(()));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let s = summary(vec![arg(AccessMode::Write, vec![gid_pattern(true)])]);
        let bufs = [Some(7u64)];
        let a = FusionCandidate {
            name: "a",
            effects: Some(&s),
            shape: shape(),
            buffers: &bufs,
        };
        let mut other = shape();
        other.global = [128, 1, 1];
        let b = FusionCandidate {
            name: "b",
            effects: Some(&s),
            shape: other,
            buffers: &bufs,
        };
        assert_eq!(prove_fusable(&a, &b), Err(FusionReject::ShapeMismatch));
    }

    #[test]
    fn shifted_read_of_written_buffer_rejected() {
        // A writes y[gid]; B reads y[gid + 1]: a cross-item dependence.
        let wa = summary(vec![arg(AccessMode::Write, vec![gid_pattern(true)])]);
        let shifted = AccessPattern {
            base: PatternBase::Geom { id: 0, add: 1 },
            ..gid_pattern(false)
        };
        let rb = summary(vec![arg(AccessMode::Read, vec![shifted])]);
        let bufs = [Some(7u64)];
        let a = FusionCandidate {
            name: "a",
            effects: Some(&wa),
            shape: shape(),
            buffers: &bufs,
        };
        let b = FusionCandidate {
            name: "b",
            effects: Some(&rb),
            shape: shape(),
            buffers: &bufs,
        };
        let err = prove_fusable(&a, &b).unwrap_err();
        assert_eq!(err.code(), "read-write-overlap");
    }

    #[test]
    fn unprovable_write_rejected_even_on_disjoint_slots() {
        let opaque = AccessPattern {
            write: true,
            coeffs: [0, 0, 0],
            base: PatternBase::Opaque,
            provable: false,
        };
        let wa = summary(vec![arg(AccessMode::Write, vec![opaque])]);
        let rb = summary(vec![arg(AccessMode::Read, vec![gid_pattern(false)])]);
        let bufs = [Some(3u64)];
        let a = FusionCandidate {
            name: "scatter",
            effects: Some(&wa),
            shape: shape(),
            buffers: &bufs,
        };
        let b = FusionCandidate {
            name: "gather",
            effects: Some(&rb),
            shape: shape(),
            buffers: &bufs,
        };
        assert_eq!(
            prove_fusable(&a, &b).unwrap_err().code(),
            "read-write-overlap"
        );
    }

    #[test]
    fn disjoint_buffers_fuse_regardless_of_patterns() {
        let opaque = AccessPattern {
            write: true,
            coeffs: [0, 0, 0],
            base: PatternBase::Opaque,
            provable: false,
        };
        let s = summary(vec![arg(AccessMode::Write, vec![opaque])]);
        let a_bufs = [Some(1u64)];
        let b_bufs = [Some(2u64)];
        let a = FusionCandidate {
            name: "a",
            effects: Some(&s),
            shape: shape(),
            buffers: &a_bufs,
        };
        let b = FusionCandidate {
            name: "b",
            effects: Some(&s),
            shape: shape(),
            buffers: &b_bufs,
        };
        assert_eq!(prove_fusable(&a, &b), Ok(()));
    }

    #[test]
    fn barrier_with_dependence_rejected_without_one_allowed() {
        let mut with_barrier = summary(vec![arg(AccessMode::Write, vec![gid_pattern(true)])]);
        with_barrier.barriers = 1;
        let reader = summary(vec![arg(AccessMode::Read, vec![gid_pattern(false)])]);
        let shared = [Some(9u64)];
        let a = FusionCandidate {
            name: "reduce",
            effects: Some(&with_barrier),
            shape: shape(),
            buffers: &shared,
        };
        let b = FusionCandidate {
            name: "consume",
            effects: Some(&reader),
            shape: shape(),
            buffers: &shared,
        };
        assert_eq!(prove_fusable(&a, &b).unwrap_err().code(), "barrier-hazard");
        // The same pair with disjoint buffers has no dependence, so the
        // barrier is irrelevant.
        let other = [Some(10u64)];
        let b2 = FusionCandidate {
            name: "consume",
            effects: Some(&reader),
            shape: shape(),
            buffers: &other,
        };
        assert_eq!(prove_fusable(&a, &b2), Ok(()));
    }

    #[test]
    fn missing_summary_rejected() {
        let bufs = [Some(1u64)];
        let a = FusionCandidate {
            name: "bitstream",
            effects: None,
            shape: shape(),
            buffers: &bufs,
        };
        assert_eq!(
            prove_fusable(&a, &a.clone()).unwrap_err().code(),
            "missing-summary"
        );
    }
}
