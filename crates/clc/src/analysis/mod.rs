//! Static kernel analysis: CFG construction, a small forward-dataflow
//! framework, and compile-time checks for barrier divergence,
//! `__local`-memory data races, out-of-bounds local indexing and
//! use-before-init — everything `clBuildProgram` can reject before a
//! kernel ever runs.
//!
//! Results land in a [`KernelReport`] attached to each
//! [`crate::CompiledKernel`]: the diagnostics feed build logs, and the
//! [`KernelFeatures`] vector seeds the scheduler's static placement hints
//! before any dynamic profile exists.

pub mod cfg;
mod checks;
pub mod dataflow;
pub mod effects;
pub mod fusion;

use crate::ast::{KernelDecl, Unit};
use crate::bytecode::{CompiledKernel, CompiledProgram};
use crate::diag::Diagnostics;

/// How [`crate::compile_with_options`] treats analysis findings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalysisMode {
    /// Run the analyzer; error-severity findings fail the build
    /// (`clBuildProgram` semantics). The default.
    #[default]
    Enforce,
    /// Run the analyzer and attach reports, but never fail the build.
    WarnOnly,
    /// Skip the analyzer entirely (reports stay empty).
    Off,
}

/// Options for [`crate::compile_with_options`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompileOptions {
    /// Static-analysis behaviour.
    pub analysis: AnalysisMode,
}

/// The static feature vector of one kernel, used by the scheduler as a
/// placement hint before dynamic profiles exist.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelFeatures {
    /// Statically-declared `__local` bytes.
    pub local_bytes: u32,
    /// Number of `barrier(...)` sites.
    pub barrier_count: u32,
    /// Floating-point instructions per byte of memory traffic (static
    /// estimate).
    pub arithmetic_intensity: f64,
    /// Fraction of reachable basic blocks under work-item-dependent
    /// control flow.
    pub divergence_score: f64,
}

/// Static-analysis results for one kernel.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelReport {
    /// Findings, in discovery order.
    pub diagnostics: Diagnostics,
    /// Static placement features.
    pub features: KernelFeatures,
    /// Inter-kernel effect summary (fusion-legality input).
    pub effects: effects::EffectSummary,
}

impl KernelReport {
    /// Whether any finding is error-severity.
    pub fn has_errors(&self) -> bool {
        self.diagnostics.has_errors()
    }
}

/// Analyzes one compiled kernel against its AST declaration.
pub fn analyze_kernel(decl: &KernelDecl, kernel: &CompiledKernel, source: &str) -> KernelReport {
    checks::analyze(decl, kernel, source)
}

/// Analyzes every kernel of `program`, attaching a [`KernelReport`] to
/// each; returns all diagnostics combined (for build-failure folding).
pub fn analyze_program(unit: &Unit, program: &mut CompiledProgram, source: &str) -> Diagnostics {
    let mut all = Diagnostics::new();
    for k in program.kernels_mut() {
        let Some(decl) = unit.kernels.iter().find(|d| d.name == k.name) else {
            continue;
        };
        let report = checks::analyze(decl, k, source);
        all.extend(report.diagnostics.iter().cloned());
        k.report = report;
    }
    all
}
