//! Abstract syntax tree for the OpenCL C subset.

use crate::diag::Span;
use crate::types::{AddressSpace, ScalarType};

/// A whole translation unit: a list of kernel functions.
#[derive(Debug, Clone, PartialEq)]
pub struct Unit {
    /// The `__kernel` functions, in source order.
    pub kernels: Vec<KernelDecl>,
}

/// A `__kernel void name(params) { body }` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDecl {
    /// Kernel name.
    pub name: String,
    /// Formal parameters.
    pub params: Vec<Param>,
    /// Function body.
    pub body: Block,
    /// Span of the kernel name.
    pub span: Span,
}

/// A kernel formal parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Parameter name.
    pub name: String,
    /// Declared type.
    pub ty: ParamType,
    /// Span of the declaration.
    pub span: Span,
}

/// The type of a kernel parameter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ParamType {
    /// A scalar passed by value.
    Scalar(ScalarType),
    /// A pointer into an address space.
    Pointer(AddressSpace, ScalarType),
}

/// A `{ ... }` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Statements in order.
    pub stmts: Vec<Stmt>,
}

/// A statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A local variable declaration, e.g. `int i = 0;` or
    /// `__local float tile[256];`.
    Decl(DeclStmt),
    /// An expression evaluated for effect, e.g. `a[i] = x;` or `i++;`.
    Expr(Expr),
    /// `if (cond) then else otherwise`.
    If {
        /// Condition.
        cond: Expr,
        /// Taken when true.
        then: Block,
        /// Taken when false, if present.
        otherwise: Option<Block>,
    },
    /// `while (cond) body`.
    While {
        /// Loop condition.
        cond: Expr,
        /// Loop body.
        body: Block,
    },
    /// `do body while (cond);`.
    DoWhile {
        /// Loop body.
        body: Block,
        /// Loop condition.
        cond: Expr,
    },
    /// `for (init; cond; step) body`.
    For {
        /// Optional init declaration or expression.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent means `true`).
        cond: Option<Expr>,
        /// Optional step expression.
        step: Option<Expr>,
        /// Loop body.
        body: Block,
    },
    /// `break;`
    Break(Span),
    /// `continue;`
    Continue(Span),
    /// `return;` (kernels return void).
    Return(Span),
    /// `barrier(flags);` — work-group barrier.
    Barrier(Span),
    /// A nested block.
    Block(Block),
}

/// A declaration statement.
#[derive(Debug, Clone, PartialEq)]
pub struct DeclStmt {
    /// Declared variable name.
    pub name: String,
    /// Scalar element type.
    pub ty: ScalarType,
    /// Address space (`Private` for plain locals, `Local` for `__local`).
    pub space: AddressSpace,
    /// For array declarations, the constant element counts per dimension
    /// (e.g. `tile[16][16]` → `[16, 16]`). Empty for plain scalars.
    pub array_dims: Vec<u64>,
    /// Optional initializer (scalars only).
    pub init: Option<Expr>,
    /// Span of the name.
    pub span: Span,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Rem,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `&`
    BitAnd,
    /// `|`
    BitOr,
    /// `^`
    BitXor,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (short-circuit)
    LogAnd,
    /// `||` (short-circuit)
    LogOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `-`
    Neg,
    /// `!`
    Not,
    /// `~`
    BitNot,
}

/// Increment/decrement flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncDec {
    /// `++`
    Inc,
    /// `--`
    Dec,
}

/// An expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    IntLit {
        /// Decoded value.
        value: u64,
        /// Suffix-derived type hint.
        ty: ScalarType,
        /// Source span.
        span: Span,
    },
    /// Float literal.
    FloatLit {
        /// Decoded value.
        value: f64,
        /// `true` for `float`, `false` for `double`.
        single: bool,
        /// Source span.
        span: Span,
    },
    /// Variable reference.
    Var {
        /// Name.
        name: String,
        /// Source span.
        span: Span,
    },
    /// `base[index]` (possibly nested for 2-D local arrays).
    Index {
        /// The pointer or array expression.
        base: Box<Expr>,
        /// The element index.
        index: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// Unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `cond ? a : b`.
    Ternary {
        /// Condition.
        cond: Box<Expr>,
        /// Value when true.
        then: Box<Expr>,
        /// Value when false.
        otherwise: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `(type) expr` cast.
    Cast {
        /// Target scalar type.
        ty: ScalarType,
        /// Operand.
        operand: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `lhs = rhs` or compound `lhs op= rhs`.
    Assign {
        /// Compound operator, `None` for plain `=`.
        op: Option<BinOp>,
        /// Assignment target (variable or index expression).
        target: Box<Expr>,
        /// Value.
        value: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// `++x` / `x--` etc.
    IncDec {
        /// Increment or decrement.
        op: IncDec,
        /// Applied before (`true`) or after (`false`) the value is taken.
        prefix: bool,
        /// Target lvalue.
        target: Box<Expr>,
        /// Source span.
        span: Span,
    },
    /// A call to a builtin, e.g. `get_global_id(0)` or `sqrt(x)`.
    Call {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<Expr>,
        /// Source span.
        span: Span,
    },
}

impl Expr {
    /// The source span of this expression.
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit { span, .. }
            | Expr::FloatLit { span, .. }
            | Expr::Var { span, .. }
            | Expr::Index { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Ternary { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Assign { span, .. }
            | Expr::IncDec { span, .. }
            | Expr::Call { span, .. } => *span,
        }
    }
}
