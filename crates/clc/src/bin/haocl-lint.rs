//! `haocl-lint` — run the static kernel analyzer over OpenCL C sources.
//!
//! For every `.cl` file given, the tool compiles with analysis in
//! `WarnOnly` mode and prints each kernel's report: its placement feature
//! vector and every diagnostic, in the compiler's `line:col: severity
//! (stage): message` format prefixed with the file path (so editors can
//! jump to findings).
//!
//! Exit status: `0` when every file compiles and no kernel has an
//! error-severity finding, `1` otherwise (warnings alone do not fail),
//! `2` on usage or I/O errors.

use std::process::ExitCode;

use haocl_clc::{compile_with_options, AnalysisMode, CompileOptions};

fn main() -> ExitCode {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: haocl-lint <kernel.cl>...");
        eprintln!("Statically checks OpenCL C kernels for barrier divergence,");
        eprintln!("__local data races, out-of-bounds indexing and use-before-init.");
        return ExitCode::from(2);
    }
    let opts = CompileOptions {
        analysis: AnalysisMode::WarnOnly,
    };
    let mut failed = false;
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        match compile_with_options(&source, &opts) {
            Ok(program) => {
                let mut names: Vec<&str> = program.kernel_names().collect();
                names.sort_unstable();
                for name in names {
                    let k = program.kernel(name).expect("listed kernel exists");
                    let f = &k.report.features;
                    println!(
                        "{path}: kernel `{name}`: local_bytes={} barriers={} \
                         intensity={:.2} divergence={:.2}",
                        f.local_bytes, f.barrier_count, f.arithmetic_intensity, f.divergence_score
                    );
                    for d in k.report.diagnostics.iter() {
                        println!("{path}:{}", d.render());
                    }
                    failed |= k.report.has_errors();
                }
            }
            Err(e) => {
                for line in e.build_log().lines() {
                    println!("{path}:{line}");
                }
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
