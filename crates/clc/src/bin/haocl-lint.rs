//! `haocl-lint` — run the static kernel analyzer over OpenCL C sources.
//!
//! For every `.cl` file given, the tool compiles with analysis in
//! `WarnOnly` mode and prints each kernel's report: its placement feature
//! vector and every diagnostic, in the compiler's `line:col: severity
//! (stage): message` format prefixed with the file path (so editors can
//! jump to findings).
//!
//! With `--graph`, each kernel's per-argument effect summary is printed
//! instead, followed by the fusion prover's verdict for every adjacent
//! kernel pair (kernels in name order). Buffers are paired by positional
//! slot: the verdict assumes slot *i* of both kernels binds the same
//! buffer, which is the interesting (maximally-aliased) case — at
//! runtime the prover sees the real buffer bindings. A nominal 1-D
//! launch shape is assumed, so `--graph` never reports `shape-mismatch`.
//!
//! Exit status: `0` when every file compiles and no kernel has an
//! error-severity finding, `1` otherwise (warnings alone do not fail;
//! fusion rejections are verdicts, not failures), `2` on usage or I/O
//! errors.

use std::process::ExitCode;

use haocl_clc::ast::ParamType;
use haocl_clc::{
    compile_with_options, prove_fusable, AddressSpace, AnalysisMode, CompileOptions,
    CompiledProgram, FusionCandidate, FusionShape,
};

fn main() -> ExitCode {
    let mut paths: Vec<String> = std::env::args().skip(1).collect();
    let graph_mode = {
        let before = paths.len();
        paths.retain(|p| p != "--graph");
        paths.len() != before
    };
    if paths.is_empty() || paths.iter().any(|p| p == "-h" || p == "--help") {
        eprintln!("usage: haocl-lint [--graph] <kernel.cl>...");
        eprintln!("Statically checks OpenCL C kernels for barrier divergence,");
        eprintln!("__local data races, out-of-bounds indexing and use-before-init.");
        eprintln!("--graph prints per-argument effect summaries and the fusion");
        eprintln!("prover's verdict for every adjacent kernel pair.");
        return ExitCode::from(2);
    }
    let opts = CompileOptions {
        analysis: AnalysisMode::WarnOnly,
    };
    let mut failed = false;
    for path in &paths {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("{path}: cannot read: {e}");
                return ExitCode::from(2);
            }
        };
        match compile_with_options(&source, &opts) {
            Ok(program) => {
                if graph_mode {
                    failed |= graph_report(path, &program);
                } else {
                    failed |= default_report(path, &program);
                }
            }
            Err(e) => {
                for line in e.build_log().lines() {
                    println!("{path}:{line}");
                }
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn default_report(path: &str, program: &CompiledProgram) -> bool {
    let mut failed = false;
    let mut names: Vec<&str> = program.kernel_names().collect();
    names.sort_unstable();
    for name in names {
        let k = program.kernel(name).expect("listed kernel exists");
        let f = &k.report.features;
        println!(
            "{path}: kernel `{name}`: local_bytes={} barriers={} \
             intensity={:.2} divergence={:.2}",
            f.local_bytes, f.barrier_count, f.arithmetic_intensity, f.divergence_score
        );
        for d in k.report.diagnostics.iter() {
            println!("{path}:{}", d.render());
        }
        failed |= k.report.has_errors();
    }
    failed
}

/// `--graph` mode: effect summaries, then a fusion verdict per adjacent
/// kernel pair under positional-slot buffer pairing.
fn graph_report(path: &str, program: &CompiledProgram) -> bool {
    let mut failed = false;
    let mut names: Vec<&str> = program.kernel_names().collect();
    names.sort_unstable();
    for name in &names {
        let k = program.kernel(name).expect("listed kernel exists");
        let effects: Vec<String> = k
            .report
            .effects
            .args
            .iter()
            .map(|a| a.to_string())
            .collect();
        println!(
            "{path}: kernel `{name}`: barriers={} effects=[{}]",
            k.report.effects.barriers,
            effects.join(" | ")
        );
        failed |= k.report.has_errors();
    }
    // Every kernel's global-pointer slots become buffer tokens by
    // position, so slot i aliases slot i across the pair.
    let shape = FusionShape {
        work_dim: 1,
        global: [1024, 1, 1],
        local: [64, 1, 1],
    };
    for pair in names.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let ka = program.kernel(a).expect("listed kernel exists");
        let kb = program.kernel(b).expect("listed kernel exists");
        let buf_a = slot_buffers(&ka.params);
        let buf_b = slot_buffers(&kb.params);
        let verdict = prove_fusable(
            &FusionCandidate {
                name: a,
                effects: Some(&ka.report.effects),
                shape,
                buffers: &buf_a,
            },
            &FusionCandidate {
                name: b,
                effects: Some(&kb.report.effects),
                shape,
                buffers: &buf_b,
            },
        );
        match verdict {
            Ok(()) => println!("{path}: fuse `{a}` + `{b}`: OK"),
            Err(e) => println!("{path}: fuse `{a}` + `{b}`: REJECT ({}): {e}", e.code()),
        }
    }
    failed
}

fn slot_buffers(params: &[ParamType]) -> Vec<Option<u64>> {
    params
        .iter()
        .enumerate()
        .map(|(i, p)| match p {
            ParamType::Pointer(AddressSpace::Global | AddressSpace::Constant, _) => Some(i as u64),
            _ => None,
        })
        .collect()
}
