//! The stack bytecode produced by [`crate::sema`] and executed by
//! [`crate::vm`].

use std::collections::BTreeMap;
use std::fmt;

use crate::analysis::KernelReport;
use crate::ast::ParamType;
use crate::diag::Span;
use crate::types::ScalarType;

/// Arithmetic binary operations (operands already unified to one type).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinKind {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (C semantics; integer division by zero traps).
    Div,
    /// Remainder.
    Rem,
    /// Left shift.
    Shl,
    /// Right shift (arithmetic for signed, logical for unsigned).
    Shr,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// Comparison operations (result is `bool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// One-argument math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Math1 {
    /// `sqrt`
    Sqrt,
    /// `rsqrt` (reciprocal square root)
    Rsqrt,
    /// `fabs` / `abs`
    Abs,
    /// `exp`
    Exp,
    /// `log`
    Log,
    /// `log2`
    Log2,
    /// `sin`
    Sin,
    /// `cos`
    Cos,
    /// `tan`
    Tan,
    /// `floor`
    Floor,
    /// `ceil`
    Ceil,
}

/// Two-argument math builtins.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Math2 {
    /// `pow`
    Pow,
    /// `fmin` / `min`
    Min,
    /// `fmax` / `max`
    Max,
    /// `fmod`
    Fmod,
}

/// Work-item geometry queries (`get_global_id` and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Geom {
    /// `get_global_id(dim)`
    GlobalId,
    /// `get_local_id(dim)`
    LocalId,
    /// `get_group_id(dim)`
    GroupId,
    /// `get_global_size(dim)`
    GlobalSize,
    /// `get_local_size(dim)`
    LocalSize,
    /// `get_num_groups(dim)`
    NumGroups,
    /// `get_work_dim()`
    WorkDim,
}

/// A bytecode instruction.
///
/// The machine is a conventional operand-stack design: expression
/// evaluation pushes, operators pop. Pointers are first-class stack values
/// carrying their address space, element type and element offset.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Instr {
    /// Push an integer constant of the given type.
    PushInt(i64, ScalarType),
    /// Push a float constant of the given type (`F32` or `F64`).
    PushFloat(f64, ScalarType),
    /// Push a boolean constant.
    PushBool(bool),
    /// Push a pointer to byte `offset` of the work-group local arena.
    PushLocalPtr {
        /// Byte offset within the local arena.
        byte_offset: u32,
        /// Element type the pointer is typed as.
        elem: ScalarType,
    },
    /// Push a copy of local slot `0`'s value… (indexed slot).
    LoadLocal(u16),
    /// Pop into local slot.
    StoreLocal(u16),
    /// Pop a pointer, push the element it addresses.
    LoadMem(ScalarType),
    /// Pop a value then a pointer, store the value.
    StoreMem(ScalarType),
    /// Pop an index (any integer) then a pointer; push `ptr + index`.
    PtrAdd,
    /// Typed arithmetic on the top two stack values.
    Bin(BinKind, ScalarType),
    /// Typed comparison on the top two stack values; pushes `bool`.
    Cmp(CmpKind, ScalarType),
    /// Negate the top value.
    Neg(ScalarType),
    /// Bitwise-complement the top value.
    BitNot(ScalarType),
    /// Logical-not the top boolean.
    NotBool,
    /// Convert the top value between scalar types.
    Cast {
        /// Source type.
        from: ScalarType,
        /// Destination type.
        to: ScalarType,
    },
    /// Unconditional jump to an instruction index.
    Jump(u32),
    /// Pop a boolean; jump when false.
    JumpIfFalse(u32),
    /// Pop a boolean; jump when true.
    JumpIfTrue(u32),
    /// One-argument math builtin on the top value.
    CallMath1(Math1, ScalarType),
    /// Two-argument math builtin on the top two values.
    CallMath2(Math2, ScalarType),
    /// Push a geometry query result (`u64`); pops the dimension index.
    Query(Geom),
    /// Work-group barrier: suspend until every item in the group arrives.
    Barrier,
    /// Finish this work-item.
    Return,
    /// Duplicate the top of stack.
    Dup,
    /// Discard the top of stack.
    Pop,
}

/// A compiled kernel: bytecode plus launch metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct CompiledKernel {
    /// Kernel name (as declared in source).
    pub name: String,
    /// Parameter signature, in declaration order.
    pub params: Vec<ParamType>,
    /// The instruction stream.
    pub code: Vec<Instr>,
    /// Number of local slots (parameters first, then declared variables).
    pub n_slots: u16,
    /// Bytes of work-group local memory statically declared by the kernel
    /// body (`__local float tile[...]`). Dynamic `__local` parameters add
    /// to this at launch time.
    pub static_local_bytes: u32,
    /// Whether the kernel contains a `barrier(...)` (used by devices to
    /// cost synchronization).
    pub uses_barrier: bool,
    /// Source span of the statement or expression each instruction was
    /// lowered from, parallel to `code`. Empty only for hand-built kernels.
    pub spans: Vec<Span>,
    /// Pre-resolved source positions of every `Barrier` instruction, so the
    /// VM (which has no source text) can name the barrier in errors.
    pub barrier_sites: Vec<BarrierSite>,
    /// Every statically-declared `__local` array, keyed by its byte offset
    /// in the local arena (offsets are unique per kernel).
    pub local_arrays: Vec<LocalArrayInfo>,
    /// Static-analysis results, attached by [`crate::compile`].
    pub report: KernelReport,
}

/// Metadata for one statically-declared `__local` array.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalArrayInfo {
    /// Variable name in source (for diagnostics).
    pub name: String,
    /// Byte offset of the array within the local arena.
    pub byte_offset: u32,
    /// Element type.
    pub elem: ScalarType,
    /// Declared extents (1 or 2 dimensions).
    pub dims: Vec<u64>,
}

impl LocalArrayInfo {
    /// Total number of elements.
    pub fn extent_elems(&self) -> u64 {
        self.dims.iter().product()
    }
}

/// The 1-based source position of one `Barrier` instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarrierSite {
    /// Instruction index of the `Barrier` in `code`.
    pub pc: u32,
    /// 1-based source line of the `barrier(...)` call.
    pub line: u32,
    /// 1-based source column of the `barrier(...)` call.
    pub col: u32,
}

impl CompiledKernel {
    /// Number of declared parameters.
    pub fn arity(&self) -> usize {
        self.params.len()
    }

    /// Source position of the `Barrier` instruction at `pc`, if recorded.
    pub fn barrier_site(&self, pc: u32) -> Option<BarrierSite> {
        self.barrier_sites.iter().find(|s| s.pc == pc).copied()
    }
}

impl fmt::Display for CompiledKernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "kernel {}/{}:", self.name, self.params.len())?;
        for (i, ins) in self.code.iter().enumerate() {
            writeln!(f, "  {i:4}: {ins:?}")?;
        }
        Ok(())
    }
}

/// A compiled program: every kernel of one translation unit, addressable
/// by name (the `clCreateKernel` lookup).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CompiledProgram {
    kernels: BTreeMap<String, CompiledKernel>,
}

impl CompiledProgram {
    /// Creates a program from compiled kernels.
    ///
    /// # Panics
    ///
    /// Panics if two kernels share a name (sema rejects this earlier).
    pub fn from_kernels(kernels: Vec<CompiledKernel>) -> Self {
        let mut map = BTreeMap::new();
        for k in kernels {
            let name = k.name.clone();
            let prev = map.insert(name.clone(), k);
            assert!(prev.is_none(), "duplicate kernel `{name}`");
        }
        CompiledProgram { kernels: map }
    }

    /// Looks up a kernel by name.
    pub fn kernel(&self, name: &str) -> Option<&CompiledKernel> {
        self.kernels.get(name)
    }

    /// Mutable iteration over kernels (used to attach analysis reports).
    pub(crate) fn kernels_mut(&mut self) -> impl Iterator<Item = &mut CompiledKernel> {
        self.kernels.values_mut()
    }

    /// Iterates over all kernels in name order.
    pub fn kernels(&self) -> impl Iterator<Item = &CompiledKernel> {
        self.kernels.values()
    }

    /// The kernel names in this program, sorted.
    pub fn kernel_names(&self) -> impl Iterator<Item = &str> {
        self.kernels.keys().map(String::as_str)
    }

    /// Number of kernels.
    pub fn len(&self) -> usize {
        self.kernels.len()
    }

    /// Whether the program has no kernels.
    pub fn is_empty(&self) -> bool {
        self.kernels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy(name: &str) -> CompiledKernel {
        CompiledKernel {
            name: name.to_string(),
            params: vec![],
            code: vec![Instr::Return],
            n_slots: 0,
            static_local_bytes: 0,
            uses_barrier: false,
            spans: vec![Span::default()],
            barrier_sites: vec![],
            local_arrays: vec![],
            report: KernelReport::default(),
        }
    }

    #[test]
    fn program_lookup_by_name() {
        let p = CompiledProgram::from_kernels(vec![dummy("a"), dummy("b")]);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(p.kernel("a").is_some());
        assert!(p.kernel("c").is_none());
        let names: Vec<_> = p.kernel_names().collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "duplicate kernel")]
    fn duplicate_kernel_panics() {
        let _ = CompiledProgram::from_kernels(vec![dummy("a"), dummy("a")]);
    }

    #[test]
    fn display_disassembles() {
        let k = dummy("k");
        let text = k.to_string();
        assert!(text.contains("kernel k/0"));
        assert!(text.contains("Return"));
    }
}
