//! Compiler diagnostics and source spans.

use std::error::Error;
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// The compilation stage that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / lowering.
    Sema,
    /// Static analysis (CFG/dataflow checks).
    Analysis,
    /// NDRange execution (the VM's dynamic checks).
    Exec,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
            Stage::Analysis => "analysis",
            Stage::Exec => "exec",
        })
    }
}

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but not fatal; surfaced in the build log.
    Warning,
    /// Fails the build under `clBuildProgram` semantics.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single finding with a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    stage: Stage,
    severity: Severity,
    message: String,
    line: usize,
    col: usize,
}

impl Diagnostic {
    /// Creates a diagnostic for `stage` at `span` within `source`.
    pub fn at(
        stage: Stage,
        severity: Severity,
        span: Span,
        source: &str,
        message: impl Into<String>,
    ) -> Self {
        let (line, col) = span.line_col(source);
        Diagnostic {
            stage,
            severity,
            message: message.into(),
            line,
            col,
        }
    }

    /// Creates a diagnostic at an already-resolved 1-based position.
    pub fn at_position(
        stage: Stage,
        severity: Severity,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            stage,
            severity,
            message: message.into(),
            line,
            col,
        }
    }

    /// The stage that produced this diagnostic.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// Warning or error.
    pub fn severity(&self) -> Severity {
        self.severity
    }

    /// The message without position information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column.
    pub fn col(&self) -> usize {
        self.col
    }

    /// One build-log line: `line:col: severity (stage): message`.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} ({}): {}",
            self.line, self.col, self.severity, self.stage, self.message
        )
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// An ordered collection of diagnostics from one compilation.
///
/// One `compile()` can report several findings; the collection renders them
/// as a multi-line build log (one [`Diagnostic::render`] line each).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Diagnostics {
    items: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Creates an empty collection.
    pub fn new() -> Self {
        Diagnostics::default()
    }

    /// Appends one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.items.push(d);
    }

    /// All diagnostics in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        self.items.iter()
    }

    /// Number of diagnostics.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether there are no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of error-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .count()
    }

    /// Number of warning-severity diagnostics.
    pub fn warning_count(&self) -> usize {
        self.items
            .iter()
            .filter(|d| d.severity == Severity::Warning)
            .count()
    }

    /// Whether any diagnostic is an error.
    pub fn has_errors(&self) -> bool {
        self.error_count() > 0
    }

    /// Multi-line build log, one line per diagnostic.
    pub fn render(&self) -> String {
        self.items
            .iter()
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    /// Folds this collection into a [`ClcError`] if it contains any error.
    ///
    /// The first error becomes the primary position; every other diagnostic
    /// (warnings included) rides along in the build log.
    pub fn into_error(mut self) -> Option<ClcError> {
        let idx = self
            .items
            .iter()
            .position(|d| d.severity == Severity::Error)?;
        let first = self.items.remove(idx);
        Some(ClcError {
            stage: first.stage,
            message: first.message,
            line: first.line,
            col: first.col,
            notes: self.items,
        })
    }
}

impl IntoIterator for Diagnostics {
    type Item = Diagnostic;
    type IntoIter = std::vec::IntoIter<Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.items.into_iter()
    }
}

impl Extend<Diagnostic> for Diagnostics {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.items.extend(iter);
    }
}

/// A build failure: one or more diagnostics with positions, formatted into
/// an OpenCL-style build log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClcError {
    stage: Stage,
    message: String,
    line: usize,
    col: usize,
    notes: Vec<Diagnostic>,
}

impl ClcError {
    /// Creates an error for `stage` at `span` within `source`.
    pub fn at(stage: Stage, span: Span, source: &str, message: impl Into<String>) -> Self {
        let (line, col) = span.line_col(source);
        ClcError {
            stage,
            message: message.into(),
            line,
            col,
            notes: Vec::new(),
        }
    }

    /// Creates an error at an already-resolved 1-based position.
    pub fn at_position(stage: Stage, line: usize, col: usize, message: impl Into<String>) -> Self {
        ClcError {
            stage,
            message: message.into(),
            line,
            col,
            notes: Vec::new(),
        }
    }

    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The diagnostic message without position information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based source column of the error.
    pub fn col(&self) -> usize {
        self.col
    }

    /// Secondary diagnostics attached to this failure (may be empty).
    pub fn notes(&self) -> &[Diagnostic] {
        &self.notes
    }

    /// The `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` equivalent.
    ///
    /// The first line keeps the historical single-error format; secondary
    /// diagnostics follow, one per line.
    pub fn build_log(&self) -> String {
        let mut log = format!(
            "{}:{}: error ({}): {}",
            self.line, self.col, self.stage, self.message
        );
        for note in &self.notes {
            log.push('\n');
            log.push_str(&note.render());
        }
        log
    }
}

impl fmt::Display for ClcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build_log())
    }
}

impl Error for ClcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 3));
        assert_eq!(Span::new(9, 10).line_col(src), (3, 2));
    }

    #[test]
    fn build_log_format() {
        let src = "x\nyz";
        let err = ClcError::at(Stage::Parse, Span::new(3, 4), src, "expected `;`");
        assert_eq!(err.build_log(), "2:2: error (parse): expected `;`");
        assert_eq!(err.line(), 2);
        assert_eq!(err.message(), "expected `;`");
        assert_eq!(err.stage(), Stage::Parse);
    }

    #[test]
    fn diagnostic_render_includes_severity_and_stage() {
        let d = Diagnostic::at_position(Stage::Analysis, Severity::Warning, 3, 7, "unused slot");
        assert_eq!(d.render(), "3:7: warning (analysis): unused slot");
        assert_eq!(d.severity(), Severity::Warning);
        assert_eq!(d.line(), 3);
        assert_eq!(d.col(), 7);
    }

    #[test]
    fn diagnostics_collection_counts_and_renders() {
        let mut diags = Diagnostics::new();
        assert!(diags.is_empty());
        diags.push(Diagnostic::at_position(
            Stage::Analysis,
            Severity::Warning,
            1,
            1,
            "w1",
        ));
        diags.push(Diagnostic::at_position(
            Stage::Analysis,
            Severity::Error,
            2,
            5,
            "e1",
        ));
        assert_eq!(diags.len(), 2);
        assert_eq!(diags.warning_count(), 1);
        assert_eq!(diags.error_count(), 1);
        assert!(diags.has_errors());
        assert_eq!(
            diags.render(),
            "1:1: warning (analysis): w1\n2:5: error (analysis): e1"
        );
    }

    #[test]
    fn into_error_promotes_first_error_and_keeps_rest_as_notes() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::at_position(
            Stage::Analysis,
            Severity::Warning,
            1,
            1,
            "w1",
        ));
        diags.push(Diagnostic::at_position(
            Stage::Analysis,
            Severity::Error,
            4,
            2,
            "bad barrier",
        ));
        let err = diags.into_error().expect("has an error");
        assert_eq!(err.line(), 4);
        assert_eq!(err.stage(), Stage::Analysis);
        assert_eq!(
            err.build_log(),
            "4:2: error (analysis): bad barrier\n1:1: warning (analysis): w1"
        );
    }

    #[test]
    fn into_error_is_none_for_warnings_only() {
        let mut diags = Diagnostics::new();
        diags.push(Diagnostic::at_position(
            Stage::Analysis,
            Severity::Warning,
            1,
            1,
            "w",
        ));
        assert!(diags.into_error().is_none());
    }
}
