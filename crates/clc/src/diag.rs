//! Compiler diagnostics and source spans.

use std::error::Error;
use std::fmt;

/// A half-open byte range into the source text.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
}

impl Span {
    /// Creates a span covering `start..end`.
    pub fn new(start: usize, end: usize) -> Self {
        Span { start, end }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// 1-based (line, column) of the span start within `source`.
    pub fn line_col(&self, source: &str) -> (usize, usize) {
        let mut line = 1;
        let mut col = 1;
        for (i, ch) in source.char_indices() {
            if i >= self.start {
                break;
            }
            if ch == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        (line, col)
    }
}

/// The compilation stage that produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking / lowering.
    Sema,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Stage::Lex => "lex",
            Stage::Parse => "parse",
            Stage::Sema => "sema",
        })
    }
}

/// A build failure: one or more diagnostics with positions, formatted into
/// an OpenCL-style build log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClcError {
    stage: Stage,
    message: String,
    line: usize,
    col: usize,
}

impl ClcError {
    /// Creates an error for `stage` at `span` within `source`.
    pub fn at(stage: Stage, span: Span, source: &str, message: impl Into<String>) -> Self {
        let (line, col) = span.line_col(source);
        ClcError {
            stage,
            message: message.into(),
            line,
            col,
        }
    }

    /// The stage that failed.
    pub fn stage(&self) -> Stage {
        self.stage
    }

    /// The diagnostic message without position information.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// 1-based source line of the error.
    pub fn line(&self) -> usize {
        self.line
    }

    /// The `clGetProgramBuildInfo(CL_PROGRAM_BUILD_LOG)` equivalent.
    pub fn build_log(&self) -> String {
        format!(
            "{}:{}: error ({}): {}",
            self.line, self.col, self.stage, self.message
        )
    }
}

impl fmt::Display for ClcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.build_log())
    }
}

impl Error for ClcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_merge_covers_both() {
        let a = Span::new(3, 5);
        let b = Span::new(10, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn line_col_counts_newlines() {
        let src = "abc\ndef\nghi";
        assert_eq!(Span::new(0, 1).line_col(src), (1, 1));
        assert_eq!(Span::new(4, 5).line_col(src), (2, 1));
        assert_eq!(Span::new(6, 7).line_col(src), (2, 3));
        assert_eq!(Span::new(9, 10).line_col(src), (3, 2));
    }

    #[test]
    fn build_log_format() {
        let src = "x\nyz";
        let err = ClcError::at(Stage::Parse, Span::new(3, 4), src, "expected `;`");
        assert_eq!(err.build_log(), "2:2: error (parse): expected `;`");
        assert_eq!(err.line(), 2);
        assert_eq!(err.message(), "expected `;`");
        assert_eq!(err.stage(), Stage::Parse);
    }
}
