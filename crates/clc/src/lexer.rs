//! Tokenizer for the OpenCL C subset.

use crate::diag::{ClcError, Span, Stage};

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// An identifier or keyword (keywords are resolved by the parser).
    Ident(String),
    /// An integer literal, already decoded (decimal or `0x` hex), with a
    /// flag recording a `u`/`U` suffix and one recording an `l`/`L` suffix.
    IntLit {
        /// The decoded value.
        value: u64,
        /// `u`/`U` suffix present.
        unsigned: bool,
        /// `l`/`L` suffix present.
        long: bool,
    },
    /// A floating literal; `single` records an `f`/`F` suffix.
    FloatLit {
        /// The decoded value.
        value: f64,
        /// `f`/`F` suffix present.
        single: bool,
    },
    /// Punctuation and operators, e.g. `+`, `<<=`, `(`.
    Punct(&'static str),
}

/// A token with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What was lexed.
    pub kind: TokenKind,
    /// Where it came from.
    pub span: Span,
}

/// All multi- and single-character punctuators, longest first so maximal
/// munch works by scanning in order.
const PUNCTUATORS: &[&str] = &[
    "<<=", ">>=", "...", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->", "+", "-", "*", "/", "%", "=", "<", ">", "!", "&",
    "|", "^", "~", "?", ":", ";", ",", ".", "(", ")", "[", "]", "{", "}",
];

/// Tokenizes `source`.
///
/// Line (`//`) and block (`/* */`) comments and all whitespace are
/// skipped. Preprocessor lines (starting with `#`) are skipped to the end
/// of line — the subset has no macro expansion, but benchmark sources may
/// carry `#pragma` lines.
///
/// # Errors
///
/// Returns an error for unterminated block comments, malformed numeric
/// literals and characters outside the language.
pub fn lex(source: &str) -> Result<Vec<Token>, ClcError> {
    let bytes = source.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        // Whitespace.
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        // Comments and preprocessor lines.
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'/' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        if c == '/' && i + 1 < bytes.len() && bytes[i + 1] == b'*' {
            let start = i;
            i += 2;
            loop {
                if i + 1 >= bytes.len() {
                    return Err(ClcError::at(
                        Stage::Lex,
                        Span::new(start, bytes.len()),
                        source,
                        "unterminated block comment",
                    ));
                }
                if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                    i += 2;
                    break;
                }
                i += 1;
            }
            continue;
        }
        if c == '#' {
            while i < bytes.len() && bytes[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Identifiers / keywords.
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            tokens.push(Token {
                kind: TokenKind::Ident(source[start..i].to_string()),
                span: Span::new(start, i),
            });
            continue;
        }
        // Numeric literals.
        if c.is_ascii_digit() || (c == '.' && i + 1 < bytes.len() && bytes[i + 1].is_ascii_digit())
        {
            let (tok, next) = lex_number(source, i)?;
            tokens.push(tok);
            i = next;
            continue;
        }
        // Punctuators, maximal munch.
        if let Some(p) = PUNCTUATORS.iter().find(|p| source[i..].starts_with(*p)) {
            tokens.push(Token {
                kind: TokenKind::Punct(p),
                span: Span::new(i, i + p.len()),
            });
            i += p.len();
            continue;
        }
        return Err(ClcError::at(
            Stage::Lex,
            Span::new(i, i + 1),
            source,
            format!("unexpected character `{c}`"),
        ));
    }
    Ok(tokens)
}

fn lex_number(source: &str, start: usize) -> Result<(Token, usize), ClcError> {
    let bytes = source.as_bytes();
    let mut i = start;
    // Hex integer.
    if source[i..].starts_with("0x") || source[i..].starts_with("0X") {
        i += 2;
        let digits_start = i;
        while i < bytes.len() && bytes[i].is_ascii_hexdigit() {
            i += 1;
        }
        if i == digits_start {
            return Err(ClcError::at(
                Stage::Lex,
                Span::new(start, i),
                source,
                "hex literal needs at least one digit",
            ));
        }
        let value = u64::from_str_radix(&source[digits_start..i], 16).map_err(|_| {
            ClcError::at(
                Stage::Lex,
                Span::new(start, i),
                source,
                "hex literal does not fit in 64 bits",
            )
        })?;
        let (unsigned, long, next) = int_suffix(bytes, i);
        return Ok((
            Token {
                kind: TokenKind::IntLit {
                    value,
                    unsigned,
                    long,
                },
                span: Span::new(start, next),
            },
            next,
        ));
    }
    // Decimal: integer part, optional fraction, optional exponent.
    while i < bytes.len() && bytes[i].is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' {
        is_float = true;
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            i += 1;
        }
    }
    if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
        let mut j = i + 1;
        if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
            j += 1;
        }
        if j < bytes.len() && bytes[j].is_ascii_digit() {
            is_float = true;
            i = j;
            while i < bytes.len() && bytes[i].is_ascii_digit() {
                i += 1;
            }
        }
    }
    if is_float {
        let value: f64 = source[start..i].parse().map_err(|_| {
            ClcError::at(
                Stage::Lex,
                Span::new(start, i),
                source,
                "malformed floating literal",
            )
        })?;
        let mut single = false;
        let mut next = i;
        if next < bytes.len() && (bytes[next] == b'f' || bytes[next] == b'F') {
            single = true;
            next += 1;
        }
        Ok((
            Token {
                kind: TokenKind::FloatLit { value, single },
                span: Span::new(start, next),
            },
            next,
        ))
    } else {
        let value: u64 = source[start..i].parse().map_err(|_| {
            ClcError::at(
                Stage::Lex,
                Span::new(start, i),
                source,
                "integer literal does not fit in 64 bits",
            )
        })?;
        // A float suffix directly on an integer body (e.g. `1f`) makes it
        // a float literal, matching OpenCL C.
        if i < bytes.len() && (bytes[i] == b'f' || bytes[i] == b'F') {
            return Ok((
                Token {
                    kind: TokenKind::FloatLit {
                        value: value as f64,
                        single: true,
                    },
                    span: Span::new(start, i + 1),
                },
                i + 1,
            ));
        }
        let (unsigned, long, next) = int_suffix(bytes, i);
        Ok((
            Token {
                kind: TokenKind::IntLit {
                    value,
                    unsigned,
                    long,
                },
                span: Span::new(start, next),
            },
            next,
        ))
    }
}

fn int_suffix(bytes: &[u8], mut i: usize) -> (bool, bool, usize) {
    let mut unsigned = false;
    let mut long = false;
    for _ in 0..2 {
        if i < bytes.len() && (bytes[i] == b'u' || bytes[i] == b'U') && !unsigned {
            unsigned = true;
            i += 1;
        } else if i < bytes.len() && (bytes[i] == b'l' || bytes[i] == b'L') && !long {
            long = true;
            i += 1;
        }
    }
    (unsigned, long, i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_identifiers_and_puncts() {
        assert_eq!(
            kinds("a+_b2"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("+"),
                TokenKind::Ident("_b2".into()),
            ]
        );
    }

    #[test]
    fn maximal_munch_operators() {
        assert_eq!(
            kinds("a<<=b<<c<=d"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Punct("<<="),
                TokenKind::Ident("b".into()),
                TokenKind::Punct("<<"),
                TokenKind::Ident("c".into()),
                TokenKind::Punct("<="),
                TokenKind::Ident("d".into()),
            ]
        );
    }

    #[test]
    fn lexes_integer_literals() {
        assert_eq!(
            kinds("42 0x2A 7u 9ul 3L"),
            vec![
                TokenKind::IntLit {
                    value: 42,
                    unsigned: false,
                    long: false
                },
                TokenKind::IntLit {
                    value: 42,
                    unsigned: false,
                    long: false
                },
                TokenKind::IntLit {
                    value: 7,
                    unsigned: true,
                    long: false
                },
                TokenKind::IntLit {
                    value: 9,
                    unsigned: true,
                    long: true
                },
                TokenKind::IntLit {
                    value: 3,
                    unsigned: false,
                    long: true
                },
            ]
        );
    }

    #[test]
    fn lexes_float_literals() {
        assert_eq!(
            kinds("1.5 2.0f .25 1e3 2.5e-2 1f"),
            vec![
                TokenKind::FloatLit {
                    value: 1.5,
                    single: false
                },
                TokenKind::FloatLit {
                    value: 2.0,
                    single: true
                },
                TokenKind::FloatLit {
                    value: 0.25,
                    single: false
                },
                TokenKind::FloatLit {
                    value: 1e3,
                    single: false
                },
                TokenKind::FloatLit {
                    value: 2.5e-2,
                    single: false
                },
                TokenKind::FloatLit {
                    value: 1.0,
                    single: true
                },
            ]
        );
    }

    #[test]
    fn member_access_is_not_a_float() {
        assert_eq!(
            kinds("s.x"),
            vec![
                TokenKind::Ident("s".into()),
                TokenKind::Punct("."),
                TokenKind::Ident("x".into()),
            ]
        );
    }

    #[test]
    fn skips_comments_and_pragmas() {
        let src = "a // one\n/* two\nthree */ b\n#pragma OPENCL EXTENSION cl_khr_fp64 : enable\nc";
        assert_eq!(
            kinds(src),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Ident("c".into()),
            ]
        );
    }

    #[test]
    fn unterminated_comment_errors() {
        let err = lex("x /* nope").unwrap_err();
        assert!(err.message().contains("unterminated"));
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex("a @ b").unwrap_err();
        assert!(err.message().contains('@'));
    }

    #[test]
    fn spans_point_at_tokens() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].span, Span::new(0, 2));
        assert_eq!(toks[1].span, Span::new(4, 6));
    }

    #[test]
    fn exponent_without_digits_is_identifier_suffix() {
        // `1e` is the int 1 followed by identifier `e` (C would reject,
        // we tolerate by splitting — parser will then reject the sequence).
        assert_eq!(
            kinds("1e"),
            vec![
                TokenKind::IntLit {
                    value: 1,
                    unsigned: false,
                    long: false
                },
                TokenKind::Ident("e".into()),
            ]
        );
    }
}
