//! A miniature OpenCL C kernel compiler and virtual machine.
//!
//! HaoCL device nodes receive OpenCL programs as source text and compile
//! them with the vendor toolchain (`clBuildProgram`). This reproduction has
//! no vendor toolchain, so `haocl-clc` implements the pipeline from
//! scratch for a practical subset of OpenCL C:
//!
//! * [`lexer`] — tokenizer with source spans,
//! * [`parser`] — recursive-descent parser producing an [`ast`],
//! * [`sema`] — type checking plus single-pass compilation to a stack
//!   [`bytecode`],
//! * [`vm`] — a work-item virtual machine that executes whole work-groups,
//!   suspending items at `barrier()` so work-group synchronization has real
//!   OpenCL semantics.
//!
//! The supported subset covers the kernels of the paper's five benchmarks:
//! scalar types (`int`, `uint`, `long`, `ulong`, `float`, `double`,
//! `bool`), `__global`/`__local`/`__constant` pointers, local arrays,
//! control flow (`if`/`for`/`while`/`do`/`break`/`continue`/`return`),
//! the work-item geometry builtins, common math builtins and
//! `barrier(...)`.
//!
//! # Examples
//!
//! ```
//! use haocl_clc::{compile, vm};
//!
//! let src = r#"
//!     __kernel void scale(__global float* data, float factor) {
//!         int i = get_global_id(0);
//!         data[i] = data[i] * factor;
//!     }
//! "#;
//! let program = compile(src)?;
//! let kernel = program.kernel("scale").expect("kernel exists");
//!
//! let mut buf = vm::GlobalBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0]);
//! let args = vec![
//!     vm::ArgValue::global(0),
//!     vm::ArgValue::from_f32(10.0),
//! ];
//! vm::run_ndrange(
//!     kernel,
//!     &args,
//!     std::slice::from_mut(&mut buf),
//!     &vm::NdRange::linear(4, 2),
//! )?;
//! assert_eq!(buf.as_f32(), &[10.0, 20.0, 30.0, 40.0]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod analysis;
pub mod ast;
pub mod bytecode;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod sema;
pub mod types;
pub mod vm;

pub use analysis::effects::{AccessMode, AccessPattern, ArgEffect, EffectSummary, PatternBase};
pub use analysis::fusion::{prove_fusable, FusionCandidate, FusionReject, FusionShape};
pub use analysis::{AnalysisMode, CompileOptions, KernelFeatures, KernelReport};
pub use bytecode::{CompiledKernel, CompiledProgram};
pub use diag::ClcError;
pub use types::{AddressSpace, ScalarType, Type};

/// Compiles OpenCL C source into an executable [`CompiledProgram`].
///
/// This is the `clBuildProgram` equivalent: it lexes, parses, type-checks
/// and lowers every `__kernel` function in `source`, then runs the static
/// analyzer ([`analysis`]) in [`AnalysisMode::Enforce`]: error-severity
/// findings (barrier divergence, `__local` data races, provable
/// out-of-bounds local indexing) fail the build just like a type error
/// would. Use [`compile_with_options`] to relax or skip analysis.
///
/// # Errors
///
/// Returns a [`ClcError`] carrying a build log (with line/column
/// positions) if the source fails to lex, parse, type-check or pass the
/// analyzer.
///
/// # Examples
///
/// ```
/// let err = haocl_clc::compile("__kernel void f( { }").unwrap_err();
/// assert!(err.build_log().contains("expected"));
/// ```
pub fn compile(source: &str) -> Result<CompiledProgram, ClcError> {
    compile_with_options(source, &CompileOptions::default())
}

/// [`compile`] with explicit [`CompileOptions`].
///
/// In [`AnalysisMode::WarnOnly`] and [`AnalysisMode::Enforce`], each
/// compiled kernel carries its [`KernelReport`]; in
/// [`AnalysisMode::Off`] reports stay empty.
///
/// # Errors
///
/// Returns a [`ClcError`] on lex/parse/sema failure in every mode, and
/// additionally on error-severity analysis findings in
/// [`AnalysisMode::Enforce`].
pub fn compile_with_options(
    source: &str,
    options: &CompileOptions,
) -> Result<CompiledProgram, ClcError> {
    let tokens = lexer::lex(source)?;
    let unit = parser::parse(&tokens, source)?;
    let mut program = sema::lower(&unit, source)?;
    if options.analysis != AnalysisMode::Off {
        let diags = analysis::analyze_program(&unit, &mut program, source);
        if options.analysis == AnalysisMode::Enforce {
            if let Some(err) = diags.into_error() {
                return Err(err);
            }
        }
    }
    Ok(program)
}
