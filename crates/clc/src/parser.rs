//! Recursive-descent parser for the OpenCL C subset.

use crate::ast::*;
use crate::diag::{ClcError, Span, Stage};
use crate::lexer::{Token, TokenKind};
use crate::types::{AddressSpace, ScalarType};

/// Parses a token stream into a [`Unit`].
///
/// # Errors
///
/// Returns a [`ClcError`] pointing at the offending token on any syntax
/// error.
pub fn parse(tokens: &[Token], source: &str) -> Result<Unit, ClcError> {
    let mut p = Parser {
        tokens,
        source,
        pos: 0,
    };
    let mut kernels = Vec::new();
    while !p.at_end() {
        kernels.push(p.kernel_decl()?);
    }
    Ok(Unit { kernels })
}

struct Parser<'a> {
    tokens: &'a [Token],
    source: &'a str,
    pos: usize,
}

impl<'a> Parser<'a> {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&'a Token> {
        self.tokens.get(self.pos + 1)
    }

    fn advance(&mut self) -> Option<&'a Token> {
        let t = self.tokens.get(self.pos);
        self.pos += 1;
        t
    }

    fn here(&self) -> Span {
        self.peek()
            .map(|t| t.span)
            .unwrap_or_else(|| Span::new(self.source.len(), self.source.len()))
    }

    fn error(&self, msg: impl Into<String>) -> ClcError {
        ClcError::at(Stage::Parse, self.here(), self.source, msg)
    }

    fn is_punct(&self, p: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Punct(q), .. }) if *q == p)
    }

    fn eat_punct(&mut self, p: &str) -> bool {
        if self.is_punct(p) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, p: &str) -> Result<Span, ClcError> {
        if self.is_punct(p) {
            let span = self.here();
            self.pos += 1;
            Ok(span)
        } else {
            Err(self.error(format!("expected `{p}`")))
        }
    }

    fn is_ident(&self, name: &str) -> bool {
        matches!(self.peek(), Some(Token { kind: TokenKind::Ident(s), .. }) if s == name)
    }

    fn eat_ident(&mut self, name: &str) -> bool {
        if self.is_ident(name) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_any_ident(&mut self) -> Result<(String, Span), ClcError> {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                span,
            }) => {
                let out = (s.clone(), *span);
                self.pos += 1;
                Ok(out)
            }
            _ => Err(self.error("expected identifier")),
        }
    }

    /// Peeks whether the current identifier begins a type (for statement
    /// vs. declaration disambiguation).
    fn peek_is_type_start(&self) -> bool {
        match self.peek() {
            Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) => matches!(
                s.as_str(),
                "void"
                    | "int"
                    | "uint"
                    | "unsigned"
                    | "long"
                    | "ulong"
                    | "float"
                    | "double"
                    | "bool"
                    | "size_t"
                    | "const"
                    | "__local"
                    | "local"
                    | "__private"
                    | "private"
                    | "char"
                    | "uchar"
                    | "short"
                    | "ushort"
            ),
            _ => false,
        }
    }

    /// Parses a scalar type name. `char`/`short` map onto `int` widths we
    /// support (the benchmarks do not use sub-word element buffers).
    fn scalar_type(&mut self) -> Result<ScalarType, ClcError> {
        let (name, _) = self.expect_any_ident()?;
        let ty = match name.as_str() {
            "int" | "char" | "short" => ScalarType::I32,
            "uint" | "uchar" | "ushort" => ScalarType::U32,
            "long" => ScalarType::I64,
            "ulong" | "size_t" => ScalarType::U64,
            "float" => ScalarType::F32,
            "double" => ScalarType::F64,
            "bool" => ScalarType::Bool,
            "unsigned" => {
                // `unsigned`, `unsigned int`, `unsigned long`.
                if self.eat_ident("long") {
                    ScalarType::U64
                } else {
                    self.eat_ident("int");
                    ScalarType::U32
                }
            }
            other => return Err(self.error(format!("unknown type `{other}`"))),
        };
        // Allow `long long` → still I64, `long int` → I64.
        if matches!(ty, ScalarType::I64) {
            let _ = self.eat_ident("long") || self.eat_ident("int");
        }
        Ok(ty)
    }

    fn kernel_decl(&mut self) -> Result<KernelDecl, ClcError> {
        if !(self.eat_ident("__kernel") || self.eat_ident("kernel")) {
            return Err(self.error("expected `__kernel`"));
        }
        // Optional attributes like `__attribute__((...))` are not supported;
        // the return type must be void.
        if !self.eat_ident("void") {
            return Err(self.error("kernel return type must be `void`"));
        }
        let (name, span) = self.expect_any_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !self.is_punct(")") {
            loop {
                params.push(self.param()?);
                if !self.eat_punct(",") {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        let body = self.block()?;
        Ok(KernelDecl {
            name,
            params,
            body,
            span,
        })
    }

    fn param(&mut self) -> Result<Param, ClcError> {
        let mut space = AddressSpace::Private;
        let mut saw_space = false;
        loop {
            if self.eat_ident("__global") || self.eat_ident("global") {
                space = AddressSpace::Global;
                saw_space = true;
            } else if self.eat_ident("__local") || self.eat_ident("local") {
                space = AddressSpace::Local;
                saw_space = true;
            } else if self.eat_ident("__constant") || self.eat_ident("constant") {
                space = AddressSpace::Constant;
                saw_space = true;
            } else if self.eat_ident("__private") || self.eat_ident("private") {
                space = AddressSpace::Private;
                saw_space = true;
            } else if self.eat_ident("const")
                || self.eat_ident("restrict")
                || self.eat_ident("__restrict")
            {
                // Qualifiers that do not change our semantics.
            } else {
                break;
            }
        }
        let scalar = self.scalar_type()?;
        // Skip `const` between type and `*` as well.
        while self.eat_ident("const") || self.eat_ident("restrict") || self.eat_ident("__restrict")
        {
        }
        let is_pointer = self.eat_punct("*");
        while self.eat_ident("const") || self.eat_ident("restrict") || self.eat_ident("__restrict")
        {
        }
        let (name, span) = self.expect_any_ident()?;
        let ty = if is_pointer {
            ParamType::Pointer(space, scalar)
        } else {
            if saw_space && space != AddressSpace::Private {
                return Err(self.error("address-space qualifier requires a pointer parameter"));
            }
            ParamType::Scalar(scalar)
        };
        Ok(Param { name, ty, span })
    }

    fn block(&mut self) -> Result<Block, ClcError> {
        self.expect_punct("{")?;
        let mut stmts = Vec::new();
        while !self.is_punct("}") {
            if self.at_end() {
                return Err(self.error("expected `}`"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect_punct("}")?;
        Ok(Block { stmts })
    }

    /// Parses a statement-or-block as a block (for `if (c) x = 1;`).
    fn block_or_stmt(&mut self) -> Result<Block, ClcError> {
        if self.is_punct("{") {
            self.block()
        } else {
            let s = self.stmt()?;
            Ok(Block { stmts: vec![s] })
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ClcError> {
        let span = self.here();
        if self.is_punct("{") {
            return Ok(Stmt::Block(self.block()?));
        }
        if self.eat_ident("if") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let then = self.block_or_stmt()?;
            let otherwise = if self.eat_ident("else") {
                Some(self.block_or_stmt()?)
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then,
                otherwise,
            });
        }
        if self.eat_ident("while") {
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::While { cond, body });
        }
        if self.eat_ident("do") {
            let body = self.block_or_stmt()?;
            if !self.eat_ident("while") {
                return Err(self.error("expected `while` after `do` body"));
            }
            self.expect_punct("(")?;
            let cond = self.expr()?;
            self.expect_punct(")")?;
            self.expect_punct(";")?;
            return Ok(Stmt::DoWhile { body, cond });
        }
        if self.eat_ident("for") {
            self.expect_punct("(")?;
            let init = if self.eat_punct(";") {
                None
            } else {
                let s = if self.peek_is_type_start() {
                    Stmt::Decl(self.decl_after_qualifiers()?)
                } else {
                    let e = self.expr()?;
                    self.expect_punct(";")?;
                    Stmt::Expr(e)
                };
                Some(Box::new(s))
            };
            let cond = if self.is_punct(";") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(";")?;
            let step = if self.is_punct(")") {
                None
            } else {
                Some(self.expr()?)
            };
            self.expect_punct(")")?;
            let body = self.block_or_stmt()?;
            return Ok(Stmt::For {
                init,
                cond,
                step,
                body,
            });
        }
        if self.eat_ident("break") {
            self.expect_punct(";")?;
            return Ok(Stmt::Break(span));
        }
        if self.eat_ident("continue") {
            self.expect_punct(";")?;
            return Ok(Stmt::Continue(span));
        }
        if self.eat_ident("return") {
            if !self.eat_punct(";") {
                return Err(self.error("kernels return void; expected `;` after `return`"));
            }
            return Ok(Stmt::Return(span));
        }
        if self.is_ident("barrier")
            && matches!(
                self.peek2(),
                Some(Token {
                    kind: TokenKind::Punct("("),
                    ..
                })
            )
        {
            self.pos += 1;
            self.expect_punct("(")?;
            // Fence flags (e.g. CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE)
            // are accepted and ignored: the VM's barrier is a full fence.
            let mut depth = 1usize;
            while depth > 0 {
                match self.advance() {
                    Some(Token {
                        kind: TokenKind::Punct("("),
                        ..
                    }) => depth += 1,
                    Some(Token {
                        kind: TokenKind::Punct(")"),
                        ..
                    }) => depth -= 1,
                    Some(_) => {}
                    None => return Err(self.error("unterminated `barrier(`")),
                }
            }
            self.expect_punct(";")?;
            return Ok(Stmt::Barrier(span));
        }
        if self.peek_is_type_start() {
            return Ok(Stmt::Decl(self.decl_after_qualifiers()?));
        }
        let e = self.expr()?;
        self.expect_punct(";")?;
        Ok(Stmt::Expr(e))
    }

    /// Parses `[qualifiers] type name [\[N\]...] [= init] ;`.
    fn decl_after_qualifiers(&mut self) -> Result<DeclStmt, ClcError> {
        let mut space = AddressSpace::Private;
        loop {
            if self.eat_ident("__local") || self.eat_ident("local") {
                space = AddressSpace::Local;
            } else if self.eat_ident("__private") || self.eat_ident("private") {
                space = AddressSpace::Private;
            } else if self.eat_ident("const") {
                // No-op for our semantics.
            } else {
                break;
            }
        }
        let ty = self.scalar_type()?;
        let (name, span) = self.expect_any_ident()?;
        let mut array_dims = Vec::new();
        while self.eat_punct("[") {
            let dim = match self.advance() {
                Some(Token {
                    kind: TokenKind::IntLit { value, .. },
                    ..
                }) => *value,
                _ => {
                    return Err(self.error("array dimension must be an integer literal"));
                }
            };
            self.expect_punct("]")?;
            array_dims.push(dim);
        }
        let init = if self.eat_punct("=") {
            if !array_dims.is_empty() {
                return Err(self.error("array initializers are not supported"));
            }
            Some(self.expr()?)
        } else {
            None
        };
        self.expect_punct(";")?;
        if !array_dims.is_empty() && space == AddressSpace::Private {
            return Err(ClcError::at(
                Stage::Parse,
                span,
                self.source,
                "array variables must be `__local` in this subset",
            ));
        }
        Ok(DeclStmt {
            name,
            ty,
            space,
            array_dims,
            init,
            span,
        })
    }

    // ----- expressions (precedence climbing) -----

    fn expr(&mut self) -> Result<Expr, ClcError> {
        self.assignment()
    }

    fn assignment(&mut self) -> Result<Expr, ClcError> {
        let lhs = self.ternary()?;
        let compound = |p: &str| -> Option<BinOp> {
            Some(match p {
                "+=" => BinOp::Add,
                "-=" => BinOp::Sub,
                "*=" => BinOp::Mul,
                "/=" => BinOp::Div,
                "%=" => BinOp::Rem,
                "&=" => BinOp::BitAnd,
                "|=" => BinOp::BitOr,
                "^=" => BinOp::BitXor,
                "<<=" => BinOp::Shl,
                ">>=" => BinOp::Shr,
                _ => return None,
            })
        };
        if let Some(Token {
            kind: TokenKind::Punct(p),
            span,
        }) = self.peek()
        {
            if *p == "=" {
                let span = *span;
                self.pos += 1;
                let value = self.assignment()?;
                return Ok(Expr::Assign {
                    op: None,
                    target: Box::new(lhs),
                    value: Box::new(value),
                    span,
                });
            }
            if let Some(op) = compound(p) {
                let span = *span;
                self.pos += 1;
                let value = self.assignment()?;
                return Ok(Expr::Assign {
                    op: Some(op),
                    target: Box::new(lhs),
                    value: Box::new(value),
                    span,
                });
            }
        }
        Ok(lhs)
    }

    fn ternary(&mut self) -> Result<Expr, ClcError> {
        let cond = self.binary(0)?;
        if self.is_punct("?") {
            let span = self.here();
            self.pos += 1;
            let then = self.expr()?;
            self.expect_punct(":")?;
            let otherwise = self.ternary()?;
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then: Box::new(then),
                otherwise: Box::new(otherwise),
                span,
            });
        }
        Ok(cond)
    }

    /// The binary operator (and its precedence) at the cursor, if any.
    fn peek_binop(&self) -> Option<(BinOp, u8)> {
        let Some(Token {
            kind: TokenKind::Punct(p),
            ..
        }) = self.peek()
        else {
            return None;
        };
        match *p {
            "||" => Some((BinOp::LogOr, 1)),
            "&&" => Some((BinOp::LogAnd, 2)),
            "|" => Some((BinOp::BitOr, 3)),
            "^" => Some((BinOp::BitXor, 4)),
            "&" => Some((BinOp::BitAnd, 5)),
            "==" => Some((BinOp::Eq, 6)),
            "!=" => Some((BinOp::Ne, 6)),
            "<" => Some((BinOp::Lt, 7)),
            "<=" => Some((BinOp::Le, 7)),
            ">" => Some((BinOp::Gt, 7)),
            ">=" => Some((BinOp::Ge, 7)),
            "<<" => Some((BinOp::Shl, 8)),
            ">>" => Some((BinOp::Shr, 8)),
            "+" => Some((BinOp::Add, 9)),
            "-" => Some((BinOp::Sub, 9)),
            "*" => Some((BinOp::Mul, 10)),
            "/" => Some((BinOp::Div, 10)),
            "%" => Some((BinOp::Rem, 10)),
            _ => None,
        }
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, ClcError> {
        let mut lhs = self.unary()?;
        while let Some((op, prec)) = self.peek_binop() {
            if prec < min_prec {
                break;
            }
            let span = self.here();
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, ClcError> {
        let span = self.here();
        if self.eat_punct("-") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Neg,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat_punct("+") {
            return self.unary();
        }
        if self.eat_punct("!") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::Not,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat_punct("~") {
            let operand = self.unary()?;
            return Ok(Expr::Unary {
                op: UnOp::BitNot,
                operand: Box::new(operand),
                span,
            });
        }
        if self.eat_punct("++") {
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                op: IncDec::Inc,
                prefix: true,
                target: Box::new(target),
                span,
            });
        }
        if self.eat_punct("--") {
            let target = self.unary()?;
            return Ok(Expr::IncDec {
                op: IncDec::Dec,
                prefix: true,
                target: Box::new(target),
                span,
            });
        }
        // Cast: `(` type `)` unary — look ahead for a type name.
        if self.is_punct("(") {
            if let Some(Token {
                kind: TokenKind::Ident(s),
                ..
            }) = self.peek2()
            {
                if type_name_to_scalar(s).is_some() {
                    let span = self.here();
                    self.pos += 1; // (
                    let ty = self.scalar_type()?;
                    self.expect_punct(")")?;
                    let operand = self.unary()?;
                    return Ok(Expr::Cast {
                        ty,
                        operand: Box::new(operand),
                        span,
                    });
                }
            }
        }
        self.postfix()
    }

    fn postfix(&mut self) -> Result<Expr, ClcError> {
        let mut e = self.primary()?;
        loop {
            if self.is_punct("[") {
                let span = self.here();
                self.pos += 1;
                let index = self.expr()?;
                self.expect_punct("]")?;
                e = Expr::Index {
                    base: Box::new(e),
                    index: Box::new(index),
                    span,
                };
                continue;
            }
            if self.is_punct("++") {
                let span = self.here();
                self.pos += 1;
                e = Expr::IncDec {
                    op: IncDec::Inc,
                    prefix: false,
                    target: Box::new(e),
                    span,
                };
                continue;
            }
            if self.is_punct("--") {
                let span = self.here();
                self.pos += 1;
                e = Expr::IncDec {
                    op: IncDec::Dec,
                    prefix: false,
                    target: Box::new(e),
                    span,
                };
                continue;
            }
            break;
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<Expr, ClcError> {
        let span = self.here();
        match self.peek() {
            Some(Token {
                kind:
                    TokenKind::IntLit {
                        value,
                        unsigned,
                        long,
                    },
                ..
            }) => {
                let ty = match (unsigned, long) {
                    (false, false) => {
                        if *value <= i32::MAX as u64 {
                            ScalarType::I32
                        } else {
                            ScalarType::I64
                        }
                    }
                    (true, false) => ScalarType::U32,
                    (false, true) => ScalarType::I64,
                    (true, true) => ScalarType::U64,
                };
                let value = *value;
                self.pos += 1;
                Ok(Expr::IntLit { value, ty, span })
            }
            Some(Token {
                kind: TokenKind::FloatLit { value, single },
                ..
            }) => {
                let (value, single) = (*value, *single);
                self.pos += 1;
                Ok(Expr::FloatLit {
                    value,
                    single,
                    span,
                })
            }
            Some(Token {
                kind: TokenKind::Punct("("),
                ..
            }) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Some(Token {
                kind: TokenKind::Ident(name),
                ..
            }) => {
                let name = name.clone();
                self.pos += 1;
                if self.is_punct("(") {
                    self.pos += 1;
                    let mut args = Vec::new();
                    if !self.is_punct(")") {
                        loop {
                            args.push(self.expr()?);
                            if !self.eat_punct(",") {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::Call { name, args, span })
                } else {
                    Ok(Expr::Var { name, span })
                }
            }
            _ => Err(self.error("expected expression")),
        }
    }
}

fn type_name_to_scalar(name: &str) -> Option<ScalarType> {
    Some(match name {
        "int" | "char" | "short" => ScalarType::I32,
        "uint" | "uchar" | "ushort" => ScalarType::U32,
        "long" => ScalarType::I64,
        "ulong" | "size_t" => ScalarType::U64,
        "float" => ScalarType::F32,
        "double" => ScalarType::F64,
        "bool" => ScalarType::Bool,
        "unsigned" => ScalarType::U32,
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse_src(src: &str) -> Result<Unit, ClcError> {
        parse(&lex(src).unwrap(), src)
    }

    #[test]
    fn parses_minimal_kernel() {
        let unit = parse_src("__kernel void f() { }").unwrap();
        assert_eq!(unit.kernels.len(), 1);
        assert_eq!(unit.kernels[0].name, "f");
        assert!(unit.kernels[0].params.is_empty());
    }

    #[test]
    fn parses_parameters_with_qualifiers() {
        let unit = parse_src(
            "__kernel void f(__global float* a, __local int* s, const uint n, __constant double* c) {}",
        )
        .unwrap();
        let k = &unit.kernels[0];
        assert_eq!(
            k.params[0].ty,
            ParamType::Pointer(AddressSpace::Global, ScalarType::F32)
        );
        assert_eq!(
            k.params[1].ty,
            ParamType::Pointer(AddressSpace::Local, ScalarType::I32)
        );
        assert_eq!(k.params[2].ty, ParamType::Scalar(ScalarType::U32));
        assert_eq!(
            k.params[3].ty,
            ParamType::Pointer(AddressSpace::Constant, ScalarType::F64)
        );
    }

    #[test]
    fn rejects_space_qualified_scalar_param() {
        assert!(parse_src("__kernel void f(__global int n) {}").is_err());
    }

    #[test]
    fn parses_control_flow() {
        let unit = parse_src(
            r#"__kernel void f(__global int* a) {
                for (int i = 0; i < 10; i++) {
                    if (a[i] > 3) { a[i] = 0; } else a[i] = 1;
                    while (a[i] < 0) a[i] += 2;
                    do { a[i]--; } while (a[i] > 100);
                    if (a[i] == 7) break;
                    if (a[i] == 8) continue;
                }
                return;
            }"#,
        )
        .unwrap();
        assert_eq!(unit.kernels[0].body.stmts.len(), 2);
    }

    #[test]
    fn parses_barrier_as_statement() {
        let unit =
            parse_src("__kernel void f() { barrier(CLK_LOCAL_MEM_FENCE | CLK_GLOBAL_MEM_FENCE); }")
                .unwrap();
        assert!(matches!(unit.kernels[0].body.stmts[0], Stmt::Barrier(_)));
    }

    #[test]
    fn parses_local_array_decl() {
        let unit = parse_src("__kernel void f() { __local float tile[16][16]; }").unwrap();
        match &unit.kernels[0].body.stmts[0] {
            Stmt::Decl(d) => {
                assert_eq!(d.space, AddressSpace::Local);
                assert_eq!(d.array_dims, vec![16, 16]);
            }
            other => panic!("expected decl, got {other:?}"),
        }
    }

    #[test]
    fn rejects_private_array() {
        assert!(parse_src("__kernel void f() { int a[4]; }").is_err());
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let unit = parse_src("__kernel void f(__global int* a) { a[0] = 1 + 2 * 3; }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &unit.kernels[0].body.stmts[0] else {
            panic!("expected assignment");
        };
        let Expr::Binary {
            op: BinOp::Add,
            rhs,
            ..
        } = value.as_ref()
        else {
            panic!("expected + at top");
        };
        assert!(matches!(rhs.as_ref(), Expr::Binary { op: BinOp::Mul, .. }));
    }

    #[test]
    fn parses_casts_and_calls() {
        let unit = parse_src(
            "__kernel void f(__global float* a) { a[0] = (float)get_global_id(0) + sqrt(a[1]); }",
        )
        .unwrap();
        assert_eq!(unit.kernels[0].body.stmts.len(), 1);
    }

    #[test]
    fn parses_ternary_right_associative() {
        let unit =
            parse_src("__kernel void f(__global int* a) { a[0] = a[1] ? 1 : a[2] ? 2 : 3; }")
                .unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &unit.kernels[0].body.stmts[0] else {
            panic!("expected assignment");
        };
        let Expr::Ternary { otherwise, .. } = value.as_ref() else {
            panic!("expected ternary");
        };
        assert!(matches!(otherwise.as_ref(), Expr::Ternary { .. }));
    }

    #[test]
    fn parenthesized_cast_disambiguates_from_grouping() {
        let unit = parse_src("__kernel void f(__global int* a) { a[0] = (a[1]); }").unwrap();
        let Stmt::Expr(Expr::Assign { value, .. }) = &unit.kernels[0].body.stmts[0] else {
            panic!("expected assignment");
        };
        assert!(matches!(value.as_ref(), Expr::Index { .. }));
    }

    #[test]
    fn error_carries_position() {
        let err = parse_src("__kernel void f( { }").unwrap_err();
        assert!(err.build_log().contains("1:"));
    }

    #[test]
    fn compound_assignment_ops() {
        for op in ["+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="] {
            let src = format!("__kernel void f(__global int* a) {{ a[0] {op} 2; }}");
            assert!(parse_src(&src).is_ok(), "failed to parse {op}");
        }
    }

    #[test]
    fn multiple_kernels_in_unit() {
        let unit = parse_src("__kernel void a() {} kernel void b() {}").unwrap();
        assert_eq!(unit.kernels.len(), 2);
        assert_eq!(unit.kernels[1].name, "b");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::lexer::lex;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn arbitrary_text_never_panics_the_pipeline(src in "[ -~\\n]{0,200}") {
            // Lexing may fail, parsing may fail — but no panics.
            if let Ok(tokens) = lex(&src) {
                let _ = parse(&tokens, &src);
            }
        }

        #[test]
        fn token_soup_never_panics_the_parser(
            words in proptest::collection::vec(
                prop_oneof![
                    Just("__kernel".to_string()),
                    Just("void".to_string()),
                    Just("int".to_string()),
                    Just("float".to_string()),
                    Just("if".to_string()),
                    Just("for".to_string()),
                    Just("barrier".to_string()),
                    Just("(".to_string()),
                    Just(")".to_string()),
                    Just("{".to_string()),
                    Just("}".to_string()),
                    Just(";".to_string()),
                    Just("=".to_string()),
                    Just("+".to_string()),
                    Just("*".to_string()),
                    Just("x".to_string()),
                    Just("42".to_string()),
                    Just("1.5f".to_string()),
                ],
                0..64,
            )
        ) {
            let src = words.join(" ");
            if let Ok(tokens) = lex(&src) {
                let _ = parse(&tokens, &src);
            }
        }
    }
}
