//! Type checking and lowering to bytecode.
//!
//! Lowering is single-pass per kernel: expressions are first *inferred*
//! (a pure type computation mirroring C's usual arithmetic conversions)
//! and then *compiled*, inserting explicit [`Instr::Cast`]s so the VM never
//! has to coerce implicitly.

use std::collections::HashMap;

use crate::ast::{self, BinOp, Block, DeclStmt, Expr, IncDec, KernelDecl, Stmt, UnOp, Unit};
use crate::bytecode::{
    BinKind, CmpKind, CompiledKernel, CompiledProgram, Geom, Instr, Math1, Math2,
};
use crate::diag::{ClcError, Span, Stage};
use crate::types::{AddressSpace, ScalarType, Type};

/// Lowers a parsed [`Unit`] to a [`CompiledProgram`].
///
/// # Errors
///
/// Returns the first type error encountered, with source position.
pub fn lower(unit: &Unit, source: &str) -> Result<CompiledProgram, ClcError> {
    let mut kernels = Vec::new();
    let mut seen: HashMap<&str, ()> = HashMap::new();
    for k in &unit.kernels {
        if seen.insert(&k.name, ()).is_some() {
            return Err(ClcError::at(
                Stage::Sema,
                k.span,
                source,
                format!("duplicate kernel name `{}`", k.name),
            ));
        }
        kernels.push(lower_kernel(k, source)?);
    }
    Ok(CompiledProgram::from_kernels(kernels))
}

#[derive(Debug, Clone)]
enum Binding {
    /// A scalar or pointer variable stored in a VM slot.
    Slot { slot: u16, ty: Type },
    /// A statically-declared `__local` array.
    LocalArray {
        byte_offset: u32,
        elem: ScalarType,
        dims: Vec<u64>,
    },
}

struct LoopFrame {
    /// Jump indices to patch to the loop exit.
    breaks: Vec<usize>,
    /// Jump indices to patch to the continue target.
    continues: Vec<usize>,
}

struct Cx<'a> {
    source: &'a str,
    code: Vec<Instr>,
    /// Source span each emitted instruction was lowered from (parallel to
    /// `code`); `cur_span` is the span attributed to the next emission.
    spans: Vec<Span>,
    cur_span: Span,
    /// `(pc, span)` of every emitted `Barrier`.
    barriers: Vec<(u32, Span)>,
    /// Every statically-declared `__local` array.
    local_arrays: Vec<crate::bytecode::LocalArrayInfo>,
    scopes: Vec<HashMap<String, Binding>>,
    n_slots: u16,
    local_bytes: u32,
    loops: Vec<LoopFrame>,
    uses_barrier: bool,
}

impl<'a> Cx<'a> {
    fn err(&self, span: Span, msg: impl Into<String>) -> ClcError {
        ClcError::at(Stage::Sema, span, self.source, msg)
    }

    fn lookup(&self, name: &str) -> Option<&Binding> {
        self.scopes.iter().rev().find_map(|s| s.get(name))
    }

    fn declare(&mut self, name: &str, binding: Binding, span: Span) -> Result<(), ClcError> {
        let scope = self.scopes.last_mut().expect("scope stack never empty");
        if scope.contains_key(name) {
            return Err(ClcError::at(
                Stage::Sema,
                span,
                self.source,
                format!("`{name}` is already declared in this scope"),
            ));
        }
        scope.insert(name.to_string(), binding);
        Ok(())
    }

    fn alloc_slot(&mut self, span: Span) -> Result<u16, ClcError> {
        if self.n_slots == u16::MAX {
            return Err(self.err(span, "too many local variables"));
        }
        let s = self.n_slots;
        self.n_slots += 1;
        Ok(s)
    }

    fn emit(&mut self, i: Instr) -> usize {
        self.spans.push(self.cur_span);
        self.code.push(i);
        self.code.len() - 1
    }

    fn patch_jump(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target,
            other => panic!("patch_jump on non-jump {other:?}"),
        }
    }

    fn patch_jump_to(&mut self, at: usize, target: usize) {
        match &mut self.code[at] {
            Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) => *t = target as u32,
            other => panic!("patch_jump_to on non-jump {other:?}"),
        }
    }
}

fn lower_kernel(k: &KernelDecl, source: &str) -> Result<CompiledKernel, ClcError> {
    let mut cx = Cx {
        source,
        code: Vec::new(),
        spans: Vec::new(),
        cur_span: k.span,
        barriers: Vec::new(),
        local_arrays: Vec::new(),
        scopes: vec![HashMap::new()],
        n_slots: 0,
        local_bytes: 0,
        loops: Vec::new(),
        uses_barrier: false,
    };
    let mut params = Vec::new();
    for p in &k.params {
        let ty = match p.ty {
            ast::ParamType::Scalar(s) => Type::Scalar(s),
            ast::ParamType::Pointer(a, s) => Type::Pointer(a, s),
        };
        let slot = cx.alloc_slot(p.span)?;
        cx.declare(&p.name, Binding::Slot { slot, ty }, p.span)?;
        params.push(p.ty);
    }
    compile_block(&mut cx, &k.body)?;
    cx.emit(Instr::Return);
    let barrier_sites = cx
        .barriers
        .iter()
        .map(|&(pc, span)| {
            let (line, col) = span.line_col(source);
            crate::bytecode::BarrierSite {
                pc,
                line: line as u32,
                col: col as u32,
            }
        })
        .collect();
    Ok(CompiledKernel {
        name: k.name.clone(),
        params,
        code: cx.code,
        n_slots: cx.n_slots,
        static_local_bytes: cx.local_bytes,
        uses_barrier: cx.uses_barrier,
        spans: cx.spans,
        barrier_sites,
        local_arrays: cx.local_arrays,
        report: crate::analysis::KernelReport::default(),
    })
}

fn compile_block(cx: &mut Cx, b: &Block) -> Result<(), ClcError> {
    cx.scopes.push(HashMap::new());
    for s in &b.stmts {
        compile_stmt(cx, s)?;
    }
    cx.scopes.pop();
    Ok(())
}

fn compile_stmt(cx: &mut Cx, s: &Stmt) -> Result<(), ClcError> {
    match s {
        Stmt::Decl(d) => {
            cx.cur_span = d.span;
            compile_decl(cx, d)
        }
        Stmt::Expr(e) => {
            cx.cur_span = e.span();
            compile_effect(cx, e)
        }
        Stmt::Block(b) => compile_block(cx, b),
        Stmt::If {
            cond,
            then,
            otherwise,
        } => {
            cx.cur_span = cond.span();
            compile_condition(cx, cond)?;
            let jf = cx.emit(Instr::JumpIfFalse(0));
            compile_block(cx, then)?;
            if let Some(other) = otherwise {
                let jend = cx.emit(Instr::Jump(0));
                cx.patch_jump(jf);
                compile_block(cx, other)?;
                cx.patch_jump(jend);
            } else {
                cx.patch_jump(jf);
            }
            Ok(())
        }
        Stmt::While { cond, body } => {
            let top = cx.code.len();
            cx.cur_span = cond.span();
            compile_condition(cx, cond)?;
            let jf = cx.emit(Instr::JumpIfFalse(0));
            cx.loops.push(LoopFrame {
                breaks: vec![],
                continues: vec![],
            });
            compile_block(cx, body)?;
            cx.emit(Instr::Jump(top as u32));
            cx.patch_jump(jf);
            let frame = cx.loops.pop().expect("loop frame");
            for b in frame.breaks {
                cx.patch_jump(b);
            }
            for c in frame.continues {
                cx.patch_jump_to(c, top);
            }
            Ok(())
        }
        Stmt::DoWhile { body, cond } => {
            let top = cx.code.len();
            cx.loops.push(LoopFrame {
                breaks: vec![],
                continues: vec![],
            });
            compile_block(cx, body)?;
            let cond_at = cx.code.len();
            cx.cur_span = cond.span();
            compile_condition(cx, cond)?;
            cx.emit(Instr::JumpIfTrue(top as u32));
            let frame = cx.loops.pop().expect("loop frame");
            for b in frame.breaks {
                cx.patch_jump(b);
            }
            for c in frame.continues {
                cx.patch_jump_to(c, cond_at);
            }
            Ok(())
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        } => {
            cx.scopes.push(HashMap::new());
            if let Some(init) = init {
                compile_stmt(cx, init)?;
            }
            let top = cx.code.len();
            let jf = match cond {
                Some(c) => {
                    cx.cur_span = c.span();
                    compile_condition(cx, c)?;
                    Some(cx.emit(Instr::JumpIfFalse(0)))
                }
                None => None,
            };
            cx.loops.push(LoopFrame {
                breaks: vec![],
                continues: vec![],
            });
            compile_block(cx, body)?;
            let step_at = cx.code.len();
            if let Some(step) = step {
                compile_effect(cx, step)?;
            }
            cx.emit(Instr::Jump(top as u32));
            if let Some(jf) = jf {
                cx.patch_jump(jf);
            }
            let frame = cx.loops.pop().expect("loop frame");
            for b in frame.breaks {
                cx.patch_jump(b);
            }
            for c in frame.continues {
                cx.patch_jump_to(c, step_at);
            }
            cx.scopes.pop();
            Ok(())
        }
        Stmt::Break(span) => {
            cx.cur_span = *span;
            let j = cx.emit(Instr::Jump(0));
            match cx.loops.last_mut() {
                Some(f) => {
                    f.breaks.push(j);
                    Ok(())
                }
                None => Err(cx.err(*span, "`break` outside of a loop")),
            }
        }
        Stmt::Continue(span) => {
            cx.cur_span = *span;
            let j = cx.emit(Instr::Jump(0));
            match cx.loops.last_mut() {
                Some(f) => {
                    f.continues.push(j);
                    Ok(())
                }
                None => Err(cx.err(*span, "`continue` outside of a loop")),
            }
        }
        Stmt::Return(span) => {
            cx.cur_span = *span;
            cx.emit(Instr::Return);
            Ok(())
        }
        Stmt::Barrier(span) => {
            cx.uses_barrier = true;
            cx.cur_span = *span;
            let pc = cx.emit(Instr::Barrier);
            cx.barriers.push((pc as u32, *span));
            Ok(())
        }
    }
}

fn compile_decl(cx: &mut Cx, d: &DeclStmt) -> Result<(), ClcError> {
    if !d.array_dims.is_empty() {
        // Statically-sized __local array.
        if d.array_dims.len() > 2 {
            return Err(cx.err(d.span, "local arrays support at most two dimensions"));
        }
        if d.space != AddressSpace::Local {
            return Err(cx.err(d.span, "arrays must be `__local`"));
        }
        let elems: u64 = d.array_dims.iter().product();
        let bytes = elems
            .checked_mul(d.ty.size_bytes() as u64)
            .filter(|&b| b <= 16 * 1024 * 1024)
            .ok_or_else(|| cx.err(d.span, "local array too large"))?;
        // 8-byte align each array.
        let offset = (cx.local_bytes + 7) & !7;
        cx.local_bytes = offset + bytes as u32;
        cx.local_arrays.push(crate::bytecode::LocalArrayInfo {
            name: d.name.clone(),
            byte_offset: offset,
            elem: d.ty,
            dims: d.array_dims.clone(),
        });
        cx.declare(
            &d.name,
            Binding::LocalArray {
                byte_offset: offset,
                elem: d.ty,
                dims: d.array_dims.clone(),
            },
            d.span,
        )?;
        if d.init.is_some() {
            return Err(cx.err(d.span, "array initializers are not supported"));
        }
        return Ok(());
    }
    let slot = cx.alloc_slot(d.span)?;
    match &d.init {
        Some(init) => {
            let ty = compile_rvalue(cx, init)?;
            let from = ty
                .as_scalar()
                .ok_or_else(|| cx.err(init.span(), "cannot initialize a scalar from a pointer"))?;
            coerce(cx, from, d.ty);
        }
        None => {
            // Deterministic zero-init.
            push_zero(cx, d.ty);
        }
    }
    cx.emit(Instr::StoreLocal(slot));
    cx.declare(
        &d.name,
        Binding::Slot {
            slot,
            ty: Type::Scalar(d.ty),
        },
        d.span,
    )
}

fn push_zero(cx: &mut Cx, ty: ScalarType) {
    match ty {
        ScalarType::Bool => {
            cx.emit(Instr::PushBool(false));
        }
        t if t.is_float() => {
            cx.emit(Instr::PushFloat(0.0, t));
        }
        t => {
            cx.emit(Instr::PushInt(0, t));
        }
    }
}

/// Emits a cast if `from != to`.
fn coerce(cx: &mut Cx, from: ScalarType, to: ScalarType) {
    if from != to {
        cx.emit(Instr::Cast { from, to });
    }
}

/// Compiles `e` for its side effects only (statement position).
fn compile_effect(cx: &mut Cx, e: &Expr) -> Result<(), ClcError> {
    match e {
        Expr::Assign {
            op,
            target,
            value,
            span,
        } => compile_assign(cx, op.as_ref().copied(), target, value, *span),
        Expr::IncDec {
            op, target, span, ..
        } => {
            // Value unused: compile as `target (op)= 1`.
            let one = Expr::IntLit {
                value: 1,
                ty: ScalarType::I32,
                span: *span,
            };
            let bin = match op {
                IncDec::Inc => BinOp::Add,
                IncDec::Dec => BinOp::Sub,
            };
            compile_assign(cx, Some(bin), target, &one, *span)
        }
        _ => {
            let ty = compile_rvalue(cx, e)?;
            if ty != Type::Void {
                cx.emit(Instr::Pop);
            }
            Ok(())
        }
    }
}

fn compile_assign(
    cx: &mut Cx,
    op: Option<BinOp>,
    target: &Expr,
    value: &Expr,
    span: Span,
) -> Result<(), ClcError> {
    match target {
        Expr::Var { name, span: vspan } => {
            let (slot, ty) = match cx.lookup(name) {
                Some(Binding::Slot { slot, ty }) => (*slot, *ty),
                Some(Binding::LocalArray { .. }) => {
                    return Err(cx.err(*vspan, format!("cannot assign to array `{name}`")));
                }
                None => return Err(cx.err(*vspan, format!("unknown variable `{name}`"))),
            };
            let target_scalar = match ty {
                Type::Scalar(s) => s,
                Type::Pointer(..) => {
                    // Pointer reassignment (e.g. p = p + n) — only plain `=`
                    // with a pointer-typed RHS of the same element type.
                    if op.is_some() {
                        return Err(cx.err(span, "compound assignment to a pointer"));
                    }
                    let vt = compile_rvalue(cx, value)?;
                    if vt != ty {
                        return Err(cx.err(span, format!("cannot assign `{vt}` to pointer `{ty}`")));
                    }
                    cx.emit(Instr::StoreLocal(slot));
                    return Ok(());
                }
                Type::Void => unreachable!("void variable"),
            };
            match op {
                None => {
                    let vt = scalar_rvalue(cx, value)?;
                    coerce(cx, vt, target_scalar);
                }
                Some(bin) => {
                    cx.emit(Instr::LoadLocal(slot));
                    compile_binop_with_loaded_lhs(cx, bin, target_scalar, value, span)?;
                    // Result type of compound assignment folds back into the
                    // target type.
                    let rt = binop_result(cx, bin, target_scalar, value, span)?;
                    coerce(cx, rt, target_scalar);
                }
            }
            cx.emit(Instr::StoreLocal(slot));
            Ok(())
        }
        Expr::Index { .. } => {
            let elem = compile_place(cx, target)?;
            match op {
                None => {
                    let vt = scalar_rvalue(cx, value)?;
                    coerce(cx, vt, elem);
                }
                Some(bin) => {
                    cx.emit(Instr::Dup);
                    cx.emit(Instr::LoadMem(elem));
                    compile_binop_with_loaded_lhs(cx, bin, elem, value, span)?;
                    let rt = binop_result(cx, bin, elem, value, span)?;
                    coerce(cx, rt, elem);
                }
            }
            cx.cur_span = target.span();
            cx.emit(Instr::StoreMem(elem));
            Ok(())
        }
        other => Err(cx.err(other.span(), "invalid assignment target")),
    }
}

/// With the lhs value (of type `lt`) already on the stack, compiles
/// `lhs op value`, leaving the result (of `binop_result` type).
fn compile_binop_with_loaded_lhs(
    cx: &mut Cx,
    op: BinOp,
    lt: ScalarType,
    value: &Expr,
    span: Span,
) -> Result<(), ClcError> {
    let rt_expr = infer(cx, value)?;
    let rt = rt_expr
        .as_scalar()
        .ok_or_else(|| cx.err(value.span(), "pointer operand in arithmetic"))?;
    let (unified, kind) = arith_parts(cx, op, lt, rt, span)?;
    coerce(cx, lt, unified);
    let vt = scalar_rvalue(cx, value)?;
    coerce(cx, vt, unified);
    cx.emit(Instr::Bin(kind, unified));
    Ok(())
}

fn binop_result(
    cx: &mut Cx,
    op: BinOp,
    lt: ScalarType,
    value: &Expr,
    span: Span,
) -> Result<ScalarType, ClcError> {
    let rt_expr = infer(cx, value)?;
    let rt = rt_expr
        .as_scalar()
        .ok_or_else(|| cx.err(value.span(), "pointer operand in arithmetic"))?;
    let (unified, _) = arith_parts(cx, op, lt, rt, span)?;
    Ok(unified)
}

fn arith_parts(
    cx: &Cx,
    op: BinOp,
    lt: ScalarType,
    rt: ScalarType,
    span: Span,
) -> Result<(ScalarType, BinKind), ClcError> {
    let kind = match op {
        BinOp::Add => BinKind::Add,
        BinOp::Sub => BinKind::Sub,
        BinOp::Mul => BinKind::Mul,
        BinOp::Div => BinKind::Div,
        BinOp::Rem => BinKind::Rem,
        BinOp::Shl => BinKind::Shl,
        BinOp::Shr => BinKind::Shr,
        BinOp::BitAnd => BinKind::And,
        BinOp::BitOr => BinKind::Or,
        BinOp::BitXor => BinKind::Xor,
        _ => return Err(cx.err(span, "comparison used where arithmetic expected")),
    };
    let unified = lt.unify(rt);
    let int_only = matches!(
        kind,
        BinKind::Shl | BinKind::Shr | BinKind::And | BinKind::Or | BinKind::Xor
    );
    if int_only && !unified.is_integer() {
        return Err(cx.err(
            span,
            format!("operator requires integer operands, got `{unified}`"),
        ));
    }
    if matches!(kind, BinKind::Rem) && unified.is_float() {
        return Err(cx.err(span, "`%` requires integer operands (use fmod)"));
    }
    Ok((unified, kind))
}

/// Compiles `e` as a boolean condition (C truthiness).
fn compile_condition(cx: &mut Cx, e: &Expr) -> Result<(), ClcError> {
    let ty = compile_rvalue(cx, e)?;
    match ty {
        Type::Scalar(ScalarType::Bool) => Ok(()),
        Type::Scalar(s) if s.is_integer() => {
            cx.emit(Instr::PushInt(0, s));
            cx.emit(Instr::Cmp(CmpKind::Ne, s));
            Ok(())
        }
        Type::Scalar(s) if s.is_float() => {
            cx.emit(Instr::PushFloat(0.0, s));
            cx.emit(Instr::Cmp(CmpKind::Ne, s));
            Ok(())
        }
        other => Err(cx.err(e.span(), format!("`{other}` is not a valid condition"))),
    }
}

/// Compiles `e` as a scalar rvalue, returning its scalar type.
fn scalar_rvalue(cx: &mut Cx, e: &Expr) -> Result<ScalarType, ClcError> {
    let ty = compile_rvalue(cx, e)?;
    ty.as_scalar()
        .ok_or_else(|| cx.err(e.span(), format!("expected a scalar value, got `{ty}`")))
}

/// Pure type inference mirroring `compile_rvalue` (no code emitted).
fn infer(cx: &Cx, e: &Expr) -> Result<Type, ClcError> {
    match e {
        Expr::IntLit { ty, .. } => Ok(Type::Scalar(*ty)),
        Expr::FloatLit { single, .. } => Ok(Type::Scalar(if *single {
            ScalarType::F32
        } else {
            ScalarType::F64
        })),
        Expr::Var { name, span } => match cx.lookup(name) {
            Some(Binding::Slot { ty, .. }) => Ok(*ty),
            Some(Binding::LocalArray { elem, .. }) => Ok(Type::Pointer(AddressSpace::Local, *elem)),
            None => Err(cx.err(*span, format!("unknown variable `{name}`"))),
        },
        Expr::Index { base, span, .. } => {
            let bt = infer(cx, base)?;
            match bt {
                Type::Pointer(space, elem) => {
                    // Indexing a row pointer of a 2-D array yields the
                    // element; indexing the array name with one index on a
                    // 2-D array yields a row pointer.
                    if let Expr::Var { name, .. } = base.as_ref() {
                        if let Some(Binding::LocalArray { dims, elem, .. }) = cx.lookup(name) {
                            if dims.len() == 2 {
                                return Ok(Type::Pointer(AddressSpace::Local, *elem));
                            }
                        }
                    }
                    let _ = space;
                    Ok(Type::Scalar(elem))
                }
                other => Err(cx.err(*span, format!("cannot index into `{other}`"))),
            }
        }
        Expr::Binary { op, lhs, rhs, span } => {
            let lt = infer(cx, lhs)?;
            let rt = infer(cx, rhs)?;
            match op {
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
                    Ok(Type::Scalar(ScalarType::Bool))
                }
                BinOp::LogAnd | BinOp::LogOr => Ok(Type::Scalar(ScalarType::Bool)),
                BinOp::Add | BinOp::Sub if matches!(lt, Type::Pointer(..)) => Ok(lt),
                _ => {
                    let ls = lt
                        .as_scalar()
                        .ok_or_else(|| cx.err(*span, "pointer operand in arithmetic"))?;
                    let rs = rt
                        .as_scalar()
                        .ok_or_else(|| cx.err(*span, "pointer operand in arithmetic"))?;
                    Ok(Type::Scalar(ls.unify(rs)))
                }
            }
        }
        Expr::Unary { op, operand, span } => match op {
            UnOp::Not => Ok(Type::Scalar(ScalarType::Bool)),
            UnOp::Neg | UnOp::BitNot => {
                let t = infer(cx, operand)?;
                let s = t
                    .as_scalar()
                    .ok_or_else(|| cx.err(*span, "pointer operand in arithmetic"))?;
                // Negating bool promotes to int, like C.
                Ok(Type::Scalar(if s == ScalarType::Bool {
                    ScalarType::I32
                } else {
                    s
                }))
            }
        },
        Expr::Ternary {
            then,
            otherwise,
            span,
            ..
        } => {
            let tt = infer(cx, then)?;
            let ot = infer(cx, otherwise)?;
            if tt == ot {
                return Ok(tt);
            }
            let ts = tt
                .as_scalar()
                .ok_or_else(|| cx.err(*span, "ternary arms must both be scalars"))?;
            let os = ot
                .as_scalar()
                .ok_or_else(|| cx.err(*span, "ternary arms must both be scalars"))?;
            Ok(Type::Scalar(ts.unify(os)))
        }
        Expr::Cast { ty, .. } => Ok(Type::Scalar(*ty)),
        Expr::Assign { span, .. } => {
            Err(cx.err(*span, "assignment cannot be used as a value in this subset"))
        }
        Expr::IncDec { target, span, .. } => match target.as_ref() {
            Expr::Var { name, .. } => match cx.lookup(name) {
                Some(Binding::Slot {
                    ty: Type::Scalar(s),
                    ..
                }) => Ok(Type::Scalar(*s)),
                _ => Err(cx.err(*span, "`++`/`--` needs a scalar variable")),
            },
            _ => Err(cx.err(*span, "`++`/`--` used as a value requires a plain variable")),
        },
        Expr::Call { name, args, span } => infer_call(cx, name, args, *span),
    }
}

fn infer_call(cx: &Cx, name: &str, args: &[Expr], span: Span) -> Result<Type, ClcError> {
    match name {
        "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
        | "get_local_size" | "get_num_groups" | "get_work_dim" => Ok(Type::Scalar(ScalarType::U64)),
        "sqrt" | "rsqrt" | "fabs" | "exp" | "log" | "log2" | "sin" | "cos" | "tan" | "floor"
        | "ceil" => {
            let t = float_arg_type(cx, args, span)?;
            Ok(Type::Scalar(t))
        }
        "pow" | "fmin" | "fmax" | "fmod" => {
            let t = float_arg_type(cx, args, span)?;
            Ok(Type::Scalar(t))
        }
        "mad" | "fma" | "clamp" => {
            let t = float_arg_type(cx, args, span)?;
            Ok(Type::Scalar(t))
        }
        "abs" => {
            let t = first_scalar(cx, args, span)?;
            Ok(Type::Scalar(t))
        }
        "min" | "max" => {
            let a = nth_scalar(cx, args, 0, span)?;
            let b = nth_scalar(cx, args, 1, span)?;
            Ok(Type::Scalar(a.unify(b)))
        }
        _ => Err(cx.err(span, format!("unknown function `{name}`"))),
    }
}

fn float_arg_type(cx: &Cx, args: &[Expr], span: Span) -> Result<ScalarType, ClcError> {
    let mut any_f64 = false;
    for a in args {
        if let Type::Scalar(s) = infer(cx, a)? {
            if s == ScalarType::F64 {
                any_f64 = true;
            }
        } else {
            return Err(cx.err(span, "math builtin requires scalar arguments"));
        }
    }
    Ok(if any_f64 {
        ScalarType::F64
    } else {
        ScalarType::F32
    })
}

fn first_scalar(cx: &Cx, args: &[Expr], span: Span) -> Result<ScalarType, ClcError> {
    nth_scalar(cx, args, 0, span)
}

fn nth_scalar(cx: &Cx, args: &[Expr], n: usize, span: Span) -> Result<ScalarType, ClcError> {
    let a = args
        .get(n)
        .ok_or_else(|| cx.err(span, "missing argument"))?;
    infer(cx, a)?
        .as_scalar()
        .ok_or_else(|| cx.err(a.span(), "expected a scalar argument"))
}

/// Compiles an rvalue, leaving the value on the stack.
fn compile_rvalue(cx: &mut Cx, e: &Expr) -> Result<Type, ClcError> {
    cx.cur_span = e.span();
    match e {
        Expr::IntLit { value, ty, .. } => {
            cx.emit(Instr::PushInt(*value as i64, *ty));
            Ok(Type::Scalar(*ty))
        }
        Expr::FloatLit { value, single, .. } => {
            let ty = if *single {
                ScalarType::F32
            } else {
                ScalarType::F64
            };
            cx.emit(Instr::PushFloat(*value, ty));
            Ok(Type::Scalar(ty))
        }
        Expr::Var { name, span } => match cx.lookup(name).cloned() {
            Some(Binding::Slot { slot, ty }) => {
                cx.emit(Instr::LoadLocal(slot));
                Ok(ty)
            }
            Some(Binding::LocalArray {
                byte_offset, elem, ..
            }) => {
                // Array decays to a pointer to its first element.
                cx.emit(Instr::PushLocalPtr { byte_offset, elem });
                Ok(Type::Pointer(AddressSpace::Local, elem))
            }
            None => Err(cx.err(*span, format!("unknown variable `{name}`"))),
        },
        Expr::Index { base, index, span } => {
            // Row access of a 2-D local array yields a pointer, not a load.
            if let Expr::Var { name, .. } = base.as_ref() {
                if let Some(Binding::LocalArray {
                    byte_offset,
                    elem,
                    dims,
                }) = cx.lookup(name).cloned()
                {
                    if dims.len() == 2 {
                        cx.emit(Instr::PushLocalPtr { byte_offset, elem });
                        let it = scalar_rvalue(cx, index)?;
                        require_integer(cx, it, index.span())?;
                        coerce(cx, it, ScalarType::I64);
                        cx.emit(Instr::PushInt(dims[1] as i64, ScalarType::I64));
                        cx.emit(Instr::Bin(BinKind::Mul, ScalarType::I64));
                        cx.emit(Instr::PtrAdd);
                        return Ok(Type::Pointer(AddressSpace::Local, elem));
                    }
                }
            }
            let elem = compile_place_inner(cx, base, index, *span)?;
            cx.cur_span = *span;
            cx.emit(Instr::LoadMem(elem));
            Ok(Type::Scalar(elem))
        }
        Expr::Binary { op, lhs, rhs, span } => compile_binary(cx, *op, lhs, rhs, *span),
        Expr::Unary { op, operand, span } => match op {
            UnOp::Neg => {
                let t = scalar_rvalue(cx, operand)?;
                let t = if t == ScalarType::Bool {
                    coerce(cx, t, ScalarType::I32);
                    ScalarType::I32
                } else {
                    t
                };
                cx.emit(Instr::Neg(t));
                Ok(Type::Scalar(t))
            }
            UnOp::Not => {
                compile_condition(cx, operand)?;
                cx.emit(Instr::NotBool);
                Ok(Type::Scalar(ScalarType::Bool))
            }
            UnOp::BitNot => {
                let t = scalar_rvalue(cx, operand)?;
                if !t.is_integer() {
                    return Err(cx.err(*span, format!("`~` requires an integer, got `{t}`")));
                }
                cx.emit(Instr::BitNot(t));
                Ok(Type::Scalar(t))
            }
        },
        Expr::Ternary {
            cond,
            then,
            otherwise,
            span,
        } => {
            let out = infer(cx, e)?;
            let out_s = out
                .as_scalar()
                .ok_or_else(|| cx.err(*span, "ternary arms must both be scalars"))?;
            compile_condition(cx, cond)?;
            let jf = cx.emit(Instr::JumpIfFalse(0));
            let tt = scalar_rvalue(cx, then)?;
            coerce(cx, tt, out_s);
            let jend = cx.emit(Instr::Jump(0));
            cx.patch_jump(jf);
            let ot = scalar_rvalue(cx, otherwise)?;
            coerce(cx, ot, out_s);
            cx.patch_jump(jend);
            Ok(out)
        }
        Expr::Cast { ty, operand, .. } => {
            let from = scalar_rvalue(cx, operand)?;
            coerce(cx, from, *ty);
            Ok(Type::Scalar(*ty))
        }
        Expr::Assign { span, .. } => {
            Err(cx.err(*span, "assignment cannot be used as a value in this subset"))
        }
        Expr::IncDec {
            op,
            prefix,
            target,
            span,
        } => {
            let Expr::Var { name, span: vspan } = target.as_ref() else {
                return Err(cx.err(*span, "`++`/`--` used as a value requires a plain variable"));
            };
            let (slot, s) = match cx.lookup(name) {
                Some(Binding::Slot {
                    slot,
                    ty: Type::Scalar(s),
                }) => (*slot, *s),
                Some(_) => return Err(cx.err(*vspan, "`++`/`--` needs a scalar variable")),
                None => return Err(cx.err(*vspan, format!("unknown variable `{name}`"))),
            };
            let kind = match op {
                IncDec::Inc => BinKind::Add,
                IncDec::Dec => BinKind::Sub,
            };
            cx.emit(Instr::LoadLocal(slot));
            if *prefix {
                push_one(cx, s);
                cx.emit(Instr::Bin(kind, s));
                cx.emit(Instr::Dup);
                cx.emit(Instr::StoreLocal(slot));
            } else {
                cx.emit(Instr::Dup);
                push_one(cx, s);
                cx.emit(Instr::Bin(kind, s));
                cx.emit(Instr::StoreLocal(slot));
            }
            Ok(Type::Scalar(s))
        }
        Expr::Call { name, args, span } => compile_call(cx, name, args, *span),
    }
}

fn push_one(cx: &mut Cx, ty: ScalarType) {
    if ty.is_float() {
        cx.emit(Instr::PushFloat(1.0, ty));
    } else {
        cx.emit(Instr::PushInt(1, ty));
    }
}

fn require_integer(cx: &Cx, t: ScalarType, span: Span) -> Result<(), ClcError> {
    if t.is_integer() || t == ScalarType::Bool {
        Ok(())
    } else {
        Err(cx.err(span, format!("index must be an integer, got `{t}`")))
    }
}

/// Compiles the address of `target` (an `Index` expression) onto the
/// stack, returning the element type.
fn compile_place(cx: &mut Cx, target: &Expr) -> Result<ScalarType, ClcError> {
    let Expr::Index { base, index, span } = target else {
        unreachable!("compile_place only called on Index expressions");
    };
    compile_place_inner(cx, base, index, *span)
}

fn compile_place_inner(
    cx: &mut Cx,
    base: &Expr,
    index: &Expr,
    span: Span,
) -> Result<ScalarType, ClcError> {
    let bt = compile_rvalue(cx, base)?;
    let (_, elem) = bt
        .as_pointer()
        .ok_or_else(|| cx.err(span, format!("cannot index into `{bt}`")))?;
    let it = scalar_rvalue(cx, index)?;
    require_integer(cx, it, index.span())?;
    cx.emit(Instr::PtrAdd);
    Ok(elem)
}

fn compile_binary(
    cx: &mut Cx,
    op: BinOp,
    lhs: &Expr,
    rhs: &Expr,
    span: Span,
) -> Result<Type, ClcError> {
    match op {
        BinOp::LogAnd => {
            compile_condition(cx, lhs)?;
            let jf = cx.emit(Instr::JumpIfFalse(0));
            compile_condition(cx, rhs)?;
            let jend = cx.emit(Instr::Jump(0));
            cx.patch_jump(jf);
            cx.emit(Instr::PushBool(false));
            cx.patch_jump(jend);
            Ok(Type::Scalar(ScalarType::Bool))
        }
        BinOp::LogOr => {
            compile_condition(cx, lhs)?;
            let jt = cx.emit(Instr::JumpIfTrue(0));
            compile_condition(cx, rhs)?;
            let jend = cx.emit(Instr::Jump(0));
            cx.patch_jump(jt);
            cx.emit(Instr::PushBool(true));
            cx.patch_jump(jend);
            Ok(Type::Scalar(ScalarType::Bool))
        }
        BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge => {
            let lt = infer(cx, lhs)?;
            let rt = infer(cx, rhs)?;
            let ls = lt
                .as_scalar()
                .ok_or_else(|| cx.err(span, "cannot compare pointers"))?;
            let rs = rt
                .as_scalar()
                .ok_or_else(|| cx.err(span, "cannot compare pointers"))?;
            let unified = ls.unify(rs);
            let lt2 = scalar_rvalue(cx, lhs)?;
            coerce(cx, lt2, unified);
            let rt2 = scalar_rvalue(cx, rhs)?;
            coerce(cx, rt2, unified);
            let kind = match op {
                BinOp::Eq => CmpKind::Eq,
                BinOp::Ne => CmpKind::Ne,
                BinOp::Lt => CmpKind::Lt,
                BinOp::Le => CmpKind::Le,
                BinOp::Gt => CmpKind::Gt,
                BinOp::Ge => CmpKind::Ge,
                _ => unreachable!(),
            };
            cx.emit(Instr::Cmp(kind, unified));
            Ok(Type::Scalar(ScalarType::Bool))
        }
        BinOp::Add | BinOp::Sub if matches!(infer(cx, lhs)?, Type::Pointer(..)) => {
            // Pointer arithmetic: ptr ± int.
            let pt = compile_rvalue(cx, lhs)?;
            let it = scalar_rvalue(cx, rhs)?;
            require_integer(cx, it, rhs.span())?;
            if op == BinOp::Sub {
                coerce(cx, it, ScalarType::I64);
                cx.emit(Instr::Neg(ScalarType::I64));
            }
            cx.emit(Instr::PtrAdd);
            Ok(pt)
        }
        _ => {
            let lt = infer(cx, lhs)?;
            let rt = infer(cx, rhs)?;
            let ls = lt
                .as_scalar()
                .ok_or_else(|| cx.err(span, "pointer operand in arithmetic"))?;
            let rs = rt
                .as_scalar()
                .ok_or_else(|| cx.err(span, "pointer operand in arithmetic"))?;
            let (unified, kind) = arith_parts(cx, op, ls, rs, span)?;
            let lt2 = scalar_rvalue(cx, lhs)?;
            coerce(cx, lt2, unified);
            let rt2 = scalar_rvalue(cx, rhs)?;
            coerce(cx, rt2, unified);
            cx.emit(Instr::Bin(kind, unified));
            Ok(Type::Scalar(unified))
        }
    }
}

fn compile_call(cx: &mut Cx, name: &str, args: &[Expr], span: Span) -> Result<Type, ClcError> {
    let expect = |n: usize| -> Result<(), ClcError> {
        if args.len() == n {
            Ok(())
        } else {
            Err(cx.err(
                span,
                format!("`{name}` takes {n} argument(s), got {}", args.len()),
            ))
        }
    };
    match name {
        "get_global_id" | "get_local_id" | "get_group_id" | "get_global_size"
        | "get_local_size" | "get_num_groups" => {
            expect(1)?;
            let t = scalar_rvalue(cx, &args[0])?;
            require_integer(cx, t, args[0].span())?;
            coerce(cx, t, ScalarType::U64);
            let g = match name {
                "get_global_id" => Geom::GlobalId,
                "get_local_id" => Geom::LocalId,
                "get_group_id" => Geom::GroupId,
                "get_global_size" => Geom::GlobalSize,
                "get_local_size" => Geom::LocalSize,
                "get_num_groups" => Geom::NumGroups,
                _ => unreachable!(),
            };
            cx.emit(Instr::Query(g));
            Ok(Type::Scalar(ScalarType::U64))
        }
        "get_work_dim" => {
            expect(0)?;
            cx.emit(Instr::PushInt(0, ScalarType::U64));
            cx.emit(Instr::Query(Geom::WorkDim));
            Ok(Type::Scalar(ScalarType::U64))
        }
        "sqrt" | "rsqrt" | "fabs" | "exp" | "log" | "log2" | "sin" | "cos" | "tan" | "floor"
        | "ceil" => {
            expect(1)?;
            let out = float_arg_type(cx, args, span)?;
            let at = scalar_rvalue(cx, &args[0])?;
            coerce(cx, at, out);
            let m = match name {
                "sqrt" => Math1::Sqrt,
                "rsqrt" => Math1::Rsqrt,
                "fabs" => Math1::Abs,
                "exp" => Math1::Exp,
                "log" => Math1::Log,
                "log2" => Math1::Log2,
                "sin" => Math1::Sin,
                "cos" => Math1::Cos,
                "tan" => Math1::Tan,
                "floor" => Math1::Floor,
                "ceil" => Math1::Ceil,
                _ => unreachable!(),
            };
            cx.emit(Instr::CallMath1(m, out));
            Ok(Type::Scalar(out))
        }
        "abs" => {
            expect(1)?;
            let at = scalar_rvalue(cx, &args[0])?;
            // Unsigned abs is the identity — no instruction needed.
            if at.is_float() || at.is_signed() {
                cx.emit(Instr::CallMath1(Math1::Abs, at));
            }
            Ok(Type::Scalar(at))
        }
        "pow" | "fmin" | "fmax" | "fmod" => {
            expect(2)?;
            let out = float_arg_type(cx, args, span)?;
            let a = scalar_rvalue(cx, &args[0])?;
            coerce(cx, a, out);
            let b = scalar_rvalue(cx, &args[1])?;
            coerce(cx, b, out);
            let m = match name {
                "pow" => Math2::Pow,
                "fmin" => Math2::Min,
                "fmax" => Math2::Max,
                "fmod" => Math2::Fmod,
                _ => unreachable!(),
            };
            cx.emit(Instr::CallMath2(m, out));
            Ok(Type::Scalar(out))
        }
        "min" | "max" => {
            expect(2)?;
            let a = infer(cx, &args[0])?
                .as_scalar()
                .ok_or_else(|| cx.err(span, "expected a scalar argument"))?;
            let b = infer(cx, &args[1])?
                .as_scalar()
                .ok_or_else(|| cx.err(span, "expected a scalar argument"))?;
            let out = a.unify(b);
            let a2 = scalar_rvalue(cx, &args[0])?;
            coerce(cx, a2, out);
            let b2 = scalar_rvalue(cx, &args[1])?;
            coerce(cx, b2, out);
            let m = if name == "min" {
                Math2::Min
            } else {
                Math2::Max
            };
            cx.emit(Instr::CallMath2(m, out));
            Ok(Type::Scalar(out))
        }
        "mad" | "fma" => {
            expect(3)?;
            let out = float_arg_type(cx, args, span)?;
            let a = scalar_rvalue(cx, &args[0])?;
            coerce(cx, a, out);
            let b = scalar_rvalue(cx, &args[1])?;
            coerce(cx, b, out);
            cx.emit(Instr::Bin(BinKind::Mul, out));
            let c = scalar_rvalue(cx, &args[2])?;
            coerce(cx, c, out);
            cx.emit(Instr::Bin(BinKind::Add, out));
            Ok(Type::Scalar(out))
        }
        "clamp" => {
            expect(3)?;
            let out = float_arg_type(cx, args, span)?;
            let x = scalar_rvalue(cx, &args[0])?;
            coerce(cx, x, out);
            let lo = scalar_rvalue(cx, &args[1])?;
            coerce(cx, lo, out);
            cx.emit(Instr::CallMath2(Math2::Max, out));
            let hi = scalar_rvalue(cx, &args[2])?;
            coerce(cx, hi, out);
            cx.emit(Instr::CallMath2(Math2::Min, out));
            Ok(Type::Scalar(out))
        }
        _ => Err(cx.err(span, format!("unknown function `{name}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse;

    fn compile_src(src: &str) -> Result<CompiledProgram, ClcError> {
        let toks = lex(src).unwrap();
        let unit = parse(&toks, src)?;
        lower(&unit, src)
    }

    #[test]
    fn compiles_simple_kernel() {
        let p = compile_src(
            "__kernel void f(__global float* a, float s) { int i = get_global_id(0); a[i] = a[i] * s; }",
        )
        .unwrap();
        let k = p.kernel("f").unwrap();
        assert_eq!(k.arity(), 2);
        assert!(k.n_slots >= 3);
        assert!(!k.uses_barrier);
        assert!(matches!(k.code.last(), Some(Instr::Return)));
    }

    #[test]
    fn detects_unknown_variable() {
        let err = compile_src("__kernel void f() { x = 1; }").unwrap_err();
        assert!(err.message().contains("unknown variable"));
    }

    #[test]
    fn detects_unknown_function() {
        let err =
            compile_src("__kernel void f(__global int* a) { a[0] = frobnicate(1); }").unwrap_err();
        assert!(err.message().contains("unknown function"));
    }

    #[test]
    fn detects_duplicate_kernels() {
        let err = compile_src("__kernel void f() {} __kernel void f() {}").unwrap_err();
        assert!(err.message().contains("duplicate kernel"));
    }

    #[test]
    fn detects_duplicate_declaration_in_scope() {
        let err = compile_src("__kernel void f() { int i = 0; int i = 1; }").unwrap_err();
        assert!(err.message().contains("already declared"));
    }

    #[test]
    fn shadowing_in_inner_scope_is_allowed() {
        assert!(
            compile_src("__kernel void f() { int i = 0; { int i = 1; i = i + 1; } i = 2; }")
                .is_ok()
        );
    }

    #[test]
    fn break_outside_loop_rejected() {
        let err = compile_src("__kernel void f() { break; }").unwrap_err();
        assert!(err.message().contains("break"));
    }

    #[test]
    fn barrier_sets_flag_and_local_bytes_tracked() {
        let p = compile_src(
            "__kernel void f() { __local float t[8][4]; barrier(CLK_LOCAL_MEM_FENCE); }",
        )
        .unwrap();
        let k = p.kernel("f").unwrap();
        assert!(k.uses_barrier);
        assert_eq!(k.static_local_bytes, 8 * 4 * 4);
    }

    #[test]
    fn float_modulo_rejected() {
        let err =
            compile_src("__kernel void f(__global float* a) { a[0] = a[1] % a[2]; }").unwrap_err();
        assert!(err.message().contains("fmod"));
    }

    #[test]
    fn shift_on_float_rejected() {
        let err =
            compile_src("__kernel void f(__global float* a) { a[0] = a[1] << 2; }").unwrap_err();
        assert!(err.message().contains("integer"));
    }

    #[test]
    fn assignment_as_value_rejected() {
        let err =
            compile_src("__kernel void f(__global int* a) { a[0] = (a[1] = 2) + 1; }").unwrap_err();
        assert!(err.message().contains("assignment"));
    }

    #[test]
    fn wrong_builtin_arity_rejected() {
        let err = compile_src("__kernel void f(__global float* a) { a[0] = sqrt(a[1], a[2]); }")
            .unwrap_err();
        assert!(err.message().contains("argument"));
    }

    #[test]
    fn pointer_reassignment_allowed() {
        assert!(compile_src(
            "__kernel void f(__global float* a, int n) { a = a + n; a[0] = 1.0f; }"
        )
        .is_ok());
    }

    #[test]
    fn pointer_compound_assignment_rejected() {
        let err = compile_src("__kernel void f(__global float* a) { a += 1; }").unwrap_err();
        assert!(err.message().contains("pointer"));
    }
}
