//! The OpenCL C type system subset.

use std::fmt;

/// OpenCL address spaces for pointer types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AddressSpace {
    /// `__global` — cluster-visible device buffers.
    Global,
    /// `__local` — work-group shared scratchpad.
    Local,
    /// `__constant` — read-only global data.
    Constant,
    /// `__private` — per-work-item storage (the default).
    Private,
}

impl fmt::Display for AddressSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AddressSpace::Global => "__global",
            AddressSpace::Local => "__local",
            AddressSpace::Constant => "__constant",
            AddressSpace::Private => "__private",
        })
    }
}

/// The scalar types the VM can manipulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScalarType {
    /// `bool` (also the result of comparisons).
    Bool,
    /// 32-bit signed `int`.
    I32,
    /// 32-bit unsigned `uint`.
    U32,
    /// 64-bit signed `long`.
    I64,
    /// 64-bit unsigned `ulong` / `size_t`.
    U64,
    /// 32-bit `float`.
    F32,
    /// 64-bit `double`.
    F64,
}

impl ScalarType {
    /// Size of one element in bytes (as stored in buffers).
    pub fn size_bytes(self) -> usize {
        match self {
            ScalarType::Bool => 1,
            ScalarType::I32 | ScalarType::U32 | ScalarType::F32 => 4,
            ScalarType::I64 | ScalarType::U64 | ScalarType::F64 => 8,
        }
    }

    /// Whether this is `float` or `double`.
    pub fn is_float(self) -> bool {
        matches!(self, ScalarType::F32 | ScalarType::F64)
    }

    /// Whether this is a (signed or unsigned) integer.
    pub fn is_integer(self) -> bool {
        matches!(
            self,
            ScalarType::I32 | ScalarType::U32 | ScalarType::I64 | ScalarType::U64
        )
    }

    /// Whether this is a signed integer.
    pub fn is_signed(self) -> bool {
        matches!(self, ScalarType::I32 | ScalarType::I64)
    }

    /// The type both operands convert to in binary arithmetic
    /// (C "usual arithmetic conversions", restricted to our subset).
    pub fn unify(self, other: ScalarType) -> ScalarType {
        use ScalarType::*;
        if self == other {
            return self;
        }
        // Floats dominate; wider floats dominate narrower.
        if self == F64 || other == F64 {
            return F64;
        }
        if self == F32 || other == F32 {
            return F32;
        }
        // Integer promotion: wider wins; on equal width unsigned wins.
        let rank = |t: ScalarType| match t {
            Bool => 0u8,
            I32 => 1,
            U32 => 2,
            I64 => 3,
            U64 => 4,
            F32 | F64 => unreachable!("floats handled above"),
        };
        if rank(self) >= rank(other) {
            self.promote_past_bool()
        } else {
            other.promote_past_bool()
        }
    }

    fn promote_past_bool(self) -> ScalarType {
        if self == ScalarType::Bool {
            ScalarType::I32
        } else {
            self
        }
    }
}

impl fmt::Display for ScalarType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ScalarType::Bool => "bool",
            ScalarType::I32 => "int",
            ScalarType::U32 => "uint",
            ScalarType::I64 => "long",
            ScalarType::U64 => "ulong",
            ScalarType::F32 => "float",
            ScalarType::F64 => "double",
        })
    }
}

/// A full type: scalar, pointer-to-scalar, or `void`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Type {
    /// `void` — only valid as a kernel return type.
    Void,
    /// A scalar value.
    Scalar(ScalarType),
    /// A pointer to scalars in some address space.
    Pointer(AddressSpace, ScalarType),
}

impl Type {
    /// The scalar inside, if this is a scalar type.
    pub fn as_scalar(self) -> Option<ScalarType> {
        match self {
            Type::Scalar(s) => Some(s),
            _ => None,
        }
    }

    /// The `(address space, element)` pair, if this is a pointer.
    pub fn as_pointer(self) -> Option<(AddressSpace, ScalarType)> {
        match self {
            Type::Pointer(a, s) => Some((a, s)),
            _ => None,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::Scalar(s) => write!(f, "{s}"),
            Type::Pointer(a, s) => write!(f, "{a} {s}*"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ScalarType::*;

    #[test]
    fn sizes_match_c_layout() {
        assert_eq!(I32.size_bytes(), 4);
        assert_eq!(U32.size_bytes(), 4);
        assert_eq!(F32.size_bytes(), 4);
        assert_eq!(I64.size_bytes(), 8);
        assert_eq!(U64.size_bytes(), 8);
        assert_eq!(F64.size_bytes(), 8);
        assert_eq!(Bool.size_bytes(), 1);
    }

    #[test]
    fn unify_prefers_floats() {
        assert_eq!(I32.unify(F32), F32);
        assert_eq!(F32.unify(I64), F32);
        assert_eq!(F32.unify(F64), F64);
        assert_eq!(U64.unify(F64), F64);
    }

    #[test]
    fn unify_integer_ranks() {
        assert_eq!(I32.unify(U32), U32);
        assert_eq!(I32.unify(I64), I64);
        assert_eq!(U32.unify(I64), I64);
        assert_eq!(I64.unify(U64), U64);
        assert_eq!(Bool.unify(Bool), Bool);
        assert_eq!(Bool.unify(I32), I32);
    }

    #[test]
    fn unify_is_commutative() {
        let all = [Bool, I32, U32, I64, U64, F32, F64];
        for &a in &all {
            for &b in &all {
                assert_eq!(a.unify(b), b.unify(a), "unify({a}, {b})");
            }
        }
    }

    #[test]
    fn type_accessors() {
        assert_eq!(Type::Scalar(I32).as_scalar(), Some(I32));
        assert_eq!(Type::Void.as_scalar(), None);
        let p = Type::Pointer(AddressSpace::Global, F32);
        assert_eq!(p.as_pointer(), Some((AddressSpace::Global, F32)));
        assert_eq!(p.as_scalar(), None);
        assert_eq!(p.to_string(), "__global float*");
    }
}
