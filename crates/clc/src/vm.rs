//! The work-item virtual machine.
//!
//! Executes [`CompiledKernel`] bytecode over an NDRange with real OpenCL
//! work-group semantics: work-items of one group share a local-memory
//! arena, and `barrier()` suspends each item until every item in the group
//! arrives. Items are state machines — (pc, operand stack, slots) — so
//! suspension is a cheap save/restore rather than one OS thread per item.

use std::error::Error;
use std::fmt;

use crate::ast::ParamType;
use crate::bytecode::{BinKind, CmpKind, CompiledKernel, Geom, Instr, Math1, Math2};
use crate::types::{AddressSpace, ScalarType};

/// What class of failure an [`ExecError`] reports.
///
/// The VM's dynamic checks mirror the static analyzer
/// ([`crate::analysis`]): a kernel the analyzer passes clean must never
/// produce [`BarrierDivergence`](ExecErrorKind::BarrierDivergence) or
/// [`LocalRace`](ExecErrorKind::LocalRace) at runtime, which is exactly
/// what the cross-check tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecErrorKind {
    /// Argument mismatch, memory fault, arithmetic fault, …
    General,
    /// The work-items of a group did not all reach the same `barrier()`.
    BarrierDivergence,
    /// Checked mode only: conflicting `__local` accesses without an
    /// intervening barrier.
    LocalRace,
    /// Checked mode only: the instruction budget ran out (the kernel
    /// likely does not terminate).
    BudgetExhausted,
}

/// A runtime execution failure (out-of-bounds access, divide by zero,
/// barrier divergence, argument mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
    kind: ExecErrorKind,
}

impl ExecError {
    fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            kind: ExecErrorKind::General,
        }
    }

    fn with_kind(kind: ExecErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            kind,
        }
    }

    /// Creates an execution error with a custom message.
    ///
    /// Intended for runtimes layered on top of the VM (device simulators,
    /// native kernels) that need to report launch failures with the same
    /// error type the VM uses.
    pub fn from_message(message: impl Into<String>) -> Self {
        ExecError::new(message)
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The failure class.
    pub fn kind(&self) -> ExecErrorKind {
        self.kind
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel execution failed: {}", self.message)
    }
}

impl Error for ExecError {}

/// A `__global` memory buffer (the backing store of an OpenCL `cl_mem`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalBuffer {
    bytes: Vec<u8>,
}

macro_rules! buffer_views {
    ($from:ident, $as_ref:ident, $as_mut:ident, $t:ty) => {
        /// Creates a buffer holding the given elements (little-endian).
        pub fn $from(values: &[$t]) -> Self {
            let mut bytes = Vec::with_capacity(values.len() * std::mem::size_of::<$t>());
            for v in values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            GlobalBuffer { bytes }
        }

        /// Decodes the buffer as elements of this type.
        ///
        /// # Panics
        ///
        /// Panics if the byte length is not a multiple of the element size.
        pub fn $as_ref(&self) -> Vec<$t> {
            let sz = std::mem::size_of::<$t>();
            assert!(
                self.bytes.len() % sz == 0,
                "buffer length {} is not a multiple of {}",
                self.bytes.len(),
                sz
            );
            self.bytes
                .chunks_exact(sz)
                .map(|c| <$t>::from_le_bytes(c.try_into().expect("chunk size")))
                .collect()
        }
    };
}

impl GlobalBuffer {
    /// Creates a zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        GlobalBuffer {
            bytes: vec![0; len],
        }
    }

    /// Creates a buffer from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        GlobalBuffer { bytes }
    }

    /// The raw byte contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the buffer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    buffer_views!(from_f32, as_f32, as_f32_mut, f32);
    buffer_views!(from_f64, as_f64, as_f64_mut, f64);
    buffer_views!(from_i32, as_i32, as_i32_mut, i32);
    buffer_views!(from_u32, as_u32, as_u32_mut, u32);
    buffer_views!(from_i64, as_i64, as_i64_mut, i64);
    buffer_views!(from_u64, as_u64, as_u64_mut, u64);

    fn load(&self, elem: ScalarType, idx: i64) -> Result<Value, ExecError> {
        let sz = elem.size_bytes();
        let off = checked_offset(idx, sz, self.bytes.len())?;
        let b = &self.bytes[off..off + sz];
        Ok(match elem {
            ScalarType::Bool => Value::Bool(b[0] != 0),
            ScalarType::I32 => Value::I32(i32::from_le_bytes(b.try_into().expect("size"))),
            ScalarType::U32 => Value::U32(u32::from_le_bytes(b.try_into().expect("size"))),
            ScalarType::I64 => Value::I64(i64::from_le_bytes(b.try_into().expect("size"))),
            ScalarType::U64 => Value::U64(u64::from_le_bytes(b.try_into().expect("size"))),
            ScalarType::F32 => Value::F32(f32::from_le_bytes(b.try_into().expect("size"))),
            ScalarType::F64 => Value::F64(f64::from_le_bytes(b.try_into().expect("size"))),
        })
    }

    fn store(&mut self, elem: ScalarType, idx: i64, v: &Value) -> Result<(), ExecError> {
        let sz = elem.size_bytes();
        let off = checked_offset(idx, sz, self.bytes.len())?;
        let dst = &mut self.bytes[off..off + sz];
        write_scalar(dst, elem, v);
        Ok(())
    }
}

fn checked_offset(idx: i64, sz: usize, len: usize) -> Result<usize, ExecError> {
    if idx < 0 {
        return Err(ExecError::new(format!("negative buffer index {idx}")));
    }
    let off = (idx as usize)
        .checked_mul(sz)
        .ok_or_else(|| ExecError::new(format!("buffer index {idx} overflows addressing")))?;
    if off + sz > len {
        return Err(ExecError::new(format!(
            "out-of-bounds access: element {idx} ({} bytes/elem) in a {len}-byte buffer",
            sz
        )));
    }
    Ok(off)
}

fn write_scalar(dst: &mut [u8], elem: ScalarType, v: &Value) {
    match (elem, v) {
        (ScalarType::Bool, Value::Bool(x)) => dst[0] = u8::from(*x),
        (ScalarType::I32, Value::I32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U32, Value::U32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::I64, Value::I64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U64, Value::U64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F32, Value::F32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F64, Value::F64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (elem, v) => unreachable!("type confusion storing {v:?} as {elem}"),
    }
}

/// A runtime value on the VM operand stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `bool`
    Bool(bool),
    /// `int`
    I32(i32),
    /// `uint`
    U32(u32),
    /// `long`
    I64(i64),
    /// `ulong`
    U64(u64),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
    /// A typed pointer.
    Ptr(Ptr),
}

/// A typed pointer value: address space, element type, element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ptr {
    space: PtrSpace,
    elem: ScalarType,
    /// Offset in *elements* from the start of the addressed region.
    offset: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtrSpace {
    /// Index into the launch's bound global buffers.
    Global(usize),
    /// The work-group local arena.
    Local,
}

impl Value {
    fn as_bool(&self) -> Result<bool, ExecError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ExecError::new(format!("expected bool, got {other:?}"))),
        }
    }

    fn as_ptr(&self) -> Result<Ptr, ExecError> {
        match self {
            Value::Ptr(p) => Ok(*p),
            other => Err(ExecError::new(format!("expected pointer, got {other:?}"))),
        }
    }

    fn as_index(&self) -> Result<i64, ExecError> {
        Ok(match self {
            Value::Bool(b) => i64::from(*b),
            Value::I32(x) => i64::from(*x),
            Value::U32(x) => i64::from(*x),
            Value::I64(x) => *x,
            Value::U64(x) => {
                i64::try_from(*x).map_err(|_| ExecError::new(format!("index {x} exceeds i64")))?
            }
            other => return Err(ExecError::new(format!("expected integer, got {other:?}"))),
        })
    }

    fn to_f64_lossy(self) -> f64 {
        match self {
            Value::Bool(b) => f64::from(u8::from(b)),
            Value::I32(x) => f64::from(x),
            Value::U32(x) => f64::from(x),
            Value::I64(x) => x as f64,
            Value::U64(x) => x as f64,
            Value::F32(x) => f64::from(x),
            Value::F64(x) => x,
            Value::Ptr(_) => f64::NAN,
        }
    }

    fn to_i64_lossy(self) -> i64 {
        match self {
            Value::Bool(b) => i64::from(b),
            Value::I32(x) => i64::from(x),
            Value::U32(x) => i64::from(x),
            Value::I64(x) => x,
            Value::U64(x) => x as i64,
            Value::F32(x) => x as i64,
            Value::F64(x) => x as i64,
            Value::Ptr(_) => 0,
        }
    }

    fn cast(self, to: ScalarType) -> Value {
        match to {
            ScalarType::Bool => Value::Bool(match self {
                Value::Bool(b) => b,
                Value::F32(x) => x != 0.0,
                Value::F64(x) => x != 0.0,
                other => other.to_i64_lossy() != 0,
            }),
            ScalarType::I32 => Value::I32(match self {
                Value::F32(x) => x as i32,
                Value::F64(x) => x as i32,
                other => other.to_i64_lossy() as i32,
            }),
            ScalarType::U32 => Value::U32(match self {
                Value::F32(x) => x as u32,
                Value::F64(x) => x as u32,
                other => other.to_i64_lossy() as u32,
            }),
            ScalarType::I64 => Value::I64(match self {
                Value::F32(x) => x as i64,
                Value::F64(x) => x as i64,
                other => other.to_i64_lossy(),
            }),
            ScalarType::U64 => Value::U64(match self {
                Value::F32(x) => x as u64,
                Value::F64(x) => x as u64,
                Value::U64(x) => x,
                other => other.to_i64_lossy() as u64,
            }),
            ScalarType::F32 => Value::F32(self.to_f64_lossy() as f32),
            ScalarType::F64 => Value::F64(self.to_f64_lossy()),
        }
    }
}

/// A kernel argument supplied at launch (`clSetKernelArg` equivalent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// A scalar passed by value (coerced to the parameter type).
    Scalar(Value),
    /// A `__global`/`__constant` pointer: index into the launch's buffer
    /// slice.
    GlobalBuffer(usize),
    /// A dynamically-sized `__local` allocation of this many bytes.
    LocalAlloc(usize),
}

impl ArgValue {
    /// A `__global` buffer argument bound to `buffers[index]`.
    pub fn global(index: usize) -> Self {
        ArgValue::GlobalBuffer(index)
    }

    /// A `float` scalar argument.
    pub fn from_f32(x: f32) -> Self {
        ArgValue::Scalar(Value::F32(x))
    }

    /// A `double` scalar argument.
    pub fn from_f64(x: f64) -> Self {
        ArgValue::Scalar(Value::F64(x))
    }

    /// An `int` scalar argument.
    pub fn from_i32(x: i32) -> Self {
        ArgValue::Scalar(Value::I32(x))
    }

    /// A `uint` scalar argument.
    pub fn from_u32(x: u32) -> Self {
        ArgValue::Scalar(Value::U32(x))
    }

    /// A `long` scalar argument.
    pub fn from_i64(x: i64) -> Self {
        ArgValue::Scalar(Value::I64(x))
    }

    /// A `ulong` scalar argument.
    pub fn from_u64(x: u64) -> Self {
        ArgValue::Scalar(Value::U64(x))
    }

    /// A dynamically-sized `__local` scratch allocation.
    pub fn local_bytes(bytes: usize) -> Self {
        ArgValue::LocalAlloc(bytes)
    }
}

/// An N-dimensional launch range (`clEnqueueNDRangeKernel` geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of dimensions in use (1–3).
    pub work_dim: u32,
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [u64; 3],
    /// Work-group size per dimension (unused dimensions are 1).
    pub local: [u64; 3],
}

impl NdRange {
    /// A 1-D range of `global` items in groups of `local`.
    pub fn linear(global: u64, local: u64) -> Self {
        NdRange {
            work_dim: 1,
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// A 2-D range.
    pub fn d2(global: [u64; 2], local: [u64; 2]) -> Self {
        NdRange {
            work_dim: 2,
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        }
    }

    /// A 3-D range.
    pub fn d3(global: [u64; 3], local: [u64; 3]) -> Self {
        NdRange {
            work_dim: 3,
            global,
            local,
        }
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> u64 {
        self.global.iter().product()
    }

    /// Number of work-groups.
    pub fn total_groups(&self) -> u64 {
        (0..3)
            .map(|d| self.global[d] / self.local[d].max(1))
            .product()
    }

    /// Work-items per group.
    pub fn group_items(&self) -> u64 {
        self.local.iter().product()
    }

    fn validate(&self) -> Result<(), ExecError> {
        if !(1..=3).contains(&self.work_dim) {
            return Err(ExecError::new("work_dim must be 1, 2 or 3"));
        }
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(ExecError::new(format!(
                    "zero-sized dimension {d} in NDRange"
                )));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(ExecError::new(format!(
                    "local size {} does not divide global size {} in dimension {d}",
                    self.local[d], self.global[d]
                )));
            }
        }
        Ok(())
    }
}

/// Counters from one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total bytecode instructions retired.
    pub instructions: u64,
    /// Work-items executed.
    pub work_items: u64,
    /// Work-groups executed.
    pub work_groups: u64,
    /// Group-wide barrier releases (each counts once per group, however
    /// many work-items waited) — a synchronization-pressure signal for
    /// the execution profile.
    pub barriers: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ItemStatus {
    Running,
    AtBarrier,
    Done,
}

struct Item {
    pc: usize,
    stack: Vec<Value>,
    slots: Vec<Value>,
    status: ItemStatus,
    global_id: [u64; 3],
    local_id: [u64; 3],
}

/// Configuration for [`run_ndrange_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Fail (instead of hanging) once this many instructions have retired
    /// across the whole launch. `u64::MAX` disables the budget.
    pub max_instructions: u64,
    /// Detect dynamic `__local` data races.
    pub detect_races: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_instructions: 50_000_000,
            detect_races: true,
        }
    }
}

/// One global-memory access observed by [`run_ndrange_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalAccess {
    /// Buffer index (as bound via [`ArgValue::GlobalBuffer`]).
    pub buffer: usize,
    /// Flat work-item id across the whole NDRange.
    pub item: u64,
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// First byte touched.
    pub byte_off: u64,
    /// Bytes touched.
    pub len: u32,
}

/// The per-byte global-access log collected by [`run_ndrange_observed`] —
/// the dynamic ground truth the static effect summaries
/// ([`crate::analysis::effects`]) are cross-checked against.
#[derive(Debug, Clone, Default)]
pub struct GlobalObs {
    /// Every global-buffer access, in execution order.
    pub accesses: Vec<GlobalAccess>,
    /// The log hit its size cap; `accesses` is a prefix.
    pub truncated: bool,
}

/// Log cap for [`GlobalObs`] (the cross-check corpora stay far below it).
const MAX_OBS_ACCESSES: usize = 1 << 22;

impl GlobalObs {
    fn record(&mut self, rec: GlobalAccess) {
        if self.accesses.len() >= MAX_OBS_ACCESSES {
            self.truncated = true;
        } else {
            self.accesses.push(rec);
        }
    }
}

/// Dynamic `__local` race oracle.
///
/// For every arena byte it tracks the set of work-items (linear local
/// index) that wrote the byte's *current value* since the last barrier:
///
/// * a read is racy when the byte has writers and the reader is not one
///   of them (it observes another item's unsynchronized write);
/// * a value-changing write is racy when a *different* item wrote the
///   current value (that item's data is silently clobbered);
/// * a same-value write is benign and joins the writer set, matching the
///   analyzer's rule that only *different* values stored to one element
///   constitute a race.
///
/// Writer sets are cleared whenever a barrier releases, so
/// barrier-separated accesses never conflict.
struct RaceOracle {
    writers: Vec<Vec<u32>>,
}

impl RaceOracle {
    fn new(arena_len: usize) -> Self {
        RaceOracle {
            writers: vec![Vec::new(); arena_len],
        }
    }

    fn reset(&mut self) {
        for w in &mut self.writers {
            w.clear();
        }
    }

    /// Returns a conflicting writer if `item` reading `len` bytes at
    /// `off` races with an unsynchronized write.
    fn note_read(&self, off: usize, len: usize, item: u32) -> Option<u32> {
        for w in &self.writers[off..off + len] {
            if !w.is_empty() && !w.contains(&item) {
                return Some(w[0]);
            }
        }
        None
    }

    /// Records `item` overwriting `old` with `new` at `off`; returns a
    /// conflicting prior writer if the write races.
    fn note_write(&mut self, off: usize, old: &[u8], new: &[u8], item: u32) -> Option<u32> {
        for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
            let w = &mut self.writers[off + i];
            if o != n {
                if let Some(&other) = w.iter().find(|&&j| j != item) {
                    return Some(other);
                }
                w.clear();
                w.push(item);
            } else if !w.contains(&item) {
                w.push(item);
            }
        }
        None
    }
}

struct Checked {
    cfg: CheckConfig,
    oracle: RaceOracle,
}

/// Formats a barrier's source position for error messages.
fn barrier_pos(kernel: &CompiledKernel, pc: usize) -> String {
    match kernel.barrier_site(pc as u32) {
        Some(s) => format!("the barrier at line {}, column {}", s.line, s.col),
        None => format!("the barrier at pc {pc}"),
    }
}

/// Builds the checked-mode `__local` race error.
fn local_race_error(kernel: &CompiledKernel, item: u32, other: u32, verb: &str) -> ExecError {
    ExecError::with_kind(
        ExecErrorKind::LocalRace,
        format!(
            "data race on __local memory in kernel `{}`: work-item {item} {verb} \
             a value stored by work-item {other} with no intervening barrier",
            kernel.name
        ),
    )
}

/// Executes `kernel` across the whole `range`.
///
/// `args` supplies one [`ArgValue`] per kernel parameter, and
/// [`ArgValue::GlobalBuffer`] entries index into `buffers`. The launch is
/// sequential (device parallelism is *modelled* by `haocl-device`, not
/// recreated with threads — results must be deterministic).
///
/// # Errors
///
/// Returns [`ExecError`] on argument mismatches, out-of-bounds accesses,
/// integer division by zero, or barrier divergence within a work-group.
pub fn run_ndrange(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
) -> Result<ExecStats, ExecError> {
    run_ndrange_impl(kernel, args, buffers, range, None, None)
}

/// [`run_ndrange`] with dynamic checking: an instruction budget (so
/// non-terminating kernels fail instead of hanging) and a `__local` race
/// oracle (see [`RaceOracle`]'s rules in the module source).
///
/// This is the dynamic counterpart of the static analyzer
/// ([`crate::analysis`]): the analyzer is conservative, so a kernel it
/// passes clean must also pass checked execution — the lint-corpus
/// cross-check tests assert exactly that (one-directional: checked
/// execution observes only the launched NDRange, so it can miss races the
/// analyzer flags).
///
/// # Errors
///
/// Everything [`run_ndrange`] returns, plus
/// [`ExecErrorKind::LocalRace`] and [`ExecErrorKind::BudgetExhausted`].
pub fn run_ndrange_checked(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: &CheckConfig,
) -> Result<ExecStats, ExecError> {
    run_ndrange_impl(kernel, args, buffers, range, Some(cfg), None)
}

/// [`run_ndrange_checked`] that additionally logs every global-buffer
/// access (buffer, flat work-item id, byte range, load/store) into a
/// [`GlobalObs`] — the dynamic oracle the static effect summaries are
/// validated against.
///
/// # Errors
///
/// Everything [`run_ndrange_checked`] returns.
pub fn run_ndrange_observed(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: &CheckConfig,
) -> Result<(ExecStats, GlobalObs), ExecError> {
    let mut obs = GlobalObs::default();
    let stats = run_ndrange_impl(kernel, args, buffers, range, Some(cfg), Some(&mut obs))?;
    Ok((stats, obs))
}

fn run_ndrange_impl(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: Option<&CheckConfig>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<ExecStats, ExecError> {
    range.validate()?;
    if args.len() != kernel.params.len() {
        return Err(ExecError::new(format!(
            "kernel `{}` expects {} arguments, got {}",
            kernel.name,
            kernel.params.len(),
            args.len()
        )));
    }
    // Bind arguments to slot values; lay out dynamic __local allocations
    // after the kernel's static local arrays.
    let mut arena_bytes = (kernel.static_local_bytes as usize + 7) & !7;
    let mut bound = Vec::with_capacity(args.len());
    for (i, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
        let v = match (arg, param) {
            (ArgValue::Scalar(v), ParamType::Scalar(want)) => v.cast(*want),
            (
                ArgValue::GlobalBuffer(b),
                ParamType::Pointer(AddressSpace::Global | AddressSpace::Constant, elem),
            ) => {
                if *b >= buffers.len() {
                    return Err(ExecError::new(format!(
                        "argument {i}: buffer index {b} out of range ({} bound)",
                        buffers.len()
                    )));
                }
                Value::Ptr(Ptr {
                    space: PtrSpace::Global(*b),
                    elem: *elem,
                    offset: 0,
                })
            }
            (ArgValue::LocalAlloc(bytes), ParamType::Pointer(AddressSpace::Local, elem)) => {
                let offset = (arena_bytes + 7) & !7;
                arena_bytes = offset + bytes;
                Value::Ptr(Ptr {
                    space: PtrSpace::Local,
                    elem: *elem,
                    offset: (offset / elem.size_bytes()) as i64,
                })
            }
            (arg, param) => {
                return Err(ExecError::new(format!(
                    "argument {i}: {arg:?} does not match parameter type {param:?}"
                )));
            }
        };
        bound.push(v);
    }

    let num_groups = [
        range.global[0] / range.local[0],
        range.global[1] / range.local[1],
        range.global[2] / range.local[2],
    ];
    let mut stats = ExecStats::default();
    let mut arena = vec![0u8; arena_bytes];
    let mut checked = cfg.map(|c| Checked {
        cfg: *c,
        oracle: RaceOracle::new(arena_bytes),
    });
    for gz in 0..num_groups[2] {
        for gy in 0..num_groups[1] {
            for gx in 0..num_groups[0] {
                run_group(
                    kernel,
                    &bound,
                    buffers,
                    range,
                    [gx, gy, gz],
                    num_groups,
                    &mut arena,
                    &mut stats,
                    checked.as_mut(),
                    obs.as_deref_mut(),
                )?;
                stats.work_groups += 1;
            }
        }
    }
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    kernel: &CompiledKernel,
    bound: &[Value],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
    mut checked: Option<&mut Checked>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<(), ExecError> {
    arena.fill(0);
    if let Some(c) = checked.as_deref_mut() {
        c.oracle.reset();
    }
    let mut items = Vec::with_capacity(range.group_items() as usize);
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx, ly, lz];
                let global_id = [
                    group_id[0] * range.local[0] + lx,
                    group_id[1] * range.local[1] + ly,
                    group_id[2] * range.local[2] + lz,
                ];
                let mut slots = vec![Value::I32(0); kernel.n_slots as usize];
                slots[..bound.len()].copy_from_slice(bound);
                items.push(Item {
                    pc: 0,
                    stack: Vec::with_capacity(16),
                    slots,
                    status: ItemStatus::Running,
                    global_id,
                    local_id,
                });
            }
        }
    }
    loop {
        let mut any_running = false;
        for (idx, item) in items.iter_mut().enumerate() {
            if item.status == ItemStatus::Running {
                run_item(
                    kernel,
                    item,
                    buffers,
                    range,
                    group_id,
                    num_groups,
                    arena,
                    stats,
                    idx as u32,
                    checked.as_deref_mut(),
                    obs.as_deref_mut(),
                )?;
                any_running = true;
            }
        }
        if !any_running {
            // A full pass with nothing running: all are AtBarrier or Done.
            // A waiting item's barrier is at `pc - 1` (the pc was advanced
            // before the Barrier executed).
            let waiting_pcs: Vec<usize> = items
                .iter()
                .filter(|i| i.status == ItemStatus::AtBarrier)
                .map(|i| i.pc - 1)
                .collect();
            if waiting_pcs.is_empty() {
                break;
            }
            let done = items.len() - waiting_pcs.len();
            if done > 0 {
                return Err(ExecError::with_kind(
                    ExecErrorKind::BarrierDivergence,
                    format!(
                        "barrier divergence in kernel `{}`: {} item(s) wait at {} \
                         while {done} finished without reaching it",
                        kernel.name,
                        waiting_pcs.len(),
                        barrier_pos(kernel, waiting_pcs[0]),
                    ),
                ));
            }
            // Every item waits — but a release is only legal when they all
            // wait at the *same* barrier. Divergent control flow can park
            // items at distinct barrier sites, which real devices deadlock
            // or corrupt on; report it as divergence instead.
            if let Some(&other) = waiting_pcs.iter().find(|&&pc| pc != waiting_pcs[0]) {
                return Err(ExecError::with_kind(
                    ExecErrorKind::BarrierDivergence,
                    format!(
                        "barrier divergence in kernel `{}`: work-items of one group wait \
                         at different barriers ({} vs {})",
                        kernel.name,
                        barrier_pos(kernel, waiting_pcs[0]),
                        barrier_pos(kernel, other),
                    ),
                ));
            }
            if let Some(c) = checked.as_deref_mut() {
                c.oracle.reset();
            }
            stats.barriers += 1;
            for item in &mut items {
                item.status = ItemStatus::Running;
            }
        }
    }
    stats.work_items += items.len() as u64;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_item(
    kernel: &CompiledKernel,
    item: &mut Item,
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
    idx: u32,
    mut checked: Option<&mut Checked>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<(), ExecError> {
    let flat_item = (item.global_id[2] * range.global[1] + item.global_id[1]) * range.global[0]
        + item.global_id[0];
    let code = &kernel.code;
    loop {
        let Some(instr) = code.get(item.pc) else {
            // Fell off the end — treated as return (sema always appends one,
            // so this is belt-and-braces).
            item.status = ItemStatus::Done;
            return Ok(());
        };
        item.pc += 1;
        stats.instructions += 1;
        if let Some(c) = checked.as_deref() {
            if stats.instructions > c.cfg.max_instructions {
                return Err(ExecError::with_kind(
                    ExecErrorKind::BudgetExhausted,
                    format!(
                        "instruction budget exhausted in kernel `{}` after {} \
                         instructions: the kernel may not terminate",
                        kernel.name, c.cfg.max_instructions
                    ),
                ));
            }
        }
        match *instr {
            Instr::PushInt(v, ty) => item.stack.push(int_value(v, ty)),
            Instr::PushFloat(v, ty) => item.stack.push(if ty == ScalarType::F32 {
                Value::F32(v as f32)
            } else {
                Value::F64(v)
            }),
            Instr::PushBool(b) => item.stack.push(Value::Bool(b)),
            Instr::PushLocalPtr { byte_offset, elem } => {
                item.stack.push(Value::Ptr(Ptr {
                    space: PtrSpace::Local,
                    elem,
                    offset: (byte_offset as usize / elem.size_bytes()) as i64,
                }));
            }
            Instr::LoadLocal(slot) => {
                let v = item.slots[slot as usize];
                item.stack.push(v);
            }
            Instr::StoreLocal(slot) => {
                let v = pop(&mut item.stack)?;
                item.slots[slot as usize] = v;
            }
            Instr::LoadMem(elem) => {
                let p = pop(&mut item.stack)?.as_ptr()?;
                if let (PtrSpace::Global(b), Some(o)) = (p.space, obs.as_deref_mut()) {
                    if p.offset >= 0 {
                        let sz = elem.size_bytes();
                        o.record(GlobalAccess {
                            buffer: b,
                            item: flat_item,
                            write: false,
                            byte_off: p.offset as u64 * sz as u64,
                            len: sz as u32,
                        });
                    }
                }
                if p.space == PtrSpace::Local {
                    if let Some(c) = checked.as_deref() {
                        if c.cfg.detect_races {
                            let sz = elem.size_bytes();
                            let off = checked_offset(p.offset, sz, arena.len())?;
                            if let Some(other) = c.oracle.note_read(off, sz, idx) {
                                return Err(local_race_error(kernel, idx, other, "reads"));
                            }
                        }
                    }
                }
                let v = load_mem(p, elem, buffers, arena)?;
                item.stack.push(v);
            }
            Instr::StoreMem(elem) => {
                let v = pop(&mut item.stack)?;
                let p = pop(&mut item.stack)?.as_ptr()?;
                if let (PtrSpace::Global(b), Some(o)) = (p.space, obs.as_deref_mut()) {
                    if p.offset >= 0 {
                        let sz = elem.size_bytes();
                        o.record(GlobalAccess {
                            buffer: b,
                            item: flat_item,
                            write: true,
                            byte_off: p.offset as u64 * sz as u64,
                            len: sz as u32,
                        });
                    }
                }
                let race_check = p.space == PtrSpace::Local
                    && checked.as_deref().is_some_and(|c| c.cfg.detect_races);
                if race_check {
                    let sz = elem.size_bytes();
                    let off = checked_offset(p.offset, sz, arena.len())?;
                    let mut old = [0u8; 8];
                    old[..sz].copy_from_slice(&arena[off..off + sz]);
                    store_mem(p, elem, &v, buffers, arena)?;
                    let c = checked.as_deref_mut().expect("race_check implies checked");
                    if let Some(other) =
                        c.oracle
                            .note_write(off, &old[..sz], &arena[off..off + sz], idx)
                    {
                        return Err(local_race_error(kernel, idx, other, "overwrites"));
                    }
                } else {
                    store_mem(p, elem, &v, buffers, arena)?;
                }
            }
            Instr::PtrAdd => {
                let idx = pop(&mut item.stack)?.as_index()?;
                let p = pop(&mut item.stack)?.as_ptr()?;
                item.stack.push(Value::Ptr(Ptr {
                    offset: p.offset + idx,
                    ..p
                }));
            }
            Instr::Bin(kind, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(bin_op(kind, ty, a, b)?);
            }
            Instr::Cmp(kind, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(Value::Bool(cmp_op(kind, ty, a, b)));
            }
            Instr::Neg(ty) => {
                let a = pop(&mut item.stack)?;
                item.stack.push(neg_op(ty, a));
            }
            Instr::BitNot(ty) => {
                let a = pop(&mut item.stack)?;
                let x = a.to_i64_lossy();
                item.stack.push(int_value(!x, ty));
            }
            Instr::NotBool => {
                let a = pop(&mut item.stack)?.as_bool()?;
                item.stack.push(Value::Bool(!a));
            }
            Instr::Cast { to, .. } => {
                let a = pop(&mut item.stack)?;
                item.stack.push(a.cast(to));
            }
            Instr::Jump(t) => item.pc = t as usize,
            Instr::JumpIfFalse(t) => {
                if !pop(&mut item.stack)?.as_bool()? {
                    item.pc = t as usize;
                }
            }
            Instr::JumpIfTrue(t) => {
                if pop(&mut item.stack)?.as_bool()? {
                    item.pc = t as usize;
                }
            }
            Instr::CallMath1(m, ty) => {
                let a = pop(&mut item.stack)?;
                item.stack.push(math1(m, ty, a));
            }
            Instr::CallMath2(m, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(math2(m, ty, a, b));
            }
            Instr::Query(g) => {
                let dim = pop(&mut item.stack)?.as_index()?;
                let d = (dim as usize).min(2);
                let v = match g {
                    Geom::GlobalId => item.global_id[d],
                    Geom::LocalId => item.local_id[d],
                    Geom::GroupId => group_id[d],
                    Geom::GlobalSize => range.global[d],
                    Geom::LocalSize => range.local[d],
                    Geom::NumGroups => num_groups[d],
                    Geom::WorkDim => u64::from(range.work_dim),
                };
                item.stack.push(Value::U64(v));
            }
            Instr::Barrier => {
                item.status = ItemStatus::AtBarrier;
                return Ok(());
            }
            Instr::Return => {
                item.status = ItemStatus::Done;
                return Ok(());
            }
            Instr::Dup => {
                let v = *item
                    .stack
                    .last()
                    .ok_or_else(|| ExecError::new("stack underflow on Dup"))?;
                item.stack.push(v);
            }
            Instr::Pop => {
                pop(&mut item.stack)?;
            }
        }
    }
}

fn pop(stack: &mut Vec<Value>) -> Result<Value, ExecError> {
    stack
        .pop()
        .ok_or_else(|| ExecError::new("operand stack underflow"))
}

fn int_value(v: i64, ty: ScalarType) -> Value {
    match ty {
        ScalarType::Bool => Value::Bool(v != 0),
        ScalarType::I32 => Value::I32(v as i32),
        ScalarType::U32 => Value::U32(v as u32),
        ScalarType::I64 => Value::I64(v),
        ScalarType::U64 => Value::U64(v as u64),
        ScalarType::F32 => Value::F32(v as f32),
        ScalarType::F64 => Value::F64(v as f64),
    }
}

fn load_mem(
    p: Ptr,
    elem: ScalarType,
    buffers: &[GlobalBuffer],
    arena: &[u8],
) -> Result<Value, ExecError> {
    match p.space {
        PtrSpace::Global(b) => buffers
            .get(b)
            .ok_or_else(|| ExecError::new(format!("dangling buffer binding {b}")))?
            .load(elem, p.offset),
        PtrSpace::Local => {
            let sz = elem.size_bytes();
            let off = checked_offset(p.offset, sz, arena.len())?;
            let bytes = &arena[off..off + sz];
            Ok(match elem {
                ScalarType::Bool => Value::Bool(bytes[0] != 0),
                ScalarType::I32 => Value::I32(i32::from_le_bytes(bytes.try_into().expect("sz"))),
                ScalarType::U32 => Value::U32(u32::from_le_bytes(bytes.try_into().expect("sz"))),
                ScalarType::I64 => Value::I64(i64::from_le_bytes(bytes.try_into().expect("sz"))),
                ScalarType::U64 => Value::U64(u64::from_le_bytes(bytes.try_into().expect("sz"))),
                ScalarType::F32 => Value::F32(f32::from_le_bytes(bytes.try_into().expect("sz"))),
                ScalarType::F64 => Value::F64(f64::from_le_bytes(bytes.try_into().expect("sz"))),
            })
        }
    }
}

fn store_mem(
    p: Ptr,
    elem: ScalarType,
    v: &Value,
    buffers: &mut [GlobalBuffer],
    arena: &mut [u8],
) -> Result<(), ExecError> {
    match p.space {
        PtrSpace::Global(b) => {
            let buf = buffers
                .get_mut(b)
                .ok_or_else(|| ExecError::new(format!("dangling buffer binding {b}")))?;
            buf.store(elem, p.offset, v)
        }
        PtrSpace::Local => {
            let sz = elem.size_bytes();
            let off = checked_offset(p.offset, sz, arena.len())?;
            write_scalar(&mut arena[off..off + sz], elem, v);
            Ok(())
        }
    }
}

fn bin_op(kind: BinKind, ty: ScalarType, a: Value, b: Value) -> Result<Value, ExecError> {
    use ScalarType::*;
    if ty == F32 {
        // Compute in f32 so single-precision rounding matches real devices.
        let (x, y) = (a.to_f64_lossy() as f32, b.to_f64_lossy() as f32);
        let r = match kind {
            BinKind::Add => x + y,
            BinKind::Sub => x - y,
            BinKind::Mul => x * y,
            BinKind::Div => x / y,
            other => {
                return Err(ExecError::new(format!(
                    "float operands for integer operator {other:?}"
                )));
            }
        };
        return Ok(Value::F32(r));
    }
    if ty == F64 {
        let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
        let r = match kind {
            BinKind::Add => x + y,
            BinKind::Sub => x - y,
            BinKind::Mul => x * y,
            BinKind::Div => x / y,
            other => {
                return Err(ExecError::new(format!(
                    "float operands for integer operator {other:?}"
                )));
            }
        };
        return Ok(Value::F64(r));
    }
    // Integer (and bool promoted earlier by sema).
    let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
    let div_checked = |num: i64, den: i64| -> Result<i64, ExecError> {
        if den == 0 {
            Err(ExecError::new("integer division by zero"))
        } else {
            Ok(num)
        }
    };
    let r = match (kind, ty) {
        (BinKind::Add, _) => x.wrapping_add(y),
        (BinKind::Sub, _) => x.wrapping_sub(y),
        (BinKind::Mul, _) => x.wrapping_mul(y),
        (BinKind::Div, U32 | U64) => {
            div_checked(x, y)?;
            ((x as u64).wrapping_div(y as u64)) as i64
        }
        (BinKind::Div, _) => {
            div_checked(x, y)?;
            x.wrapping_div(y)
        }
        (BinKind::Rem, U32 | U64) => {
            div_checked(x, y)?;
            ((x as u64).wrapping_rem(y as u64)) as i64
        }
        (BinKind::Rem, _) => {
            div_checked(x, y)?;
            x.wrapping_rem(y)
        }
        (BinKind::Shl, _) => x.wrapping_shl(y as u32 & 63),
        (BinKind::Shr, U32 | U64) => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
        (BinKind::Shr, _) => x.wrapping_shr(y as u32 & 63),
        (BinKind::And, _) => x & y,
        (BinKind::Or, _) => x | y,
        (BinKind::Xor, _) => x ^ y,
    };
    // 32-bit types need masking before re-widening so wraparound matches C.
    Ok(match ty {
        I32 => Value::I32(r as i32),
        U32 => Value::U32(r as u32),
        I64 => Value::I64(r),
        U64 => Value::U64(r as u64),
        Bool => Value::Bool(r != 0),
        F32 | F64 => unreachable!("floats handled above"),
    })
}

fn cmp_op(kind: CmpKind, ty: ScalarType, a: Value, b: Value) -> bool {
    if ty.is_float() {
        let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    } else if matches!(ty, ScalarType::U32 | ScalarType::U64) {
        let (x, y) = (a.to_i64_lossy() as u64, b.to_i64_lossy() as u64);
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    }
}

fn neg_op(ty: ScalarType, a: Value) -> Value {
    match ty {
        ScalarType::F32 => Value::F32(-(a.to_f64_lossy() as f32)),
        ScalarType::F64 => Value::F64(-a.to_f64_lossy()),
        ScalarType::I32 => Value::I32((a.to_i64_lossy() as i32).wrapping_neg()),
        ScalarType::U32 => Value::U32((a.to_i64_lossy() as u32).wrapping_neg()),
        ScalarType::I64 => Value::I64(a.to_i64_lossy().wrapping_neg()),
        ScalarType::U64 => Value::U64((a.to_i64_lossy() as u64).wrapping_neg()),
        ScalarType::Bool => Value::I32(-i64::from(a.to_i64_lossy() != 0) as i32),
    }
}

fn math1(m: Math1, ty: ScalarType, a: Value) -> Value {
    if ty.is_integer() {
        // Only Abs reaches here for integers (sema guarantees).
        let x = a.to_i64_lossy();
        return int_value(x.wrapping_abs(), ty);
    }
    let x = a.to_f64_lossy();
    let r = match m {
        Math1::Sqrt => x.sqrt(),
        Math1::Rsqrt => 1.0 / x.sqrt(),
        Math1::Abs => x.abs(),
        Math1::Exp => x.exp(),
        Math1::Log => x.ln(),
        Math1::Log2 => x.log2(),
        Math1::Sin => x.sin(),
        Math1::Cos => x.cos(),
        Math1::Tan => x.tan(),
        Math1::Floor => x.floor(),
        Math1::Ceil => x.ceil(),
    };
    if ty == ScalarType::F32 {
        Value::F32(r as f32)
    } else {
        Value::F64(r)
    }
}

fn math2(m: Math2, ty: ScalarType, a: Value, b: Value) -> Value {
    if ty.is_integer() {
        let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
        let unsigned = matches!(ty, ScalarType::U32 | ScalarType::U64);
        let r = match m {
            Math2::Min => {
                if unsigned {
                    (x as u64).min(y as u64) as i64
                } else {
                    x.min(y)
                }
            }
            Math2::Max => {
                if unsigned {
                    (x as u64).max(y as u64) as i64
                } else {
                    x.max(y)
                }
            }
            Math2::Pow | Math2::Fmod => {
                // Sema types pow/fmod as floats, so this is unreachable.
                unreachable!("float-only builtin with integer type")
            }
        };
        return int_value(r, ty);
    }
    let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
    let r = match m {
        Math2::Pow => x.powf(y),
        Math2::Min => x.min(y),
        Math2::Max => x.max(y),
        Math2::Fmod => x % y,
    };
    if ty == ScalarType::F32 {
        Value::F32(r as f32)
    } else {
        Value::F64(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn run(
        src: &str,
        kernel: &str,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let p = compile(src).expect("compile");
        let k = p.kernel(kernel).expect("kernel");
        run_ndrange(k, args, buffers, range)
    }

    /// Compiles with `WarnOnly` analysis: tests of the VM's *dynamic*
    /// oracles need kernels the static analyzer would reject at build time.
    fn run_warn(
        src: &str,
        kernel: &str,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
        cfg: Option<&CheckConfig>,
    ) -> Result<ExecStats, ExecError> {
        let opts = crate::CompileOptions {
            analysis: crate::AnalysisMode::WarnOnly,
        };
        let p = crate::compile_with_options(src, &opts).expect("compile");
        let k = p.kernel(kernel).expect("kernel");
        match cfg {
            Some(c) => run_ndrange_checked(k, args, buffers, range, c),
            None => run_ndrange(k, args, buffers, range),
        }
    }

    #[test]
    fn vector_add() {
        let src = r#"__kernel void vadd(__global const float* a, __global const float* b,
                                        __global float* c, int n) {
            int i = get_global_id(0);
            if (i < n) c[i] = a[i] + b[i];
        }"#;
        let mut bufs = vec![
            GlobalBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0]),
            GlobalBuffer::from_f32(&[10.0, 20.0, 30.0, 40.0]),
            GlobalBuffer::zeroed(16),
        ];
        let args = [
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(4),
        ];
        let stats = run(src, "vadd", &args, &mut bufs, &NdRange::linear(4, 2)).unwrap();
        assert_eq!(bufs[2].as_f32(), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(stats.work_items, 4);
        assert_eq!(stats.work_groups, 2);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn guarded_tail_is_not_written() {
        let src = r#"__kernel void inc(__global int* a, int n) {
            int i = get_global_id(0);
            if (i < n) a[i] = a[i] + 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[5, 5, 5, 5])];
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(src, "inc", &args, &mut bufs, &NdRange::linear(4, 4)).unwrap();
        assert_eq!(bufs[0].as_i32(), vec![6, 6, 6, 5]);
    }

    #[test]
    fn loops_and_accumulation() {
        let src = r#"__kernel void rowsum(__global const float* m, __global float* out, int cols) {
            int r = get_global_id(0);
            float acc = 0.0f;
            for (int c = 0; c < cols; c++) acc += m[r * cols + c];
            out[r] = acc;
        }"#;
        let mut bufs = vec![
            GlobalBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            GlobalBuffer::zeroed(8),
        ];
        let args = [
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_i32(3),
        ];
        run(src, "rowsum", &args, &mut bufs, &NdRange::linear(2, 1)).unwrap();
        assert_eq!(bufs[1].as_f32(), vec![6.0, 15.0]);
    }

    #[test]
    fn barrier_synchronizes_local_memory() {
        // Each item writes its id into local memory; after the barrier,
        // item reads its neighbour's slot (reversed), exposing whether the
        // barrier actually ordered the writes before the reads.
        let src = r#"__kernel void rev(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            int n = get_local_size(0);
            tmp[l] = l * 10;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[n - 1 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        run(
            src,
            "rev",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![70, 60, 50, 40, 30, 20, 10, 0]);
    }

    #[test]
    fn barrier_releases_are_counted_per_group() {
        let src = r#"__kernel void sync(__global int* out) {
            __local int tmp[4];
            int l = get_local_id(0);
            tmp[l] = l;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        let stats = run(
            src,
            "sync",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 4),
        )
        .unwrap();
        assert_eq!(stats.barriers, 2, "one release per work-group");
        // A barrier-free launch reports none.
        let src = "__kernel void id(__global int* out) { out[get_global_id(0)] = 1; }";
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        let stats = run(
            src,
            "id",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 4),
        )
        .unwrap();
        assert_eq!(stats.barriers, 0);
    }

    #[test]
    fn two_dimensional_ids() {
        let src = r#"__kernel void coords(__global int* out, int width) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * width + x] = x * 100 + y;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(6 * 4)];
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(
            src,
            "coords",
            &args,
            &mut bufs,
            &NdRange::d2([3, 2], [1, 1]),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![0, 100, 200, 1, 101, 201]);
    }

    #[test]
    fn local_2d_array_tiling() {
        let src = r#"__kernel void transpose4(__global const float* in, __global float* out) {
            __local float tile[4][4];
            int x = get_local_id(0);
            int y = get_local_id(1);
            tile[y][x] = in[y * 4 + x];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[x * 4 + y] = tile[y][x];
        }"#;
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut bufs = vec![GlobalBuffer::from_f32(&input), GlobalBuffer::zeroed(64)];
        run(
            src,
            "transpose4",
            &[ArgValue::global(0), ArgValue::global(1)],
            &mut bufs,
            &NdRange::d2([4, 4], [4, 4]),
        )
        .unwrap();
        let out = bufs[1].as_f32();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out[x * 4 + y], (y * 4 + x) as f32);
            }
        }
    }

    #[test]
    fn dynamic_local_argument() {
        let src = r#"__kernel void scan2(__global int* data, __local int* scratch) {
            int l = get_local_id(0);
            scratch[l] = data[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            int n = get_local_size(0);
            int sum = 0;
            for (int i = 0; i <= l; i++) sum += scratch[i];
            data[get_global_id(0)] = sum;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[1, 2, 3, 4])];
        let args = [ArgValue::global(0), ArgValue::local_bytes(4 * 4)];
        run(src, "scan2", &args, &mut bufs, &NdRange::linear(4, 4)).unwrap();
        assert_eq!(bufs[0].as_i32(), vec![1, 3, 6, 10]);
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let src = r#"__kernel void oob(__global int* a) { a[0] = a[99]; }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[0, 1])];
        let err = run(
            src,
            "oob",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("out-of-bounds"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let src = r#"__kernel void dz(__global int* a) { a[0] = a[1] / a[0]; }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[0, 1])];
        let err = run(
            src,
            "dz",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("division by zero"));
    }

    #[test]
    fn barrier_divergence_is_an_error() {
        let src = r#"__kernel void div(__global int* a) {
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            a[get_global_id(0)] = 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        let err = run_warn(
            src,
            "div",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(2, 2),
            None,
        )
        .unwrap_err();
        assert!(err.message().contains("divergence"));
        assert_eq!(err.kind(), ExecErrorKind::BarrierDivergence);
        // The error names where the waiting items are parked.
        assert!(err.message().contains("line 2"), "{}", err.message());
    }

    #[test]
    fn waiting_at_different_barriers_is_divergence() {
        // Both items reach *a* barrier, but not the *same* one; releasing
        // them together would be wrong (real devices deadlock here).
        let src = r#"__kernel void twob(__global int* a) {
            if (get_local_id(0) == 0) {
                barrier(CLK_LOCAL_MEM_FENCE);
            } else {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            a[get_global_id(0)] = 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        let err = run_warn(
            src,
            "twob",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(2, 2),
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::BarrierDivergence);
        assert!(
            err.message().contains("different barriers"),
            "{}",
            err.message()
        );
        assert!(err.message().contains("line 3"), "{}", err.message());
        assert!(err.message().contains("line 5"), "{}", err.message());
    }

    #[test]
    fn checked_mode_detects_local_race() {
        // Every item stores its own id to tmp[0]: a classic same-element
        // different-values race the static analyzer also flags.
        let src = r#"__kernel void race(__global int* out) {
            __local int tmp[1];
            tmp[0] = get_local_id(0);
            out[get_global_id(0)] = tmp[0];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(16)];
        let err = run_warn(
            src,
            "race",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(4, 4),
            Some(&CheckConfig::default()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::LocalRace);
        assert!(err.message().contains("data race"), "{}", err.message());
    }

    #[test]
    fn checked_mode_detects_unsynchronized_read() {
        // Item reads its neighbour's slot with no barrier in between.
        let src = r#"__kernel void xread(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            tmp[l] = l + 1;
            out[get_global_id(0)] = tmp[7 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(32)];
        let err = run_warn(
            src,
            "xread",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
            Some(&CheckConfig::default()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::LocalRace);
        assert!(err.message().contains("reads"), "{}", err.message());
    }

    #[test]
    fn checked_mode_accepts_barrier_separated_accesses() {
        // The `rev` kernel from `barrier_synchronizes_local_memory` is
        // clean: the barrier resets the oracle's writer sets.
        let src = r#"__kernel void rev(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            int n = get_local_size(0);
            tmp[l] = l * 10;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[n - 1 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        run_warn(
            src,
            "rev",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
            Some(&CheckConfig::default()),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![70, 60, 50, 40, 30, 20, 10, 0]);
    }

    #[test]
    fn checked_mode_accepts_same_value_stores() {
        // All items store the same constant to tmp[0]: benign by the
        // same rule the static analyzer uses.
        let src = r#"__kernel void bcast(__global int* out) {
            __local int tmp[1];
            tmp[0] = 42;
            out[get_global_id(0)] = tmp[0];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(16)];
        run_warn(
            src,
            "bcast",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(4, 4),
            Some(&CheckConfig::default()),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![42, 42, 42, 42]);
    }

    #[test]
    fn checked_mode_budget_stops_runaway_loop() {
        let src = r#"__kernel void spin(__global int* out) {
            int x = 0;
            while (x < 10) { x = x - 1; }
            out[0] = x;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let cfg = CheckConfig {
            max_instructions: 10_000,
            detect_races: true,
        };
        let err = run_warn(
            src,
            "spin",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
            Some(&cfg),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::BudgetExhausted);
        assert!(err.message().contains("budget"), "{}", err.message());
    }

    #[test]
    fn arg_count_mismatch_is_an_error() {
        let src = r#"__kernel void two(__global int* a, int n) { a[0] = n; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "two",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("expects 2 arguments"));
    }

    #[test]
    fn arg_kind_mismatch_is_an_error() {
        let src = r#"__kernel void two(__global int* a, int n) { a[0] = n; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "two",
            &[ArgValue::from_i32(1), ArgValue::from_i32(2)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("does not match"));
    }

    #[test]
    fn scalar_args_are_coerced_to_param_type() {
        let src = r#"__kernel void put(__global float* a, float v) { a[0] = v; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        // Pass an int where a float is expected.
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(src, "put", &args, &mut bufs, &NdRange::linear(1, 1)).unwrap();
        assert_eq!(bufs[0].as_f32(), vec![3.0]);
    }

    #[test]
    fn nonuniform_local_size_rejected() {
        let src = r#"__kernel void f(__global int* a) { a[0] = 1; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "f",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(5, 2),
        )
        .unwrap_err();
        assert!(err.message().contains("does not divide"));
    }

    #[test]
    fn math_builtins() {
        let src = r#"__kernel void m(__global float* a) {
            a[0] = sqrt(a[0]);
            a[1] = fmax(a[1], 2.5f);
            a[2] = pow(a[2], 2.0f);
            a[3] = fabs(a[3]);
            a[4] = clamp(a[4], 0.0f, 1.0f);
        }"#;
        let mut bufs = vec![GlobalBuffer::from_f32(&[16.0, 1.0, 3.0, -2.0, 7.0])];
        run(
            src,
            "m",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_f32(), vec![4.0, 2.5, 9.0, 2.0, 1.0]);
    }

    #[test]
    fn integer_min_max_abs() {
        let src = r#"__kernel void m(__global int* a) {
            a[0] = min(a[0], a[1]);
            a[1] = max(a[1], 100);
            a[2] = abs(a[2]);
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[7, 3, -9])];
        run(
            src,
            "m",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![3, 100, 9]);
    }

    #[test]
    fn while_and_do_while() {
        let src = r#"__kernel void w(__global int* a) {
            int x = 0;
            while (x < 5) x++;
            int y = 0;
            do { y += 2; } while (y < 1);
            a[0] = x;
            a[1] = y;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        run(
            src,
            "w",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![5, 2]);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"__kernel void bc(__global int* a) {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 8) break;
                sum += i;
            }
            a[0] = sum; // 1+3+5+7 = 16
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        run(
            src,
            "bc",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![16]);
    }

    #[test]
    fn ternary_and_logical_ops() {
        let src = r#"__kernel void t(__global int* a) {
            int x = a[0];
            a[1] = (x > 0 && x < 10) ? 1 : 0;
            a[2] = (x < 0 || x == 5) ? 7 : 8;
            a[3] = !(x == 5) ? 100 : 200;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[5, 0, 0, 0])];
        run(
            src,
            "t",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![5, 1, 7, 200]);
    }

    #[test]
    fn unsigned_comparison_uses_unsigned_order() {
        let src = r#"__kernel void u(__global uint* a) {
            uint big = 0xFFFFFFFFu;
            a[0] = (big > 1u) ? 1u : 0u;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_u32(&[0])];
        run(
            src,
            "u",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_u32(), vec![1]);
    }

    #[test]
    fn pointer_offset_arithmetic() {
        let src = r#"__kernel void p(__global float* a, int off) {
            __global float* q = a;
            q = q + off;
            q[0] = 42.0f;
        }"#;
        // Pointer variables are declared via parameters only in the subset;
        // this uses a pointer parameter reassignment instead.
        let src2 = r#"__kernel void p(__global float* a, int off) {
            a = a + off;
            a[0] = 42.0f;
        }"#;
        let _ = src;
        let mut bufs = vec![GlobalBuffer::from_f32(&[0.0, 0.0, 0.0])];
        let args = [ArgValue::global(0), ArgValue::from_i32(2)];
        run(src2, "p", &args, &mut bufs, &NdRange::linear(1, 1)).unwrap();
        assert_eq!(bufs[0].as_f32(), vec![0.0, 0.0, 42.0]);
    }

    #[test]
    fn stats_count_instructions() {
        let src = r#"__kernel void s(__global int* a) { a[get_global_id(0)] = 1; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4 * 8)];
        let one = run(
            src,
            "s",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        let eight = run(
            src,
            "s",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 1),
        )
        .unwrap();
        assert_eq!(eight.instructions, one.instructions * 8);
    }
}
