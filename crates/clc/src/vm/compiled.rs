//! The compiled execution engine.
//!
//! Lowers a kernel's bytecode **once** into statement-level superops:
//! within each basic block the operand stack is abstract-interpreted at
//! lowering time, rebuilding the expression trees the front end
//! originally flattened. Each effectful instruction (store, branch,
//! barrier, return) becomes a single op that evaluates its whole
//! operand tree directly — no runtime operand stack exists at all.
//! Values that cross a block seam are spilled to canonical temporary
//! slots appended after the kernel's declared slots, so control-flow
//! joins (short-circuit booleans, conditional expressions) still see
//! one well-defined location per stack depth. Lowered code is cached
//! process-wide keyed by the instruction stream, so repeated launches
//! of one kernel pay lowering exactly once.
//!
//! Observational equivalence with the reference interpreter is a hard
//! requirement (the differential proptests assert byte-identical
//! buffers, identical [`ExecStats`] and identical errors):
//!
//! * every value transformation funnels through the same
//!   [`super::ops`] helpers the interpreter uses, and trees evaluate
//!   operands in original push order;
//! * each op retires a contiguous range of `covers` original
//!   instructions, so instruction counts match exactly on every path;
//! * deferral never reorders observable failures: before any op that
//!   can fail executes, pending trees containing fallible work are
//!   spilled in push order, pending memory reads are spilled before
//!   any memory write, and pending reads of a slot are spilled before
//!   that slot is overwritten;
//! * control flow only ever enters at block seams, where a pc → op
//!   index table gives the exact entry point, and `item.pc` remains a
//!   bytecode pc so barrier-divergence diagnostics are identical;
//! * items run under the same pass-based round-robin group schedule
//!   ([`interp::build_items`] / [`interp::barrier_stall_check`]).

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::bytecode::{BinKind, CmpKind, CompiledKernel, Geom, Instr, Math1, Math2};
use crate::types::ScalarType;

use super::interp::{barrier_stall_check, build_items, Item, ItemStatus};
use super::ops::*;
use super::*;

/// What an op tells the dispatch loop to do next.
pub(super) enum Step {
    /// Fall through to the next op.
    Next,
    /// Transfer control to an absolute bytecode pc.
    Jump(u32),
    /// Suspend the item at a barrier.
    Barrier,
    /// The item finished.
    Done,
}

/// A compiled op: closure plus how many original instructions it
/// retires. Spill helper ops retire zero; each instruction is retired
/// by exactly one op on any executed path.
type OpFn =
    Box<dyn for<'a, 'm> Fn(&mut Frame<'a, 'm>, &[Node]) -> Result<Step, ExecError> + Send + Sync>;

struct Op {
    run: OpFn,
    covers: u32,
}

/// A kernel lowered to superop form.
pub(super) struct CompiledCode {
    /// Dense op sequence (several ops can share one bytecode position).
    ops: Vec<Op>,
    /// Arena of expression-tree nodes referenced by the ops.
    nodes: Vec<Node>,
    /// For every bytecode pc that control can enter (block seams,
    /// barrier resume points), the op index to start at.
    ip_at: Vec<u32>,
    /// Slots each item needs: declared slots plus spill temporaries.
    min_slots: u32,
    /// Whether the bytecode contains any `Barrier`. Barrier-free
    /// kernels run items one at a time with a reused activation record
    /// instead of materializing the whole group.
    has_barrier: bool,
    /// Lowering bailed (non-reconstructible stack shapes); execute via
    /// the interpreter instead. Never taken for sema-produced bytecode.
    fallback: bool,
}

/// Per-activation execution context handed to every op closure.
pub(super) struct Frame<'a, 'm> {
    pub(super) slots: &'a mut Vec<Value>,
    pub(super) mem: &'a mut Memory<'m>,
    pub(super) arena: &'a mut [u8],
    pub(super) global_id: [u64; 3],
    pub(super) local_id: [u64; 3],
    pub(super) group_id: [u64; 3],
    pub(super) num_groups: [u64; 3],
    pub(super) global: [u64; 3],
    pub(super) local: [u64; 3],
    pub(super) work_dim: u32,
}

/// How an engine reaches `__global` memory.
///
/// The serial paths hold the buffers exclusively; the parallel path
/// shares them between workers through [`SharedBufs`] raw views (the
/// effect prover guarantees the byte ranges workers touch are
/// disjoint — see `vm/parallel.rs`).
pub(super) enum Memory<'m> {
    Excl(&'m mut [GlobalBuffer]),
    Shared(&'m SharedBufs),
}

impl Memory<'_> {
    #[inline]
    fn load(&self, b: usize, elem: ScalarType, offset: i64) -> Result<Value, ExecError> {
        match self {
            Memory::Excl(bufs) => bufs
                .get(b)
                .ok_or_else(|| dangling_buffer(b))?
                .load(elem, offset),
            Memory::Shared(shared) => shared.load(b, elem, offset),
        }
    }

    #[inline]
    fn store(
        &mut self,
        b: usize,
        elem: ScalarType,
        offset: i64,
        v: &Value,
    ) -> Result<(), ExecError> {
        match self {
            Memory::Excl(bufs) => bufs
                .get_mut(b)
                .ok_or_else(|| dangling_buffer(b))?
                .store(elem, offset, v),
            Memory::Shared(shared) => shared.store(b, elem, offset, v),
        }
    }
}

/// Raw views of every global buffer, shareable across worker threads.
///
/// Access goes through raw pointers only — no `&mut` reference to the
/// underlying bytes is ever materialized while workers run, so the only
/// soundness requirement is the one the effect prover discharges:
/// no byte is written by one worker while another worker touches it.
pub(super) struct SharedBufs {
    bufs: Vec<RawBuf>,
}

struct RawBuf {
    ptr: *mut u8,
    len: usize,
}

// SAFETY: the raw pointers are only dereferenced on byte ranges the
// effect prover shows are disjoint between threads (`parallel_groups_safe`).
unsafe impl Send for SharedBufs {}
unsafe impl Sync for SharedBufs {}

impl SharedBufs {
    pub(super) fn new(buffers: &mut [GlobalBuffer]) -> SharedBufs {
        SharedBufs {
            bufs: buffers
                .iter_mut()
                .map(|b| {
                    let s = b.as_bytes_mut();
                    RawBuf {
                        ptr: s.as_mut_ptr(),
                        len: s.len(),
                    }
                })
                .collect(),
        }
    }

    fn load(&self, b: usize, elem: ScalarType, offset: i64) -> Result<Value, ExecError> {
        let rb = self.bufs.get(b).ok_or_else(|| dangling_buffer(b))?;
        let sz = elem.size_bytes();
        let off = checked_offset(offset, sz, rb.len)?;
        let mut tmp = [0u8; 8];
        // SAFETY: `off + sz <= rb.len` by `checked_offset`; disjointness
        // from concurrent writers is guaranteed by the parallel gate.
        unsafe { std::ptr::copy_nonoverlapping(rb.ptr.add(off), tmp.as_mut_ptr(), sz) };
        Ok(decode_scalar(&tmp[..sz], elem))
    }

    fn store(&self, b: usize, elem: ScalarType, offset: i64, v: &Value) -> Result<(), ExecError> {
        let rb = self.bufs.get(b).ok_or_else(|| dangling_buffer(b))?;
        let sz = elem.size_bytes();
        let off = checked_offset(offset, sz, rb.len)?;
        let mut tmp = [0u8; 8];
        write_scalar(&mut tmp[..sz], elem, v);
        // SAFETY: in-bounds per `checked_offset`; no other thread touches
        // these bytes per the parallel gate.
        unsafe { std::ptr::copy_nonoverlapping(tmp.as_ptr(), rb.ptr.add(off), sz) };
        Ok(())
    }
}

// --- compiled-local fast paths ---------------------------------------------
//
// The helpers below mirror the shared semantics in `ops.rs` / `vm/mod.rs`
// for the handful of type combinations the hot kernel loops actually hit,
// and fall back to the shared implementations for everything else — every
// error path goes through the shared code, so messages stay byte-identical.
// They exist only so the compiled engine's inner loops avoid uninlined
// calls; the interpreter never touches them and remains the frozen
// reference. `tests/engine_differential.rs` pins the equivalence.

/// [`bin_op`] with the F32/I32 common cases handled inline.
#[inline(always)]
fn bin_fast(k: BinKind, ty: ScalarType, a: Value, b: Value) -> Result<Value, ExecError> {
    match (a, b) {
        // `bin_op` computes F32 via `to_f64_lossy() as f32`, which
        // round-trips f32 operands exactly, so native f32 arithmetic is
        // bit-identical.
        (Value::F32(x), Value::F32(y)) if ty == ScalarType::F32 => match k {
            BinKind::Add => return Ok(Value::F32(x + y)),
            BinKind::Sub => return Ok(Value::F32(x - y)),
            BinKind::Mul => return Ok(Value::F32(x * y)),
            BinKind::Div => return Ok(Value::F32(x / y)),
            _ => {}
        },
        // Sign-extend → wrap in i64 → truncate equals native i32
        // wrapping arithmetic for these operators (not shifts/div).
        (Value::I32(x), Value::I32(y)) if ty == ScalarType::I32 => match k {
            BinKind::Add => return Ok(Value::I32(x.wrapping_add(y))),
            BinKind::Sub => return Ok(Value::I32(x.wrapping_sub(y))),
            BinKind::Mul => return Ok(Value::I32(x.wrapping_mul(y))),
            BinKind::And => return Ok(Value::I32(x & y)),
            BinKind::Or => return Ok(Value::I32(x | y)),
            BinKind::Xor => return Ok(Value::I32(x ^ y)),
            _ => {}
        },
        _ => {}
    }
    bin_op(k, ty, a, b)
}

/// [`cmp_op`] with the F32/I32 common cases handled inline.
#[inline(always)]
fn cmp_fast(k: CmpKind, ty: ScalarType, a: Value, b: Value) -> bool {
    match (a, b) {
        // Widening to i64 preserves order and equality.
        (Value::I32(x), Value::I32(y))
            if matches!(ty, ScalarType::Bool | ScalarType::I32 | ScalarType::I64) =>
        {
            match k {
                CmpKind::Eq => x == y,
                CmpKind::Ne => x != y,
                CmpKind::Lt => x < y,
                CmpKind::Le => x <= y,
                CmpKind::Gt => x > y,
                CmpKind::Ge => x >= y,
            }
        }
        // f32 → f64 is exact, so comparing in f32 matches f64.
        (Value::F32(x), Value::F32(y)) if ty.is_float() => match k {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        },
        _ => cmp_op(k, ty, a, b),
    }
}

/// [`Value::as_index`] with the I32 case (every loop induction variable)
/// handled inline.
#[inline(always)]
fn idx_fast(v: Value) -> Result<i64, ExecError> {
    if let Value::I32(x) = v {
        return Ok(i64::from(x));
    }
    v.as_index()
}

/// [`Value::as_ptr`] with the success case handled inline.
#[inline(always)]
fn ptr_fast(v: Value) -> Result<Ptr, ExecError> {
    if let Value::Ptr(p) = v {
        return Ok(p);
    }
    v.as_ptr()
}

/// [`math1`] with the F32 case handled inline: the shared helper widens
/// to f64, applies the op, and narrows — replayed here verbatim, minus
/// the call.
#[inline(always)]
fn math1_fast(m: Math1, ty: ScalarType, a: Value) -> Value {
    if ty == ScalarType::F32 {
        if let Value::F32(v) = a {
            let x = f64::from(v);
            let r = match m {
                Math1::Sqrt => x.sqrt(),
                Math1::Rsqrt => 1.0 / x.sqrt(),
                Math1::Abs => x.abs(),
                Math1::Exp => x.exp(),
                Math1::Log => x.ln(),
                Math1::Log2 => x.log2(),
                Math1::Sin => x.sin(),
                Math1::Cos => x.cos(),
                Math1::Tan => x.tan(),
                Math1::Floor => x.floor(),
                Math1::Ceil => x.ceil(),
            };
            return Value::F32(r as f32);
        }
    }
    math1(m, ty, a)
}

/// Local replica of `decode_scalar` so in-bounds loads stay inline.
#[inline(always)]
fn decode_fast(bytes: &[u8], elem: ScalarType) -> Value {
    match elem {
        ScalarType::Bool => Value::Bool(bytes[0] != 0),
        ScalarType::I32 => Value::I32(i32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::U32 => Value::U32(u32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::I64 => Value::I64(i64::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::U64 => Value::U64(u64::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::F32 => Value::F32(f32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::F64 => Value::F64(f64::from_le_bytes(bytes.try_into().expect("size"))),
    }
}

/// Local replica of `write_scalar` so in-bounds stores stay inline.
#[inline(always)]
fn write_fast(dst: &mut [u8], elem: ScalarType, v: &Value) {
    match (elem, v) {
        (ScalarType::Bool, Value::Bool(x)) => dst[0] = u8::from(*x),
        (ScalarType::I32, Value::I32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U32, Value::U32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::I64, Value::I64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U64, Value::U64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F32, Value::F32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F64, Value::F64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (elem, v) => unreachable!("type confusion storing {v:?} as {elem}"),
    }
}

#[inline(always)]
fn mem_load(f: &mut Frame<'_, '_>, p: Ptr, elem: ScalarType) -> Result<Value, ExecError> {
    // Fast path: an in-bounds global load from exclusively-held buffers.
    // The bounds test mirrors `checked_offset`; anything that would fail
    // it (negative index, multiply/add overflow, out of range) falls
    // through to the shared slow path for the canonical error message.
    if let (PtrSpace::Global(b), Memory::Excl(bufs)) = (p.space, &*f.mem) {
        if let Some(buf) = bufs.get(b) {
            let bytes = buf.as_bytes();
            let sz = elem.size_bytes();
            if p.offset >= 0 {
                if let Some(off) = (p.offset as usize).checked_mul(sz) {
                    if off.checked_add(sz).is_some_and(|end| end <= bytes.len()) {
                        return Ok(decode_fast(&bytes[off..off + sz], elem));
                    }
                }
            }
        }
    }
    match p.space {
        PtrSpace::Global(b) => f.mem.load(b, elem, p.offset),
        PtrSpace::Local => load_arena(f.arena, elem, p.offset),
    }
}

#[inline(always)]
fn mem_store(f: &mut Frame<'_, '_>, p: Ptr, elem: ScalarType, v: &Value) -> Result<(), ExecError> {
    // Same shape as the `mem_load` fast path, for exclusive global stores.
    if let (PtrSpace::Global(b), Memory::Excl(bufs)) = (p.space, &mut *f.mem) {
        if let Some(buf) = bufs.get_mut(b) {
            let sz = elem.size_bytes();
            let bytes = buf.as_bytes_mut();
            if p.offset >= 0 {
                if let Some(off) = (p.offset as usize).checked_mul(sz) {
                    if off.checked_add(sz).is_some_and(|end| end <= bytes.len()) {
                        write_fast(&mut bytes[off..off + sz], elem, v);
                        return Ok(());
                    }
                }
            }
        }
    }
    match p.space {
        PtrSpace::Global(b) => f.mem.store(b, elem, p.offset, v),
        PtrSpace::Local => store_arena(f.arena, elem, p.offset, v),
    }
}

#[inline]
fn query(f: &Frame<'_, '_>, g: Geom, dim: i64) -> Value {
    let d = (dim as usize).min(2);
    Value::U64(match g {
        Geom::GlobalId => f.global_id[d],
        Geom::LocalId => f.local_id[d],
        Geom::GroupId => f.group_id[d],
        Geom::GlobalSize => f.global[d],
        Geom::LocalSize => f.local[d],
        Geom::NumGroups => f.num_groups[d],
        Geom::WorkDim => u64::from(f.work_dim),
    })
}

// --- expression trees ------------------------------------------------------

/// Index into [`CompiledCode::nodes`].
type NodeId = u32;

/// One node of a reconstructed expression tree. Children are arena
/// indices, so trees are compact and sharing a subtree (`Dup` of a
/// spilled value) is a plain index copy.
#[derive(Clone, Copy)]
enum Node {
    /// Immediate resolved at lowering time (also pre-built local
    /// pointers from `PushLocalPtr`).
    Const(Value),
    /// Read a local slot (kernel slot or spill temporary).
    Slot(u32),
    /// Work-item geometry query; child is the dimension operand.
    Query(Geom, NodeId),
    Bin(BinKind, ScalarType, NodeId, NodeId),
    Cmp(CmpKind, ScalarType, NodeId, NodeId),
    Neg(ScalarType, NodeId),
    BitNot(ScalarType, NodeId),
    NotBool(NodeId),
    Cast(ScalarType, NodeId),
    Math1(Math1, ScalarType, NodeId),
    Math2(Math2, ScalarType, NodeId, NodeId),
    /// `(pointer, index)` — evaluation checks the index first, then the
    /// pointer, matching the interpreter's pop order.
    PtrAdd(NodeId, NodeId),
    LoadMem(ScalarType, NodeId),
    /// `PtrAdd` + `LoadMem` folded: `(elem, pointer, index)`. Checks
    /// run in the interpreter's order (index, then pointer, then the
    /// bounds-checked load).
    LoadIdx(ScalarType, NodeId, NodeId),
    /// `LoadIdx` whose index is itself a binary —
    /// `(elem, op, index type, pointer, a, b)` for `p[a op b]`, the
    /// strided-access shape (`vars[slice_len + c]`).
    LoadIdxB(ScalarType, BinKind, ScalarType, NodeId, NodeId, NodeId),
    /// `LoadIdx` whose index is a fused binary pair —
    /// `(elem, outer, inner, index type, pointer, a, b, c)` for
    /// `p[outer(inner(a, b), c)]`, the row-major address shape
    /// (`base[i * n + k]`).
    LoadIdxMA(
        ScalarType,
        BinKind,
        BinKind,
        ScalarType,
        NodeId,
        NodeId,
        NodeId,
        NodeId,
    ),
    /// Two binaries at one scalar type fused into a single node:
    /// `outer(inner(a, b), c)`. Evaluation replays the exact `bin_op`
    /// sequence of the unfused pair, one tree dispatch cheaper. This is
    /// the index-arithmetic shape (`i * n + k`).
    BinLL(BinKind, BinKind, ScalarType, NodeId, NodeId, NodeId),
    /// Mirrored fusion: `outer(c, inner(a, b))` — the accumulate shape
    /// (`acc + x * y`).
    BinLR(BinKind, BinKind, ScalarType, NodeId, NodeId, NodeId),
    /// The abstract stack was empty where bytecode consumed a value;
    /// evaluating reproduces the interpreter's underflow error.
    Underflow,
}

/// Resolves an operand, short-circuiting the leaf kinds so the common
/// slot/immediate fetches cost no function call.
#[inline(always)]
fn operand(nodes: &[Node], id: NodeId, f: &mut Frame<'_, '_>) -> Result<Value, ExecError> {
    match nodes[id as usize] {
        Node::Const(v) => Ok(v),
        Node::Slot(s) => Ok(f.slots[s as usize]),
        _ => eval(nodes, id, f),
    }
}

/// Like [`operand`], but also inlines the fused-load family — the
/// dominant interior shapes of accumulate statements (`acc += p[i] *
/// q[j]`). Used inside the specialized op-root closures, where the
/// larger inlined body is paid once per emitted op rather than once
/// per `eval` call site.
#[inline(always)]
fn operand_load(nodes: &[Node], id: NodeId, f: &mut Frame<'_, '_>) -> Result<Value, ExecError> {
    match nodes[id as usize] {
        Node::Const(v) => Ok(v),
        Node::Slot(s) => Ok(f.slots[s as usize]),
        Node::LoadIdx(elem, p, i) => load_idx(nodes, elem, p, i, f),
        Node::LoadIdxB(elem, k, ity, p, a, b) => load_idx_b(nodes, elem, k, ity, p, a, b, f),
        Node::LoadIdxMA(elem, ko, ki, ity, p, a, b, c) => {
            load_idx_ma(nodes, elem, ko, ki, ity, p, a, b, c, f)
        }
        _ => eval(nodes, id, f),
    }
}

/// Body of [`Node::LoadIdx`]: checks and loads in the interpreter's
/// order (index, then pointer, then the bounds-checked load).
#[inline(always)]
fn load_idx(
    nodes: &[Node],
    elem: ScalarType,
    p: NodeId,
    i: NodeId,
    f: &mut Frame<'_, '_>,
) -> Result<Value, ExecError> {
    let pv = operand(nodes, p, f)?;
    let iv = operand(nodes, i, f)?;
    let idx = idx_fast(iv)?;
    let pp = ptr_fast(pv)?;
    let pp = Ptr {
        offset: pp.offset + idx,
        ..pp
    };
    mem_load(f, pp, elem)
}

/// Body of [`Node::LoadIdxB`]: `p[a op b]` with the exact unfused
/// `bin_op` and check order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn load_idx_b(
    nodes: &[Node],
    elem: ScalarType,
    k: BinKind,
    ity: ScalarType,
    p: NodeId,
    a: NodeId,
    b: NodeId,
    f: &mut Frame<'_, '_>,
) -> Result<Value, ExecError> {
    let pv = operand(nodes, p, f)?;
    let x = operand(nodes, a, f)?;
    let y = operand(nodes, b, f)?;
    let idx = idx_fast(bin_fast(k, ity, x, y)?)?;
    let pp = ptr_fast(pv)?;
    let pp = Ptr {
        offset: pp.offset + idx,
        ..pp
    };
    mem_load(f, pp, elem)
}

/// Body of [`Node::LoadIdxMA`]: `p[outer(inner(a, b), c)]` with the
/// exact unfused `bin_op` and check order.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn load_idx_ma(
    nodes: &[Node],
    elem: ScalarType,
    ko: BinKind,
    ki: BinKind,
    ity: ScalarType,
    p: NodeId,
    a: NodeId,
    b: NodeId,
    c: NodeId,
    f: &mut Frame<'_, '_>,
) -> Result<Value, ExecError> {
    let pv = operand(nodes, p, f)?;
    let x = operand(nodes, a, f)?;
    let y = operand(nodes, b, f)?;
    let m = bin_fast(ki, ity, x, y)?;
    let z = operand(nodes, c, f)?;
    let idx = idx_fast(bin_fast(ko, ity, m, z)?)?;
    let pp = ptr_fast(pv)?;
    let pp = Ptr {
        offset: pp.offset + idx,
        ..pp
    };
    mem_load(f, pp, elem)
}

/// Evaluates a tree. Operand subtrees evaluate in original push order,
/// so the first observable failure is the same one the interpreter hits.
fn eval(nodes: &[Node], id: NodeId, f: &mut Frame<'_, '_>) -> Result<Value, ExecError> {
    match nodes[id as usize] {
        Node::Const(v) => Ok(v),
        Node::Slot(s) => Ok(f.slots[s as usize]),
        Node::Query(g, dim) => {
            let d = idx_fast(operand(nodes, dim, f)?)?;
            Ok(query(f, g, d))
        }
        Node::Bin(k, ty, a, b) => {
            let x = operand(nodes, a, f)?;
            let y = operand(nodes, b, f)?;
            bin_fast(k, ty, x, y)
        }
        Node::BinLL(ko, ki, ty, a, b, c) => {
            let x = operand(nodes, a, f)?;
            let y = operand(nodes, b, f)?;
            let m = bin_fast(ki, ty, x, y)?;
            let z = operand(nodes, c, f)?;
            bin_fast(ko, ty, m, z)
        }
        Node::BinLR(ko, ki, ty, a, b, c) => {
            let z = operand(nodes, c, f)?;
            let x = operand(nodes, a, f)?;
            let y = operand(nodes, b, f)?;
            let m = bin_fast(ki, ty, x, y)?;
            bin_fast(ko, ty, z, m)
        }
        Node::Cmp(k, ty, a, b) => {
            let x = operand(nodes, a, f)?;
            let y = operand(nodes, b, f)?;
            Ok(Value::Bool(cmp_fast(k, ty, x, y)))
        }
        Node::Neg(ty, a) => Ok(neg_op(ty, operand(nodes, a, f)?)),
        Node::BitNot(ty, a) => {
            let x = operand(nodes, a, f)?.to_i64_lossy();
            Ok(int_value(!x, ty))
        }
        Node::NotBool(a) => Ok(Value::Bool(!operand(nodes, a, f)?.as_bool()?)),
        Node::Cast(to, a) => Ok(operand(nodes, a, f)?.cast(to)),
        Node::Math1(m, ty, a) => Ok(math1_fast(m, ty, operand(nodes, a, f)?)),
        Node::Math2(m, ty, a, b) => {
            let x = operand(nodes, a, f)?;
            let y = operand(nodes, b, f)?;
            Ok(math2(m, ty, x, y))
        }
        Node::PtrAdd(p, i) => {
            let pv = operand(nodes, p, f)?;
            let iv = operand(nodes, i, f)?;
            let idx = idx_fast(iv)?;
            let pp = ptr_fast(pv)?;
            Ok(Value::Ptr(Ptr {
                offset: pp.offset + idx,
                ..pp
            }))
        }
        Node::LoadMem(elem, p) => {
            let pp = ptr_fast(operand(nodes, p, f)?)?;
            mem_load(f, pp, elem)
        }
        Node::LoadIdx(elem, p, i) => load_idx(nodes, elem, p, i, f),
        Node::LoadIdxB(elem, k, ity, p, a, b) => load_idx_b(nodes, elem, k, ity, p, a, b, f),
        Node::LoadIdxMA(elem, ko, ki, ity, p, a, b, c) => {
            load_idx_ma(nodes, elem, ko, ki, ity, p, a, b, c, f)
        }
        Node::Underflow => Err(ExecError::new("operand stack underflow")),
    }
}

/// Whether `bin_op` can return an error for this kind/type pair
/// (integer division by zero, or an integer-only operator applied to a
/// float type).
fn bin_can_err(k: BinKind, ty: ScalarType) -> bool {
    if ty.is_float() {
        !matches!(k, BinKind::Add | BinKind::Sub | BinKind::Mul | BinKind::Div)
    } else {
        matches!(k, BinKind::Div | BinKind::Rem)
    }
}

/// Whether evaluating the tree can produce an `ExecError`. Used to keep
/// deferred work from reordering observable failures.
fn is_fallible(nodes: &[Node], id: NodeId) -> bool {
    match nodes[id as usize] {
        Node::Const(_) | Node::Slot(_) => false,
        Node::Underflow
        | Node::Query(..)
        | Node::NotBool(_)
        | Node::PtrAdd(..)
        | Node::LoadMem(..)
        | Node::LoadIdx(..)
        | Node::LoadIdxB(..)
        | Node::LoadIdxMA(..) => true,
        Node::Bin(k, ty, a, b) => {
            bin_can_err(k, ty) || is_fallible(nodes, a) || is_fallible(nodes, b)
        }
        Node::BinLL(ko, ki, ty, a, b, c) | Node::BinLR(ko, ki, ty, a, b, c) => {
            bin_can_err(ko, ty)
                || bin_can_err(ki, ty)
                || is_fallible(nodes, a)
                || is_fallible(nodes, b)
                || is_fallible(nodes, c)
        }
        Node::Cmp(_, _, a, b) | Node::Math2(_, _, a, b) => {
            is_fallible(nodes, a) || is_fallible(nodes, b)
        }
        Node::Neg(_, a) | Node::BitNot(_, a) | Node::Cast(_, a) | Node::Math1(_, _, a) => {
            is_fallible(nodes, a)
        }
    }
}

/// Whether the tree reads memory (global or `__local`); such trees must
/// not be deferred across a memory write.
fn reads_mem(nodes: &[Node], id: NodeId) -> bool {
    match nodes[id as usize] {
        Node::Const(_) | Node::Slot(_) | Node::Underflow => false,
        Node::LoadMem(..) | Node::LoadIdx(..) | Node::LoadIdxB(..) | Node::LoadIdxMA(..) => true,
        Node::Query(_, a)
        | Node::Neg(_, a)
        | Node::BitNot(_, a)
        | Node::NotBool(a)
        | Node::Cast(_, a)
        | Node::Math1(_, _, a) => reads_mem(nodes, a),
        Node::Bin(_, _, a, b)
        | Node::Cmp(_, _, a, b)
        | Node::Math2(_, _, a, b)
        | Node::PtrAdd(a, b) => reads_mem(nodes, a) || reads_mem(nodes, b),
        Node::BinLL(_, _, _, a, b, c) | Node::BinLR(_, _, _, a, b, c) => {
            reads_mem(nodes, a) || reads_mem(nodes, b) || reads_mem(nodes, c)
        }
    }
}

/// Whether the tree reads local slot `s`; such trees must not be
/// deferred across a store to `s`.
fn reads_slot(nodes: &[Node], id: NodeId, s: u32) -> bool {
    match nodes[id as usize] {
        Node::Const(_) | Node::Underflow => false,
        Node::Slot(x) => x == s,
        Node::Query(_, a)
        | Node::Neg(_, a)
        | Node::BitNot(_, a)
        | Node::NotBool(a)
        | Node::Cast(_, a)
        | Node::Math1(_, _, a) => reads_slot(nodes, a, s),
        Node::LoadMem(_, a) => reads_slot(nodes, a, s),
        Node::Bin(_, _, a, b)
        | Node::Cmp(_, _, a, b)
        | Node::Math2(_, _, a, b)
        | Node::PtrAdd(a, b)
        | Node::LoadIdx(_, a, b) => reads_slot(nodes, a, s) || reads_slot(nodes, b, s),
        Node::BinLL(_, _, _, a, b, c)
        | Node::BinLR(_, _, _, a, b, c)
        | Node::LoadIdxB(_, _, _, a, b, c) => {
            reads_slot(nodes, a, s) || reads_slot(nodes, b, s) || reads_slot(nodes, c, s)
        }
        Node::LoadIdxMA(_, _, _, _, p, a, b, c) => {
            reads_slot(nodes, p, s)
                || reads_slot(nodes, a, s)
                || reads_slot(nodes, b, s)
                || reads_slot(nodes, c, s)
        }
    }
}

/// Branch step helper shared by the branch ops.
#[inline]
fn branch(cond: bool, on_true: bool, t: u32) -> Step {
    if cond == on_true {
        Step::Jump(t)
    } else {
        Step::Next
    }
}

// --- lowering --------------------------------------------------------------

struct Lowerer<'c> {
    code: &'c [Instr],
    ops: Vec<Op>,
    nodes: Vec<Node>,
    ip_at: Vec<u32>,
    /// Expected abstract-stack depth at each block seam, recorded the
    /// first time the seam is seen and verified on every other edge.
    entry_depth: Vec<Option<u32>>,
    /// The abstract operand stack: ids of pending (deferred) trees.
    pend: Vec<NodeId>,
    /// First bytecode pc not yet retired by an emitted op.
    retired: usize,
    /// First spill-temporary slot (one past the highest slot the
    /// bytecode references). The temp for abstract depth `d` is
    /// `temp_base + d`, the same on every path into a seam.
    temp_base: u32,
    max_depth: usize,
    /// False while scanning instructions that no control flow reaches
    /// (after an unconditional jump/return, until the next seam).
    live: bool,
    ok: bool,
}

impl Lowerer<'_> {
    fn node(&mut self, n: Node) -> NodeId {
        self.nodes.push(n);
        (self.nodes.len() - 1) as NodeId
    }

    fn push_id(&mut self, id: NodeId) {
        self.pend.push(id);
        self.max_depth = self.max_depth.max(self.pend.len());
    }

    fn push(&mut self, n: Node) {
        let id = self.node(n);
        self.push_id(id);
    }

    fn popn(&mut self) -> NodeId {
        match self.pend.pop() {
            Some(id) => id,
            None => self.node(Node::Underflow),
        }
    }

    /// Emits an op that retires every instruction up to and including
    /// `end_pc`.
    fn emit(&mut self, end_pc: usize, f: OpFn) {
        let covers = (end_pc + 1 - self.retired) as u32;
        self.retired = end_pc + 1;
        self.ops.push(Op { run: f, covers });
    }

    /// Emits a spill/helper op retiring nothing.
    fn emit_aux(&mut self, f: OpFn) {
        self.ops.push(Op { run: f, covers: 0 });
    }

    /// Emits a no-op retiring everything before `up_to` (deferred
    /// pushes dropped by `Pop`, values dead at a seam).
    fn retire_noop(&mut self, up_to: usize) {
        let covers = (up_to - self.retired) as u32;
        self.retired = up_to;
        self.ops.push(Op {
            run: Box::new(|_, _| Ok(Step::Next)),
            covers,
        });
    }

    /// Spills pending entry `i` to its canonical temp slot and replaces
    /// it with a read of that slot. Evaluation happens where the spill
    /// op executes, so callers spill bottom-up to preserve push order.
    fn flush_entry(&mut self, i: usize) {
        let canon = self.temp_base + i as u32;
        if let Node::Slot(s) = self.nodes[self.pend[i] as usize] {
            if s == canon {
                return;
            }
        }
        let src = self.pend[i];
        self.pend[i] = self.node(Node::Slot(canon));
        let slot = canon as usize;
        self.emit_aux(Box::new(move |f, nodes| {
            let v = eval(nodes, src, f)?;
            f.slots[slot] = v;
            Ok(Step::Next)
        }));
    }

    fn flush_all(&mut self) {
        for i in 0..self.pend.len() {
            self.flush_entry(i);
        }
    }

    /// Spills every pending tree containing fallible work (bottom-up,
    /// i.e. push order) so a following fallible op cannot fail first.
    fn flush_fallible(&mut self) {
        for i in 0..self.pend.len() {
            if is_fallible(&self.nodes, self.pend[i]) {
                self.flush_entry(i);
            }
        }
    }

    /// Lowers a conditional branch, specializing the dominant
    /// compare-and-branch loop-header shape.
    fn lower_branch(&mut self, pc: usize, t: u32, on_true: bool) {
        let c = self.popn();
        self.flush_all();
        self.check_target(t, self.pend.len() as u32);
        // A Cmp result is a freshly-built Bool: `as_bool` cannot fail,
        // so folding it into the branch preserves behavior exactly.
        if let Node::Cmp(k, ty, a, b) = self.nodes[c as usize] {
            self.emit(
                pc,
                Box::new(move |f, nodes| {
                    let x = operand_load(nodes, a, f)?;
                    let y = operand_load(nodes, b, f)?;
                    Ok(branch(cmp_fast(k, ty, x, y), on_true, t))
                }),
            );
        } else {
            self.emit(
                pc,
                Box::new(move |f, nodes| {
                    let v = operand(nodes, c, f)?.as_bool()?;
                    Ok(branch(v, on_true, t))
                }),
            );
        }
    }

    /// Records or verifies the abstract-stack depth on an edge into `t`.
    fn check_target(&mut self, t: u32, depth: u32) {
        let ti = t as usize;
        if ti >= self.entry_depth.len() {
            return; // jump past the end: falls off and completes
        }
        match self.entry_depth[ti] {
            None => self.entry_depth[ti] = Some(depth),
            Some(e) if e == depth => {}
            Some(_) => self.ok = false,
        }
    }

    /// Handles a block seam at `pc`: canonicalize live values into the
    /// per-depth temp slots and record the op index control enters at.
    fn boundary(&mut self, pc: usize) {
        if self.live {
            self.flush_all();
            if self.retired < pc {
                self.retire_noop(pc);
            }
            self.check_target(pc as u32, self.pend.len() as u32);
        } else {
            // Reached only by jumps: rebuild the abstract stack as
            // canonical slot reads at the recorded entry depth.
            let d = self.entry_depth[pc].unwrap_or(0);
            self.pend.clear();
            for i in 0..d {
                let canon = self.temp_base + i;
                self.push(Node::Slot(canon));
            }
            self.retired = pc;
            self.live = true;
        }
        self.ip_at[pc] = self.ops.len() as u32;
    }

    fn instr(&mut self, pc: usize) {
        if !self.live {
            // Unreachable instruction: the interpreter never executes
            // it either, so it must not be retired by any live op.
            self.retired = pc + 1;
            return;
        }
        match self.code[pc] {
            Instr::PushInt(v, ty) => self.push(Node::Const(int_value(v, ty))),
            Instr::PushFloat(v, ty) => self.push(Node::Const(if ty == ScalarType::F32 {
                Value::F32(v as f32)
            } else {
                Value::F64(v)
            })),
            Instr::PushBool(b) => self.push(Node::Const(Value::Bool(b))),
            Instr::PushLocalPtr { byte_offset, elem } => {
                self.push(Node::Const(Value::Ptr(Ptr {
                    space: PtrSpace::Local,
                    elem,
                    offset: (byte_offset as usize / elem.size_bytes()) as i64,
                })));
            }
            Instr::LoadLocal(s) => self.push(Node::Slot(u32::from(s))),
            Instr::Query(g) => {
                let d = self.popn();
                self.push(Node::Query(g, d));
            }
            Instr::Bin(k, ty) => {
                let b = self.popn();
                let a = self.popn();
                // Fuse a same-type child binary into one node. The
                // fused evaluation runs the identical `bin_op` sequence
                // in the identical order, so this is unobservable.
                match (self.nodes[a as usize], self.nodes[b as usize]) {
                    (Node::Bin(ki, ti, x, y), _) if ti == ty => {
                        self.push(Node::BinLL(k, ki, ty, x, y, b));
                    }
                    (_, Node::Bin(ki, ti, x, y)) if ti == ty => {
                        self.push(Node::BinLR(k, ki, ty, x, y, a));
                    }
                    _ => self.push(Node::Bin(k, ty, a, b)),
                }
            }
            Instr::Cmp(k, ty) => {
                let b = self.popn();
                let a = self.popn();
                self.push(Node::Cmp(k, ty, a, b));
            }
            Instr::Neg(ty) => {
                let a = self.popn();
                self.push(Node::Neg(ty, a));
            }
            Instr::BitNot(ty) => {
                let a = self.popn();
                self.push(Node::BitNot(ty, a));
            }
            Instr::NotBool => {
                let a = self.popn();
                self.push(Node::NotBool(a));
            }
            Instr::Cast { to, .. } => {
                let a = self.popn();
                self.push(Node::Cast(to, a));
            }
            Instr::CallMath1(m, ty) => {
                let a = self.popn();
                self.push(Node::Math1(m, ty, a));
            }
            Instr::CallMath2(m, ty) => {
                let b = self.popn();
                let a = self.popn();
                self.push(Node::Math2(m, ty, a, b));
            }
            Instr::PtrAdd => {
                let idx = self.popn();
                let p = self.popn();
                self.push(Node::PtrAdd(p, idx));
            }
            Instr::LoadMem(elem) => {
                let p = self.popn();
                // Fold the ubiquitous `base[index]` shape into one
                // node, absorbing a binary-shaped index too; the fused
                // evaluation keeps the exact check and `bin_op` order.
                if let Node::PtrAdd(pp, ii) = self.nodes[p as usize] {
                    match self.nodes[ii as usize] {
                        Node::Bin(k, ity, a, b) => {
                            self.push(Node::LoadIdxB(elem, k, ity, pp, a, b));
                        }
                        Node::BinLL(ko, ki, ity, a, b, c) => {
                            self.push(Node::LoadIdxMA(elem, ko, ki, ity, pp, a, b, c));
                        }
                        _ => self.push(Node::LoadIdx(elem, pp, ii)),
                    }
                } else {
                    self.push(Node::LoadMem(elem, p));
                }
            }
            Instr::Dup => match self.pend.last().copied() {
                None => {
                    // Replicate the interpreter's Dup-specific error.
                    self.emit(
                        pc,
                        Box::new(|_, _| Err(ExecError::new("stack underflow on Dup"))),
                    );
                }
                Some(id) => match self.nodes[id as usize] {
                    Node::Const(_) | Node::Slot(_) => self.push_id(id),
                    _ => {
                        // Materialize once, then share the slot read —
                        // re-evaluating an arbitrary tree could double
                        // a failure or observe an intervening store.
                        for i in 0..self.pend.len() - 1 {
                            if is_fallible(&self.nodes, self.pend[i]) {
                                self.flush_entry(i);
                            }
                        }
                        let last = self.pend.len() - 1;
                        self.flush_entry(last);
                        let id = self.pend[last];
                        self.push_id(id);
                    }
                },
            },
            Instr::Pop => {
                let n = self.popn();
                if is_fallible(&self.nodes, n) {
                    self.flush_fallible();
                    self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            eval(nodes, n, f)?;
                            Ok(Step::Next)
                        }),
                    );
                }
                // A pure dropped value is unobservable; its pushes are
                // retired by the next emitted op.
            }
            Instr::StoreLocal(s) => {
                let v = self.popn();
                let can_fail = is_fallible(&self.nodes, v);
                for i in 0..self.pend.len() {
                    let e = self.pend[i];
                    if reads_slot(&self.nodes, e, u32::from(s))
                        || (can_fail && is_fallible(&self.nodes, e))
                    {
                        self.flush_entry(i);
                    }
                }
                let slot = usize::from(s);
                // Specialize the hot roots so the op body starts one
                // recursion level down (operands inline via `operand`).
                match self.nodes[v as usize] {
                    Node::Const(c) => self.emit(
                        pc,
                        Box::new(move |f, _| {
                            f.slots[slot] = c;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::Slot(src) => self.emit(
                        pc,
                        Box::new(move |f, _| {
                            f.slots[slot] = f.slots[src as usize];
                            Ok(Step::Next)
                        }),
                    ),
                    Node::Bin(k, ty, a, b) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            let x = operand_load(nodes, a, f)?;
                            let y = operand_load(nodes, b, f)?;
                            f.slots[slot] = bin_fast(k, ty, x, y)?;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::BinLL(ko, ki, ty, a, b, c) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            let x = operand_load(nodes, a, f)?;
                            let y = operand_load(nodes, b, f)?;
                            let m = bin_fast(ki, ty, x, y)?;
                            let z = operand_load(nodes, c, f)?;
                            f.slots[slot] = bin_fast(ko, ty, m, z)?;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::BinLR(ko, ki, ty, a, b, c) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            let z = operand_load(nodes, c, f)?;
                            let x = operand_load(nodes, a, f)?;
                            let y = operand_load(nodes, b, f)?;
                            let m = bin_fast(ki, ty, x, y)?;
                            f.slots[slot] = bin_fast(ko, ty, z, m)?;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::LoadIdx(elem, p, i) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            f.slots[slot] = load_idx(nodes, elem, p, i, f)?;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::LoadIdxB(elem, k, ity, p, a, b) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            f.slots[slot] = load_idx_b(nodes, elem, k, ity, p, a, b, f)?;
                            Ok(Step::Next)
                        }),
                    ),
                    Node::LoadIdxMA(elem, ko, ki, ity, p, a, b, c) => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            f.slots[slot] = load_idx_ma(nodes, elem, ko, ki, ity, p, a, b, c, f)?;
                            Ok(Step::Next)
                        }),
                    ),
                    _ => self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            let val = eval(nodes, v, f)?;
                            f.slots[slot] = val;
                            Ok(Step::Next)
                        }),
                    ),
                }
            }
            Instr::StoreMem(elem) => {
                let v = self.popn();
                let p = self.popn();
                for i in 0..self.pend.len() {
                    let e = self.pend[i];
                    if is_fallible(&self.nodes, e) || reads_mem(&self.nodes, e) {
                        self.flush_entry(i);
                    }
                }
                // Fold a `base[index] = v` pointer: the PtrAdd checks
                // run before the value evaluates, as in the bytecode.
                if let Node::PtrAdd(pp, ii) = self.nodes[p as usize] {
                    self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            let pv = operand(nodes, pp, f)?;
                            let iv = operand(nodes, ii, f)?;
                            let idx = idx_fast(iv)?;
                            let ptr = ptr_fast(pv)?;
                            let ptr = Ptr {
                                offset: ptr.offset + idx,
                                ..ptr
                            };
                            let vv = operand_load(nodes, v, f)?;
                            mem_store(f, ptr, elem, &vv)?;
                            Ok(Step::Next)
                        }),
                    );
                } else {
                    self.emit(
                        pc,
                        Box::new(move |f, nodes| {
                            // Push order: the pointer tree was built first.
                            let pv = operand(nodes, p, f)?;
                            let vv = operand_load(nodes, v, f)?;
                            let ptr = ptr_fast(pv)?;
                            mem_store(f, ptr, elem, &vv)?;
                            Ok(Step::Next)
                        }),
                    );
                }
            }
            Instr::Jump(t) => {
                self.flush_all();
                self.check_target(t, self.pend.len() as u32);
                self.emit(pc, Box::new(move |_, _| Ok(Step::Jump(t))));
                self.pend.clear();
                self.live = false;
            }
            Instr::JumpIfFalse(t) => self.lower_branch(pc, t, false),
            Instr::JumpIfTrue(t) => self.lower_branch(pc, t, true),
            Instr::Barrier => {
                self.flush_all();
                self.emit(pc, Box::new(|_, _| Ok(Step::Barrier)));
                // Resumption re-enters at the op after the barrier.
                self.ip_at[pc + 1] = self.ops.len() as u32;
            }
            Instr::Return => {
                // Anything fallible still pending would have failed
                // before the interpreter reached this Return.
                self.flush_fallible();
                self.emit(pc, Box::new(|_, _| Ok(Step::Done)));
                self.pend.clear();
                self.live = false;
            }
        }
    }
}

/// Lowers `code` into superop form.
fn lower(code: &[Instr]) -> CompiledCode {
    // Every pc a jump can land on is a block seam.
    let mut target = vec![false; code.len() + 1];
    for i in code {
        if let Instr::Jump(t) | Instr::JumpIfFalse(t) | Instr::JumpIfTrue(t) = *i {
            if (t as usize) < target.len() {
                target[t as usize] = true;
            }
        }
    }
    let temp_base = code
        .iter()
        .map(|i| match *i {
            Instr::LoadLocal(s) | Instr::StoreLocal(s) => u32::from(s) + 1,
            _ => 0,
        })
        .max()
        .unwrap_or(0);
    let mut lw = Lowerer {
        code,
        ops: Vec::with_capacity(code.len() / 2 + 8),
        nodes: Vec::with_capacity(code.len() + 8),
        ip_at: vec![u32::MAX; code.len() + 1],
        entry_depth: vec![None; code.len() + 1],
        pend: Vec::new(),
        retired: 0,
        temp_base,
        max_depth: 0,
        live: true,
        ok: true,
    };
    lw.ip_at[0] = 0;
    for (pc, &is_target) in target[..code.len()].iter().enumerate() {
        if is_target {
            lw.boundary(pc);
        }
        lw.instr(pc);
        if !lw.ok {
            return CompiledCode {
                ops: Vec::new(),
                nodes: Vec::new(),
                ip_at: Vec::new(),
                min_slots: 0,
                has_barrier: false,
                fallback: true,
            };
        }
    }
    if lw.live && lw.retired < code.len() {
        // Dangling pushes before falling off the end still execute.
        lw.retire_noop(code.len());
    }
    lw.ip_at[code.len()] = lw.ops.len() as u32;
    CompiledCode {
        min_slots: lw.temp_base + lw.max_depth as u32,
        ops: lw.ops,
        nodes: lw.nodes,
        ip_at: lw.ip_at,
        has_barrier: code.iter().any(|i| matches!(i, Instr::Barrier)),
        fallback: false,
    }
}

// --- lowering cache -------------------------------------------------------

struct CacheEntry {
    code: Vec<Instr>,
    compiled: Arc<CompiledCode>,
}

type Cache = Mutex<HashMap<u64, Vec<CacheEntry>>>;

static CACHE: OnceLock<Cache> = OnceLock::new();

/// Keep the cache bounded: kernels are few in practice, but a soak run
/// compiling generated kernels must not leak without bound.
const MAX_CACHED_KERNELS: usize = 1024;

/// Hashes an instruction stream without allocating or formatting.
/// `Instr` carries `f64`, so it is not `Hash`; this folds a variant
/// tag plus every field (floats by bit pattern) into an FNV-1a
/// accumulator. The lookup runs on every launch, so it must be cheap;
/// collisions are resolved by `PartialEq` below.
fn code_hash(code: &[Instr]) -> u64 {
    struct Fnv(u64);
    impl Fnv {
        #[inline]
        fn mix(&mut self, v: u64) {
            self.0 ^= v;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    h.mix(code.len() as u64);
    for i in code {
        match *i {
            Instr::PushInt(v, ty) => {
                h.mix(1);
                h.mix(v as u64);
                h.mix(ty as u64);
            }
            Instr::PushFloat(v, ty) => {
                h.mix(2);
                h.mix(v.to_bits());
                h.mix(ty as u64);
            }
            Instr::PushBool(b) => {
                h.mix(3);
                h.mix(u64::from(b));
            }
            Instr::PushLocalPtr { byte_offset, elem } => {
                h.mix(4);
                h.mix(u64::from(byte_offset));
                h.mix(elem as u64);
            }
            Instr::LoadLocal(s) => {
                h.mix(5);
                h.mix(u64::from(s));
            }
            Instr::StoreLocal(s) => {
                h.mix(6);
                h.mix(u64::from(s));
            }
            Instr::LoadMem(ty) => {
                h.mix(7);
                h.mix(ty as u64);
            }
            Instr::StoreMem(ty) => {
                h.mix(8);
                h.mix(ty as u64);
            }
            Instr::PtrAdd => h.mix(9),
            Instr::Bin(k, ty) => {
                h.mix(10);
                h.mix(k as u64);
                h.mix(ty as u64);
            }
            Instr::Cmp(k, ty) => {
                h.mix(11);
                h.mix(k as u64);
                h.mix(ty as u64);
            }
            Instr::Neg(ty) => {
                h.mix(12);
                h.mix(ty as u64);
            }
            Instr::BitNot(ty) => {
                h.mix(13);
                h.mix(ty as u64);
            }
            Instr::NotBool => h.mix(14),
            Instr::Cast { from, to } => {
                h.mix(15);
                h.mix(from as u64);
                h.mix(to as u64);
            }
            Instr::Jump(t) => {
                h.mix(16);
                h.mix(u64::from(t));
            }
            Instr::JumpIfFalse(t) => {
                h.mix(17);
                h.mix(u64::from(t));
            }
            Instr::JumpIfTrue(t) => {
                h.mix(18);
                h.mix(u64::from(t));
            }
            Instr::CallMath1(m, ty) => {
                h.mix(19);
                h.mix(m as u64);
                h.mix(ty as u64);
            }
            Instr::CallMath2(m, ty) => {
                h.mix(20);
                h.mix(m as u64);
                h.mix(ty as u64);
            }
            Instr::Query(g) => {
                h.mix(21);
                h.mix(g as u64);
            }
            Instr::Barrier => h.mix(22),
            Instr::Return => h.mix(23),
            Instr::Dup => h.mix(24),
            Instr::Pop => h.mix(25),
        }
    }
    h.0
}

/// Returns the lowered form of `kernel`, compiling on first sight.
pub(super) fn lookup_or_lower(kernel: &CompiledKernel) -> Arc<CompiledCode> {
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let key = code_hash(&kernel.code);
    let mut map = cache.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(entries) = map.get(&key) {
        if let Some(e) = entries.iter().find(|e| e.code == kernel.code) {
            return Arc::clone(&e.compiled);
        }
    }
    let compiled = Arc::new(lower(&kernel.code));
    if map.len() >= MAX_CACHED_KERNELS {
        map.clear();
    }
    map.entry(key).or_default().push(CacheEntry {
        code: kernel.code.clone(),
        compiled: Arc::clone(&compiled),
    });
    compiled
}

// --- drivers --------------------------------------------------------------

/// Full-launch compiled-engine driver. With `allow_parallel`, runs
/// independent work-groups on a thread pool when the effect prover
/// shows the kernel is safe (sequential fallback otherwise).
pub(super) fn run(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    allow_parallel: bool,
) -> Result<ExecStats, ExecError> {
    let ccode = lookup_or_lower(kernel);
    if ccode.fallback {
        return super::interp::run(kernel, args, buffers, range, None, None);
    }
    range.validate()?;
    let (bound, arena_bytes) = bind_args(kernel, args, buffers.len())?;
    let num_groups = [
        range.global[0] / range.local[0],
        range.global[1] / range.local[1],
        range.global[2] / range.local[2],
    ];
    if allow_parallel {
        if let Some(result) = super::parallel::try_run_parallel(
            kernel,
            &ccode,
            &bound,
            args,
            buffers,
            range,
            num_groups,
            arena_bytes,
        ) {
            return result;
        }
    }
    let mut stats = ExecStats::default();
    let mut arena = vec![0u8; arena_bytes];
    let mut mem = Memory::Excl(buffers);
    for gz in 0..num_groups[2] {
        for gy in 0..num_groups[1] {
            for gx in 0..num_groups[0] {
                run_group(
                    &ccode,
                    kernel,
                    &bound,
                    &mut mem,
                    range,
                    [gx, gy, gz],
                    num_groups,
                    &mut arena,
                    &mut stats,
                )?;
                stats.work_groups += 1;
            }
        }
    }
    Ok(stats)
}

/// Executes one work-group to completion under the shared pass-based
/// round-robin schedule.
#[allow(clippy::too_many_arguments)]
pub(super) fn run_group(
    ccode: &CompiledCode,
    kernel: &CompiledKernel,
    bound: &[Value],
    mem: &mut Memory<'_>,
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
) -> Result<(), ExecError> {
    arena.fill(0);
    let want = (ccode.min_slots as usize).max(usize::from(kernel.n_slots));
    if !ccode.has_barrier {
        // No barrier can suspend an item, so the round-robin schedule
        // degenerates to running each item once in local-id order.
        // Reuse one activation record instead of materializing the
        // whole group: same execution order, same stats, same first
        // error, but zero per-item allocations.
        let mut template = vec![Value::I32(0); want];
        template[..bound.len()].copy_from_slice(bound);
        let mut item = Item {
            pc: 0,
            stack: Vec::new(),
            slots: template.clone(),
            status: ItemStatus::Running,
            global_id: [0; 3],
            local_id: [0; 3],
        };
        let mut count = 0u64;
        for lz in 0..range.local[2] {
            for ly in 0..range.local[1] {
                for lx in 0..range.local[0] {
                    item.pc = 0;
                    item.status = ItemStatus::Running;
                    item.local_id = [lx, ly, lz];
                    item.global_id = [
                        group_id[0] * range.local[0] + lx,
                        group_id[1] * range.local[1] + ly,
                        group_id[2] * range.local[2] + lz,
                    ];
                    item.slots.copy_from_slice(&template);
                    run_item(
                        ccode, &mut item, mem, range, group_id, num_groups, arena, stats,
                    )?;
                    count += 1;
                }
            }
        }
        stats.work_items += count;
        return Ok(());
    }
    let mut items = build_items(kernel, bound, range, group_id);
    if usize::from(kernel.n_slots) < want {
        for item in &mut items {
            item.slots.resize(want, Value::I32(0));
        }
    }
    loop {
        let mut any_running = false;
        for item in items.iter_mut() {
            if item.status == ItemStatus::Running {
                run_item(ccode, item, mem, range, group_id, num_groups, arena, stats)?;
                any_running = true;
            }
        }
        if !any_running {
            if !barrier_stall_check(kernel, &items)? {
                break;
            }
            stats.barriers += 1;
            for item in &mut items {
                item.status = ItemStatus::Running;
            }
        }
    }
    stats.work_items += items.len() as u64;
    Ok(())
}

/// Runs one item until it finishes, suspends at a barrier, or errors.
/// `item.pc` stays a bytecode pc (barrier diagnostics depend on it);
/// the op index advances in lock-step and is recovered from `ip_at` on
/// entry and at every jump.
#[allow(clippy::too_many_arguments)]
fn run_item(
    ccode: &CompiledCode,
    item: &mut Item,
    mem: &mut Memory<'_>,
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
) -> Result<(), ExecError> {
    let mut pc = item.pc;
    let mut ip = ccode.ip_at.get(pc).map_or(u32::MAX, |v| *v) as usize;
    let mut frame = Frame {
        slots: &mut item.slots,
        mem,
        arena,
        global_id: item.global_id,
        local_id: item.local_id,
        group_id,
        num_groups,
        global: range.global,
        local: range.local,
        work_dim: range.work_dim,
    };
    let ops = &ccode.ops;
    let nodes = &ccode.nodes[..];
    loop {
        let Some(o) = ops.get(ip) else {
            // Fell off the end — treated as return, like the interpreter.
            item.pc = pc;
            item.status = ItemStatus::Done;
            return Ok(());
        };
        stats.instructions += u64::from(o.covers);
        match (o.run)(&mut frame, nodes)? {
            Step::Next => {
                pc += o.covers as usize;
                ip += 1;
            }
            Step::Jump(t) => {
                pc = t as usize;
                ip = ccode.ip_at.get(pc).map_or(u32::MAX, |v| *v) as usize;
            }
            Step::Barrier => {
                item.pc = pc + o.covers as usize;
                item.status = ItemStatus::AtBarrier;
                return Ok(());
            }
            Step::Done => {
                item.pc = pc + o.covers as usize;
                item.status = ItemStatus::Done;
                return Ok(());
            }
        }
    }
}
