//! The reference interpreter engine.
//!
//! This is the original tree-walking/state-machine executor, kept as the
//! byte-exact oracle: `run_ndrange_checked` and `run_ndrange_observed`
//! always run here, and every other engine is validated against it.
//! Work-items of one group are state machines — (pc, operand stack,
//! slots) — so `barrier()` suspension is a cheap save/restore rather
//! than one OS thread per item.

use crate::bytecode::{CompiledKernel, Geom, Instr};
use crate::types::ScalarType;

use super::ops::*;
use super::*;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(super) enum ItemStatus {
    Running,
    AtBarrier,
    Done,
}

/// One work-item's resumable machine state, shared with the compiled
/// engine so both schedule items identically.
pub(super) struct Item {
    pub(super) pc: usize,
    pub(super) stack: Vec<Value>,
    pub(super) slots: Vec<Value>,
    pub(super) status: ItemStatus,
    pub(super) global_id: [u64; 3],
    pub(super) local_id: [u64; 3],
}

/// Builds one group's items in `lz/ly/lx` order (`lx` fastest) — the
/// item schedule every engine shares.
pub(super) fn build_items(
    kernel: &CompiledKernel,
    bound: &[Value],
    range: &NdRange,
    group_id: [u64; 3],
) -> Vec<Item> {
    let mut items = Vec::with_capacity(range.group_items() as usize);
    for lz in 0..range.local[2] {
        for ly in 0..range.local[1] {
            for lx in 0..range.local[0] {
                let local_id = [lx, ly, lz];
                let global_id = [
                    group_id[0] * range.local[0] + lx,
                    group_id[1] * range.local[1] + ly,
                    group_id[2] * range.local[2] + lz,
                ];
                let mut slots = vec![Value::I32(0); kernel.n_slots as usize];
                slots[..bound.len()].copy_from_slice(bound);
                items.push(Item {
                    pc: 0,
                    stack: Vec::with_capacity(16),
                    slots,
                    status: ItemStatus::Running,
                    global_id,
                    local_id,
                });
            }
        }
    }
    items
}

/// Scans a stalled pass for divergence: returns `Ok(false)` when every
/// item is done, `Ok(true)` when all items wait at one barrier (release
/// them), or the shared divergence error. Identical across engines.
pub(super) fn barrier_stall_check(
    kernel: &CompiledKernel,
    items: &[Item],
) -> Result<bool, ExecError> {
    // A waiting item's barrier is at `pc - 1` (the pc was advanced
    // before the Barrier executed).
    let waiting_pcs: Vec<usize> = items
        .iter()
        .filter(|i| i.status == ItemStatus::AtBarrier)
        .map(|i| i.pc - 1)
        .collect();
    if waiting_pcs.is_empty() {
        return Ok(false);
    }
    let done = items.len() - waiting_pcs.len();
    if done > 0 {
        return Err(divergence_unreached(
            kernel,
            waiting_pcs.len(),
            waiting_pcs[0],
            done,
        ));
    }
    // Every item waits — but a release is only legal when they all
    // wait at the *same* barrier. Divergent control flow can park
    // items at distinct barrier sites, which real devices deadlock
    // or corrupt on; report it as divergence instead.
    if let Some(&other) = waiting_pcs.iter().find(|&&pc| pc != waiting_pcs[0]) {
        return Err(divergence_mixed(kernel, waiting_pcs[0], other));
    }
    Ok(true)
}

/// Dynamic `__local` race oracle.
///
/// For every arena byte it tracks the set of work-items (linear local
/// index) that wrote the byte's *current value* since the last barrier:
///
/// * a read is racy when the byte has writers and the reader is not one
///   of them (it observes another item's unsynchronized write);
/// * a value-changing write is racy when a *different* item wrote the
///   current value (that item's data is silently clobbered);
/// * a same-value write is benign and joins the writer set, matching the
///   analyzer's rule that only *different* values stored to one element
///   constitute a race.
///
/// Writer sets are cleared whenever a barrier releases, so
/// barrier-separated accesses never conflict.
struct RaceOracle {
    writers: Vec<Vec<u32>>,
}

impl RaceOracle {
    fn new(arena_len: usize) -> Self {
        RaceOracle {
            writers: vec![Vec::new(); arena_len],
        }
    }

    fn reset(&mut self) {
        for w in &mut self.writers {
            w.clear();
        }
    }

    /// Returns a conflicting writer if `item` reading `len` bytes at
    /// `off` races with an unsynchronized write.
    fn note_read(&self, off: usize, len: usize, item: u32) -> Option<u32> {
        for w in &self.writers[off..off + len] {
            if !w.is_empty() && !w.contains(&item) {
                return Some(w[0]);
            }
        }
        None
    }

    /// Records `item` overwriting `old` with `new` at `off`; returns a
    /// conflicting prior writer if the write races.
    fn note_write(&mut self, off: usize, old: &[u8], new: &[u8], item: u32) -> Option<u32> {
        for (i, (&o, &n)) in old.iter().zip(new).enumerate() {
            let w = &mut self.writers[off + i];
            if o != n {
                if let Some(&other) = w.iter().find(|&&j| j != item) {
                    return Some(other);
                }
                w.clear();
                w.push(item);
            } else if !w.contains(&item) {
                w.push(item);
            }
        }
        None
    }
}

struct Checked {
    cfg: CheckConfig,
    oracle: RaceOracle,
}

#[allow(clippy::too_many_arguments)]
fn run_group(
    kernel: &CompiledKernel,
    bound: &[Value],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
    mut checked: Option<&mut Checked>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<(), ExecError> {
    arena.fill(0);
    if let Some(c) = checked.as_deref_mut() {
        c.oracle.reset();
    }
    let mut items = build_items(kernel, bound, range, group_id);
    loop {
        let mut any_running = false;
        for (idx, item) in items.iter_mut().enumerate() {
            if item.status == ItemStatus::Running {
                run_item(
                    kernel,
                    item,
                    buffers,
                    range,
                    group_id,
                    num_groups,
                    arena,
                    stats,
                    idx as u32,
                    checked.as_deref_mut(),
                    obs.as_deref_mut(),
                )?;
                any_running = true;
            }
        }
        if !any_running {
            // A full pass with nothing running: all are AtBarrier or Done.
            if !barrier_stall_check(kernel, &items)? {
                break;
            }
            if let Some(c) = checked.as_deref_mut() {
                c.oracle.reset();
            }
            stats.barriers += 1;
            for item in &mut items {
                item.status = ItemStatus::Running;
            }
        }
    }
    stats.work_items += items.len() as u64;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn run_item(
    kernel: &CompiledKernel,
    item: &mut Item,
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    group_id: [u64; 3],
    num_groups: [u64; 3],
    arena: &mut [u8],
    stats: &mut ExecStats,
    idx: u32,
    mut checked: Option<&mut Checked>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<(), ExecError> {
    let flat_item = (item.global_id[2] * range.global[1] + item.global_id[1]) * range.global[0]
        + item.global_id[0];
    let code = &kernel.code;
    loop {
        let Some(instr) = code.get(item.pc) else {
            // Fell off the end — treated as return (sema always appends one,
            // so this is belt-and-braces).
            item.status = ItemStatus::Done;
            return Ok(());
        };
        item.pc += 1;
        stats.instructions += 1;
        if let Some(c) = checked.as_deref() {
            if stats.instructions > c.cfg.max_instructions {
                return Err(ExecError::with_kind(
                    ExecErrorKind::BudgetExhausted,
                    format!(
                        "instruction budget exhausted in kernel `{}` after {} \
                         instructions: the kernel may not terminate",
                        kernel.name, c.cfg.max_instructions
                    ),
                ));
            }
        }
        match *instr {
            Instr::PushInt(v, ty) => item.stack.push(int_value(v, ty)),
            Instr::PushFloat(v, ty) => item.stack.push(if ty == ScalarType::F32 {
                Value::F32(v as f32)
            } else {
                Value::F64(v)
            }),
            Instr::PushBool(b) => item.stack.push(Value::Bool(b)),
            Instr::PushLocalPtr { byte_offset, elem } => {
                item.stack.push(Value::Ptr(Ptr {
                    space: PtrSpace::Local,
                    elem,
                    offset: (byte_offset as usize / elem.size_bytes()) as i64,
                }));
            }
            Instr::LoadLocal(slot) => {
                let v = item.slots[slot as usize];
                item.stack.push(v);
            }
            Instr::StoreLocal(slot) => {
                let v = pop(&mut item.stack)?;
                item.slots[slot as usize] = v;
            }
            Instr::LoadMem(elem) => {
                let p = pop(&mut item.stack)?.as_ptr()?;
                if let (PtrSpace::Global(b), Some(o)) = (p.space, obs.as_deref_mut()) {
                    if p.offset >= 0 {
                        let sz = elem.size_bytes();
                        o.record(GlobalAccess {
                            buffer: b,
                            item: flat_item,
                            write: false,
                            byte_off: p.offset as u64 * sz as u64,
                            len: sz as u32,
                        });
                    }
                }
                if p.space == PtrSpace::Local {
                    if let Some(c) = checked.as_deref() {
                        if c.cfg.detect_races {
                            let sz = elem.size_bytes();
                            let off = checked_offset(p.offset, sz, arena.len())?;
                            if let Some(other) = c.oracle.note_read(off, sz, idx) {
                                return Err(local_race_error(kernel, idx, other, "reads"));
                            }
                        }
                    }
                }
                let v = load_mem(p, elem, buffers, arena)?;
                item.stack.push(v);
            }
            Instr::StoreMem(elem) => {
                let v = pop(&mut item.stack)?;
                let p = pop(&mut item.stack)?.as_ptr()?;
                if let (PtrSpace::Global(b), Some(o)) = (p.space, obs.as_deref_mut()) {
                    if p.offset >= 0 {
                        let sz = elem.size_bytes();
                        o.record(GlobalAccess {
                            buffer: b,
                            item: flat_item,
                            write: true,
                            byte_off: p.offset as u64 * sz as u64,
                            len: sz as u32,
                        });
                    }
                }
                let race_check = p.space == PtrSpace::Local
                    && checked.as_deref().is_some_and(|c| c.cfg.detect_races);
                if race_check {
                    let sz = elem.size_bytes();
                    let off = checked_offset(p.offset, sz, arena.len())?;
                    let mut old = [0u8; 8];
                    old[..sz].copy_from_slice(&arena[off..off + sz]);
                    store_mem(p, elem, &v, buffers, arena)?;
                    let c = checked.as_deref_mut().expect("race_check implies checked");
                    if let Some(other) =
                        c.oracle
                            .note_write(off, &old[..sz], &arena[off..off + sz], idx)
                    {
                        return Err(local_race_error(kernel, idx, other, "overwrites"));
                    }
                } else {
                    store_mem(p, elem, &v, buffers, arena)?;
                }
            }
            Instr::PtrAdd => {
                let idx = pop(&mut item.stack)?.as_index()?;
                let p = pop(&mut item.stack)?.as_ptr()?;
                item.stack.push(Value::Ptr(Ptr {
                    offset: p.offset + idx,
                    ..p
                }));
            }
            Instr::Bin(kind, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(bin_op(kind, ty, a, b)?);
            }
            Instr::Cmp(kind, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(Value::Bool(cmp_op(kind, ty, a, b)));
            }
            Instr::Neg(ty) => {
                let a = pop(&mut item.stack)?;
                item.stack.push(neg_op(ty, a));
            }
            Instr::BitNot(ty) => {
                let a = pop(&mut item.stack)?;
                let x = a.to_i64_lossy();
                item.stack.push(int_value(!x, ty));
            }
            Instr::NotBool => {
                let a = pop(&mut item.stack)?.as_bool()?;
                item.stack.push(Value::Bool(!a));
            }
            Instr::Cast { to, .. } => {
                let a = pop(&mut item.stack)?;
                item.stack.push(a.cast(to));
            }
            Instr::Jump(t) => item.pc = t as usize,
            Instr::JumpIfFalse(t) => {
                if !pop(&mut item.stack)?.as_bool()? {
                    item.pc = t as usize;
                }
            }
            Instr::JumpIfTrue(t) => {
                if pop(&mut item.stack)?.as_bool()? {
                    item.pc = t as usize;
                }
            }
            Instr::CallMath1(m, ty) => {
                let a = pop(&mut item.stack)?;
                item.stack.push(math1(m, ty, a));
            }
            Instr::CallMath2(m, ty) => {
                let b = pop(&mut item.stack)?;
                let a = pop(&mut item.stack)?;
                item.stack.push(math2(m, ty, a, b));
            }
            Instr::Query(g) => {
                let dim = pop(&mut item.stack)?.as_index()?;
                let d = (dim as usize).min(2);
                let v = match g {
                    Geom::GlobalId => item.global_id[d],
                    Geom::LocalId => item.local_id[d],
                    Geom::GroupId => group_id[d],
                    Geom::GlobalSize => range.global[d],
                    Geom::LocalSize => range.local[d],
                    Geom::NumGroups => num_groups[d],
                    Geom::WorkDim => u64::from(range.work_dim),
                };
                item.stack.push(Value::U64(v));
            }
            Instr::Barrier => {
                item.status = ItemStatus::AtBarrier;
                return Ok(());
            }
            Instr::Return => {
                item.status = ItemStatus::Done;
                return Ok(());
            }
            Instr::Dup => {
                let v = *item
                    .stack
                    .last()
                    .ok_or_else(|| ExecError::new("stack underflow on Dup"))?;
                item.stack.push(v);
            }
            Instr::Pop => {
                pop(&mut item.stack)?;
            }
        }
    }
}

/// Full-launch interpreter driver: the sequential `gz/gy/gx` group loop
/// the compiled engines are validated against. Checked and observed
/// modes always run here.
pub(super) fn run(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: Option<&CheckConfig>,
    mut obs: Option<&mut GlobalObs>,
) -> Result<ExecStats, ExecError> {
    range.validate()?;
    let (bound, arena_bytes) = bind_args(kernel, args, buffers.len())?;
    let num_groups = [
        range.global[0] / range.local[0],
        range.global[1] / range.local[1],
        range.global[2] / range.local[2],
    ];
    let mut stats = ExecStats::default();
    let mut arena = vec![0u8; arena_bytes];
    let mut checked = cfg.map(|c| Checked {
        cfg: *c,
        oracle: RaceOracle::new(arena_bytes),
    });
    for gz in 0..num_groups[2] {
        for gy in 0..num_groups[1] {
            for gx in 0..num_groups[0] {
                run_group(
                    kernel,
                    &bound,
                    buffers,
                    range,
                    [gx, gy, gz],
                    num_groups,
                    &mut arena,
                    &mut stats,
                    checked.as_mut(),
                    obs.as_deref_mut(),
                )?;
                stats.work_groups += 1;
            }
        }
    }
    Ok(stats)
}
