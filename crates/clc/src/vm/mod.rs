//! The work-item virtual machine.
//!
//! Executes [`CompiledKernel`] bytecode over an NDRange with real OpenCL
//! work-group semantics: work-items of one group share a local-memory
//! arena, and `barrier()` suspends each item until every item in the group
//! arrives. Items are state machines — (pc, operand stack, slots) — so
//! suspension is a cheap save/restore rather than one OS thread per item.

use std::error::Error;
use std::fmt;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::ast::ParamType;
use crate::bytecode::CompiledKernel;
use crate::types::{AddressSpace, ScalarType};

mod compiled;
mod interp;
mod ops;
mod parallel;

pub use parallel::parallel_groups_safe;

/// What class of failure an [`ExecError`] reports.
///
/// The VM's dynamic checks mirror the static analyzer
/// ([`crate::analysis`]): a kernel the analyzer passes clean must never
/// produce [`BarrierDivergence`](ExecErrorKind::BarrierDivergence) or
/// [`LocalRace`](ExecErrorKind::LocalRace) at runtime, which is exactly
/// what the cross-check tests assert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecErrorKind {
    /// Argument mismatch, memory fault, arithmetic fault, …
    General,
    /// The work-items of a group did not all reach the same `barrier()`.
    BarrierDivergence,
    /// Checked mode only: conflicting `__local` accesses without an
    /// intervening barrier.
    LocalRace,
    /// Checked mode only: the instruction budget ran out (the kernel
    /// likely does not terminate).
    BudgetExhausted,
}

/// A runtime execution failure (out-of-bounds access, divide by zero,
/// barrier divergence, argument mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecError {
    message: String,
    kind: ExecErrorKind,
}

impl ExecError {
    fn new(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            kind: ExecErrorKind::General,
        }
    }

    fn with_kind(kind: ExecErrorKind, message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            kind,
        }
    }

    /// Creates an execution error with a custom message.
    ///
    /// Intended for runtimes layered on top of the VM (device simulators,
    /// native kernels) that need to report launch failures with the same
    /// error type the VM uses.
    pub fn from_message(message: impl Into<String>) -> Self {
        ExecError::new(message)
    }

    /// The failure description.
    pub fn message(&self) -> &str {
        &self.message
    }

    /// The failure class.
    pub fn kind(&self) -> ExecErrorKind {
        self.kind
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "kernel execution failed: {}", self.message)
    }
}

impl Error for ExecError {}

/// A `__global` memory buffer (the backing store of an OpenCL `cl_mem`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GlobalBuffer {
    bytes: Vec<u8>,
}

macro_rules! buffer_views {
    ($from:ident, $as_ref:ident, $as_mut:ident, $t:ty) => {
        /// Creates a buffer holding the given elements (little-endian).
        pub fn $from(values: &[$t]) -> Self {
            let mut bytes = Vec::with_capacity(values.len() * std::mem::size_of::<$t>());
            for v in values {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            GlobalBuffer { bytes }
        }

        /// Decodes the buffer as elements of this type.
        ///
        /// # Panics
        ///
        /// Panics if the byte length is not a multiple of the element size.
        pub fn $as_ref(&self) -> Vec<$t> {
            let sz = std::mem::size_of::<$t>();
            assert!(
                self.bytes.len() % sz == 0,
                "buffer length {} is not a multiple of {}",
                self.bytes.len(),
                sz
            );
            self.bytes
                .chunks_exact(sz)
                .map(|c| <$t>::from_le_bytes(c.try_into().expect("chunk size")))
                .collect()
        }
    };
}

impl GlobalBuffer {
    /// Creates a zero-filled buffer of `len` bytes.
    pub fn zeroed(len: usize) -> Self {
        GlobalBuffer {
            bytes: vec![0; len],
        }
    }

    /// Creates a buffer from raw bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Self {
        GlobalBuffer { bytes }
    }

    /// The raw byte contents.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable access to the raw bytes.
    pub fn as_bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }

    /// Consumes the buffer, returning its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    buffer_views!(from_f32, as_f32, as_f32_mut, f32);
    buffer_views!(from_f64, as_f64, as_f64_mut, f64);
    buffer_views!(from_i32, as_i32, as_i32_mut, i32);
    buffer_views!(from_u32, as_u32, as_u32_mut, u32);
    buffer_views!(from_i64, as_i64, as_i64_mut, i64);
    buffer_views!(from_u64, as_u64, as_u64_mut, u64);

    fn load(&self, elem: ScalarType, idx: i64) -> Result<Value, ExecError> {
        let sz = elem.size_bytes();
        let off = checked_offset(idx, sz, self.bytes.len())?;
        Ok(decode_scalar(&self.bytes[off..off + sz], elem))
    }

    fn store(&mut self, elem: ScalarType, idx: i64, v: &Value) -> Result<(), ExecError> {
        let sz = elem.size_bytes();
        let off = checked_offset(idx, sz, self.bytes.len())?;
        let dst = &mut self.bytes[off..off + sz];
        write_scalar(dst, elem, v);
        Ok(())
    }
}

fn checked_offset(idx: i64, sz: usize, len: usize) -> Result<usize, ExecError> {
    if idx < 0 {
        return Err(ExecError::new(format!("negative buffer index {idx}")));
    }
    let off = (idx as usize)
        .checked_mul(sz)
        .ok_or_else(|| ExecError::new(format!("buffer index {idx} overflows addressing")))?;
    if off + sz > len {
        return Err(ExecError::new(format!(
            "out-of-bounds access: element {idx} ({} bytes/elem) in a {len}-byte buffer",
            sz
        )));
    }
    Ok(off)
}

fn write_scalar(dst: &mut [u8], elem: ScalarType, v: &Value) {
    match (elem, v) {
        (ScalarType::Bool, Value::Bool(x)) => dst[0] = u8::from(*x),
        (ScalarType::I32, Value::I32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U32, Value::U32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::I64, Value::I64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::U64, Value::U64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F32, Value::F32(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (ScalarType::F64, Value::F64(x)) => dst.copy_from_slice(&x.to_le_bytes()),
        (elem, v) => unreachable!("type confusion storing {v:?} as {elem}"),
    }
}

/// Decodes one little-endian scalar from `bytes` (exactly
/// `elem.size_bytes()` long). The single decode path every engine and
/// memory view shares.
fn decode_scalar(bytes: &[u8], elem: ScalarType) -> Value {
    match elem {
        ScalarType::Bool => Value::Bool(bytes[0] != 0),
        ScalarType::I32 => Value::I32(i32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::U32 => Value::U32(u32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::I64 => Value::I64(i64::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::U64 => Value::U64(u64::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::F32 => Value::F32(f32::from_le_bytes(bytes.try_into().expect("size"))),
        ScalarType::F64 => Value::F64(f64::from_le_bytes(bytes.try_into().expect("size"))),
    }
}

/// A runtime value on the VM operand stack.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value {
    /// `bool`
    Bool(bool),
    /// `int`
    I32(i32),
    /// `uint`
    U32(u32),
    /// `long`
    I64(i64),
    /// `ulong`
    U64(u64),
    /// `float`
    F32(f32),
    /// `double`
    F64(f64),
    /// A typed pointer.
    Ptr(Ptr),
}

/// A typed pointer value: address space, element type, element offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ptr {
    space: PtrSpace,
    elem: ScalarType,
    /// Offset in *elements* from the start of the addressed region.
    offset: i64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PtrSpace {
    /// Index into the launch's bound global buffers.
    Global(usize),
    /// The work-group local arena.
    Local,
}

impl Value {
    fn as_bool(&self) -> Result<bool, ExecError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(ExecError::new(format!("expected bool, got {other:?}"))),
        }
    }

    fn as_ptr(&self) -> Result<Ptr, ExecError> {
        match self {
            Value::Ptr(p) => Ok(*p),
            other => Err(ExecError::new(format!("expected pointer, got {other:?}"))),
        }
    }

    fn as_index(&self) -> Result<i64, ExecError> {
        Ok(match self {
            Value::Bool(b) => i64::from(*b),
            Value::I32(x) => i64::from(*x),
            Value::U32(x) => i64::from(*x),
            Value::I64(x) => *x,
            Value::U64(x) => {
                i64::try_from(*x).map_err(|_| ExecError::new(format!("index {x} exceeds i64")))?
            }
            other => return Err(ExecError::new(format!("expected integer, got {other:?}"))),
        })
    }

    fn to_f64_lossy(self) -> f64 {
        match self {
            Value::Bool(b) => f64::from(u8::from(b)),
            Value::I32(x) => f64::from(x),
            Value::U32(x) => f64::from(x),
            Value::I64(x) => x as f64,
            Value::U64(x) => x as f64,
            Value::F32(x) => f64::from(x),
            Value::F64(x) => x,
            Value::Ptr(_) => f64::NAN,
        }
    }

    fn to_i64_lossy(self) -> i64 {
        match self {
            Value::Bool(b) => i64::from(b),
            Value::I32(x) => i64::from(x),
            Value::U32(x) => i64::from(x),
            Value::I64(x) => x,
            Value::U64(x) => x as i64,
            Value::F32(x) => x as i64,
            Value::F64(x) => x as i64,
            Value::Ptr(_) => 0,
        }
    }

    fn cast(self, to: ScalarType) -> Value {
        match to {
            ScalarType::Bool => Value::Bool(match self {
                Value::Bool(b) => b,
                Value::F32(x) => x != 0.0,
                Value::F64(x) => x != 0.0,
                other => other.to_i64_lossy() != 0,
            }),
            ScalarType::I32 => Value::I32(match self {
                Value::F32(x) => x as i32,
                Value::F64(x) => x as i32,
                other => other.to_i64_lossy() as i32,
            }),
            ScalarType::U32 => Value::U32(match self {
                Value::F32(x) => x as u32,
                Value::F64(x) => x as u32,
                other => other.to_i64_lossy() as u32,
            }),
            ScalarType::I64 => Value::I64(match self {
                Value::F32(x) => x as i64,
                Value::F64(x) => x as i64,
                other => other.to_i64_lossy(),
            }),
            ScalarType::U64 => Value::U64(match self {
                Value::F32(x) => x as u64,
                Value::F64(x) => x as u64,
                Value::U64(x) => x,
                other => other.to_i64_lossy() as u64,
            }),
            ScalarType::F32 => Value::F32(self.to_f64_lossy() as f32),
            ScalarType::F64 => Value::F64(self.to_f64_lossy()),
        }
    }
}

/// A kernel argument supplied at launch (`clSetKernelArg` equivalent).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArgValue {
    /// A scalar passed by value (coerced to the parameter type).
    Scalar(Value),
    /// A `__global`/`__constant` pointer: index into the launch's buffer
    /// slice.
    GlobalBuffer(usize),
    /// A dynamically-sized `__local` allocation of this many bytes.
    LocalAlloc(usize),
}

impl ArgValue {
    /// A `__global` buffer argument bound to `buffers[index]`.
    pub fn global(index: usize) -> Self {
        ArgValue::GlobalBuffer(index)
    }

    /// A `float` scalar argument.
    pub fn from_f32(x: f32) -> Self {
        ArgValue::Scalar(Value::F32(x))
    }

    /// A `double` scalar argument.
    pub fn from_f64(x: f64) -> Self {
        ArgValue::Scalar(Value::F64(x))
    }

    /// An `int` scalar argument.
    pub fn from_i32(x: i32) -> Self {
        ArgValue::Scalar(Value::I32(x))
    }

    /// A `uint` scalar argument.
    pub fn from_u32(x: u32) -> Self {
        ArgValue::Scalar(Value::U32(x))
    }

    /// A `long` scalar argument.
    pub fn from_i64(x: i64) -> Self {
        ArgValue::Scalar(Value::I64(x))
    }

    /// A `ulong` scalar argument.
    pub fn from_u64(x: u64) -> Self {
        ArgValue::Scalar(Value::U64(x))
    }

    /// A dynamically-sized `__local` scratch allocation.
    pub fn local_bytes(bytes: usize) -> Self {
        ArgValue::LocalAlloc(bytes)
    }
}

/// An N-dimensional launch range (`clEnqueueNDRangeKernel` geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NdRange {
    /// Number of dimensions in use (1–3).
    pub work_dim: u32,
    /// Global work size per dimension (unused dimensions are 1).
    pub global: [u64; 3],
    /// Work-group size per dimension (unused dimensions are 1).
    pub local: [u64; 3],
}

impl NdRange {
    /// A 1-D range of `global` items in groups of `local`.
    pub fn linear(global: u64, local: u64) -> Self {
        NdRange {
            work_dim: 1,
            global: [global, 1, 1],
            local: [local, 1, 1],
        }
    }

    /// A 2-D range.
    pub fn d2(global: [u64; 2], local: [u64; 2]) -> Self {
        NdRange {
            work_dim: 2,
            global: [global[0], global[1], 1],
            local: [local[0], local[1], 1],
        }
    }

    /// A 3-D range.
    pub fn d3(global: [u64; 3], local: [u64; 3]) -> Self {
        NdRange {
            work_dim: 3,
            global,
            local,
        }
    }

    /// Total number of work-items.
    pub fn total_items(&self) -> u64 {
        self.global.iter().product()
    }

    /// Number of work-groups.
    pub fn total_groups(&self) -> u64 {
        (0..3)
            .map(|d| self.global[d] / self.local[d].max(1))
            .product()
    }

    /// Work-items per group.
    pub fn group_items(&self) -> u64 {
        self.local.iter().product()
    }

    fn validate(&self) -> Result<(), ExecError> {
        if !(1..=3).contains(&self.work_dim) {
            return Err(ExecError::new("work_dim must be 1, 2 or 3"));
        }
        for d in 0..3 {
            if self.global[d] == 0 || self.local[d] == 0 {
                return Err(ExecError::new(format!(
                    "zero-sized dimension {d} in NDRange"
                )));
            }
            if !self.global[d].is_multiple_of(self.local[d]) {
                return Err(ExecError::new(format!(
                    "local size {} does not divide global size {} in dimension {d}",
                    self.local[d], self.global[d]
                )));
            }
        }
        Ok(())
    }
}

/// Counters from one kernel launch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total bytecode instructions retired.
    pub instructions: u64,
    /// Work-items executed.
    pub work_items: u64,
    /// Work-groups executed.
    pub work_groups: u64,
    /// Group-wide barrier releases (each counts once per group, however
    /// many work-items waited) — a synchronization-pressure signal for
    /// the execution profile.
    pub barriers: u64,
}

/// Configuration for [`run_ndrange_checked`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CheckConfig {
    /// Fail (instead of hanging) once this many instructions have retired
    /// across the whole launch. `u64::MAX` disables the budget.
    pub max_instructions: u64,
    /// Detect dynamic `__local` data races.
    pub detect_races: bool,
}

impl Default for CheckConfig {
    fn default() -> Self {
        CheckConfig {
            max_instructions: 50_000_000,
            detect_races: true,
        }
    }
}

/// One global-memory access observed by [`run_ndrange_observed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalAccess {
    /// Buffer index (as bound via [`ArgValue::GlobalBuffer`]).
    pub buffer: usize,
    /// Flat work-item id across the whole NDRange.
    pub item: u64,
    /// Store (`true`) or load (`false`).
    pub write: bool,
    /// First byte touched.
    pub byte_off: u64,
    /// Bytes touched.
    pub len: u32,
}

/// The per-byte global-access log collected by [`run_ndrange_observed`] —
/// the dynamic ground truth the static effect summaries
/// ([`crate::analysis::effects`]) are cross-checked against.
#[derive(Debug, Clone, Default)]
pub struct GlobalObs {
    /// Every global-buffer access, in execution order.
    pub accesses: Vec<GlobalAccess>,
    /// The log hit its size cap; `accesses` is a prefix.
    pub truncated: bool,
}

/// Log cap for [`GlobalObs`] (the cross-check corpora stay far below it).
const MAX_OBS_ACCESSES: usize = 1 << 22;

impl GlobalObs {
    fn record(&mut self, rec: GlobalAccess) {
        if self.accesses.len() >= MAX_OBS_ACCESSES {
            self.truncated = true;
        } else {
            self.accesses.push(rec);
        }
    }
}

/// Formats a barrier's source position for error messages.
fn barrier_pos(kernel: &CompiledKernel, pc: usize) -> String {
    match kernel.barrier_site(pc as u32) {
        Some(s) => format!("the barrier at line {}, column {}", s.line, s.col),
        None => format!("the barrier at pc {pc}"),
    }
}

/// Builds the "some items finished without reaching the barrier" error,
/// shared verbatim by every engine.
fn divergence_unreached(
    kernel: &CompiledKernel,
    waiting: usize,
    pc: usize,
    done: usize,
) -> ExecError {
    ExecError::with_kind(
        ExecErrorKind::BarrierDivergence,
        format!(
            "barrier divergence in kernel `{}`: {waiting} item(s) wait at {} \
             while {done} finished without reaching it",
            kernel.name,
            barrier_pos(kernel, pc),
        ),
    )
}

/// Builds the "items wait at different barriers" error, shared verbatim
/// by every engine.
fn divergence_mixed(kernel: &CompiledKernel, pc_a: usize, pc_b: usize) -> ExecError {
    ExecError::with_kind(
        ExecErrorKind::BarrierDivergence,
        format!(
            "barrier divergence in kernel `{}`: work-items of one group wait \
             at different barriers ({} vs {})",
            kernel.name,
            barrier_pos(kernel, pc_a),
            barrier_pos(kernel, pc_b),
        ),
    )
}

/// Builds the checked-mode `__local` race error.
fn local_race_error(kernel: &CompiledKernel, item: u32, other: u32, verb: &str) -> ExecError {
    ExecError::with_kind(
        ExecErrorKind::LocalRace,
        format!(
            "data race on __local memory in kernel `{}`: work-item {item} {verb} \
             a value stored by work-item {other} with no intervening barrier",
            kernel.name
        ),
    )
}

/// Which execution engine [`run_ndrange`] drives.
///
/// All engines are observationally identical: same output bytes, same
/// [`ExecStats`], same structured errors. The interpreter is the
/// reference; [`run_ndrange_checked`] and [`run_ndrange_observed`] are
/// always interpreted so the oracle itself never depends on the
/// optimized paths it validates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum EngineKind {
    /// The reference tree-walking interpreter.
    Interp,
    /// Bytecode lowered once per kernel into fused closures, work-groups
    /// executed sequentially in interpreter order.
    CompiledSerial,
    /// The compiled engine, plus parallel work-group execution for
    /// kernels the effect prover shows are safe (sequential fallback
    /// otherwise). This is the default.
    Compiled,
}

/// Process-wide engine override set by [`set_default_engine`].
/// 0 = unset (consult `HAOCL_VM_ENGINE`, then default), 1..=3 = kinds.
static ENGINE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the engine [`run_ndrange`] selects, process-wide.
/// `None` restores env/default selection.
pub fn set_default_engine(kind: Option<EngineKind>) {
    let v = match kind {
        None => 0,
        Some(EngineKind::Interp) => 1,
        Some(EngineKind::CompiledSerial) => 2,
        Some(EngineKind::Compiled) => 3,
    };
    ENGINE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The engine [`run_ndrange`] will use: the [`set_default_engine`]
/// override if set, else `HAOCL_VM_ENGINE` (`interp`, `compiled-serial`,
/// `compiled`), else [`EngineKind::Compiled`].
pub fn default_engine() -> EngineKind {
    match ENGINE_OVERRIDE.load(Ordering::Relaxed) {
        1 => EngineKind::Interp,
        2 => EngineKind::CompiledSerial,
        3 => EngineKind::Compiled,
        _ => match std::env::var("HAOCL_VM_ENGINE").ok().as_deref() {
            Some("interp") => EngineKind::Interp,
            Some("compiled-serial") => EngineKind::CompiledSerial,
            _ => EngineKind::Compiled,
        },
    }
}

/// Executes `kernel` across the whole `range`.
///
/// `args` supplies one [`ArgValue`] per kernel parameter, and
/// [`ArgValue::GlobalBuffer`] entries index into `buffers`. Runs on the
/// engine chosen by [`default_engine`]; every engine is deterministic
/// and byte-identical to the reference interpreter (device parallelism
/// is *modelled* by `haocl-device` — OS-thread parallelism here is only
/// used where the effect prover shows group order is unobservable).
///
/// # Errors
///
/// Returns [`ExecError`] on argument mismatches, out-of-bounds accesses,
/// integer division by zero, or barrier divergence within a work-group.
pub fn run_ndrange(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
) -> Result<ExecStats, ExecError> {
    run_ndrange_with_engine(kernel, args, buffers, range, default_engine())
}

/// [`run_ndrange`] on an explicitly chosen engine, ignoring the
/// process-wide default. This is what differential tests use to compare
/// engines without racing on global state.
///
/// # Errors
///
/// Same as [`run_ndrange`].
pub fn run_ndrange_with_engine(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    engine: EngineKind,
) -> Result<ExecStats, ExecError> {
    match engine {
        EngineKind::Interp => interp::run(kernel, args, buffers, range, None, None),
        EngineKind::CompiledSerial => compiled::run(kernel, args, buffers, range, false),
        EngineKind::Compiled => compiled::run(kernel, args, buffers, range, true),
    }
}

/// [`run_ndrange`] with dynamic checking: an instruction budget (so
/// non-terminating kernels fail instead of hanging) and a `__local` race
/// oracle (see [`RaceOracle`]'s rules in the module source).
///
/// This is the dynamic counterpart of the static analyzer
/// ([`crate::analysis`]): the analyzer is conservative, so a kernel it
/// passes clean must also pass checked execution — the lint-corpus
/// cross-check tests assert exactly that (one-directional: checked
/// execution observes only the launched NDRange, so it can miss races the
/// analyzer flags).
///
/// # Errors
///
/// Everything [`run_ndrange`] returns, plus
/// [`ExecErrorKind::LocalRace`] and [`ExecErrorKind::BudgetExhausted`].
pub fn run_ndrange_checked(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: &CheckConfig,
) -> Result<ExecStats, ExecError> {
    interp::run(kernel, args, buffers, range, Some(cfg), None)
}

/// [`run_ndrange_checked`] that additionally logs every global-buffer
/// access (buffer, flat work-item id, byte range, load/store) into a
/// [`GlobalObs`] — the dynamic oracle the static effect summaries are
/// validated against.
///
/// # Errors
///
/// Everything [`run_ndrange_checked`] returns.
pub fn run_ndrange_observed(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    cfg: &CheckConfig,
) -> Result<(ExecStats, GlobalObs), ExecError> {
    let mut obs = GlobalObs::default();
    let stats = interp::run(kernel, args, buffers, range, Some(cfg), Some(&mut obs))?;
    Ok((stats, obs))
}

/// Binds launch arguments to slot values, shared by every engine.
///
/// Lays out dynamic `__local` allocations after the kernel's static
/// local arrays (8-byte aligned) and returns the bound parameter values
/// plus the total local-arena size in bytes.
fn bind_args(
    kernel: &CompiledKernel,
    args: &[ArgValue],
    buffers_len: usize,
) -> Result<(Vec<Value>, usize), ExecError> {
    if args.len() != kernel.params.len() {
        return Err(ExecError::new(format!(
            "kernel `{}` expects {} arguments, got {}",
            kernel.name,
            kernel.params.len(),
            args.len()
        )));
    }
    let mut arena_bytes = (kernel.static_local_bytes as usize + 7) & !7;
    let mut bound = Vec::with_capacity(args.len());
    for (i, (arg, param)) in args.iter().zip(&kernel.params).enumerate() {
        let v = match (arg, param) {
            (ArgValue::Scalar(v), ParamType::Scalar(want)) => v.cast(*want),
            (
                ArgValue::GlobalBuffer(b),
                ParamType::Pointer(AddressSpace::Global | AddressSpace::Constant, elem),
            ) => {
                if *b >= buffers_len {
                    return Err(ExecError::new(format!(
                        "argument {i}: buffer index {b} out of range ({buffers_len} bound)"
                    )));
                }
                Value::Ptr(Ptr {
                    space: PtrSpace::Global(*b),
                    elem: *elem,
                    offset: 0,
                })
            }
            (ArgValue::LocalAlloc(bytes), ParamType::Pointer(AddressSpace::Local, elem)) => {
                let offset = (arena_bytes + 7) & !7;
                arena_bytes = offset + bytes;
                Value::Ptr(Ptr {
                    space: PtrSpace::Local,
                    elem: *elem,
                    offset: (offset / elem.size_bytes()) as i64,
                })
            }
            (arg, param) => {
                return Err(ExecError::new(format!(
                    "argument {i}: {arg:?} does not match parameter type {param:?}"
                )));
            }
        };
        bound.push(v);
    }
    Ok((bound, arena_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;

    fn run(
        src: &str,
        kernel: &str,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
    ) -> Result<ExecStats, ExecError> {
        let p = compile(src).expect("compile");
        let k = p.kernel(kernel).expect("kernel");
        run_ndrange(k, args, buffers, range)
    }

    /// Compiles with `WarnOnly` analysis: tests of the VM's *dynamic*
    /// oracles need kernels the static analyzer would reject at build time.
    fn run_warn(
        src: &str,
        kernel: &str,
        args: &[ArgValue],
        buffers: &mut [GlobalBuffer],
        range: &NdRange,
        cfg: Option<&CheckConfig>,
    ) -> Result<ExecStats, ExecError> {
        let opts = crate::CompileOptions {
            analysis: crate::AnalysisMode::WarnOnly,
        };
        let p = crate::compile_with_options(src, &opts).expect("compile");
        let k = p.kernel(kernel).expect("kernel");
        match cfg {
            Some(c) => run_ndrange_checked(k, args, buffers, range, c),
            None => run_ndrange(k, args, buffers, range),
        }
    }

    #[test]
    fn vector_add() {
        let src = r#"__kernel void vadd(__global const float* a, __global const float* b,
                                        __global float* c, int n) {
            int i = get_global_id(0);
            if (i < n) c[i] = a[i] + b[i];
        }"#;
        let mut bufs = vec![
            GlobalBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0]),
            GlobalBuffer::from_f32(&[10.0, 20.0, 30.0, 40.0]),
            GlobalBuffer::zeroed(16),
        ];
        let args = [
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::global(2),
            ArgValue::from_i32(4),
        ];
        let stats = run(src, "vadd", &args, &mut bufs, &NdRange::linear(4, 2)).unwrap();
        assert_eq!(bufs[2].as_f32(), vec![11.0, 22.0, 33.0, 44.0]);
        assert_eq!(stats.work_items, 4);
        assert_eq!(stats.work_groups, 2);
        assert!(stats.instructions > 0);
    }

    #[test]
    fn guarded_tail_is_not_written() {
        let src = r#"__kernel void inc(__global int* a, int n) {
            int i = get_global_id(0);
            if (i < n) a[i] = a[i] + 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[5, 5, 5, 5])];
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(src, "inc", &args, &mut bufs, &NdRange::linear(4, 4)).unwrap();
        assert_eq!(bufs[0].as_i32(), vec![6, 6, 6, 5]);
    }

    #[test]
    fn loops_and_accumulation() {
        let src = r#"__kernel void rowsum(__global const float* m, __global float* out, int cols) {
            int r = get_global_id(0);
            float acc = 0.0f;
            for (int c = 0; c < cols; c++) acc += m[r * cols + c];
            out[r] = acc;
        }"#;
        let mut bufs = vec![
            GlobalBuffer::from_f32(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]),
            GlobalBuffer::zeroed(8),
        ];
        let args = [
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_i32(3),
        ];
        run(src, "rowsum", &args, &mut bufs, &NdRange::linear(2, 1)).unwrap();
        assert_eq!(bufs[1].as_f32(), vec![6.0, 15.0]);
    }

    #[test]
    fn barrier_synchronizes_local_memory() {
        // Each item writes its id into local memory; after the barrier,
        // item reads its neighbour's slot (reversed), exposing whether the
        // barrier actually ordered the writes before the reads.
        let src = r#"__kernel void rev(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            int n = get_local_size(0);
            tmp[l] = l * 10;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[n - 1 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        run(
            src,
            "rev",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![70, 60, 50, 40, 30, 20, 10, 0]);
    }

    #[test]
    fn barrier_releases_are_counted_per_group() {
        let src = r#"__kernel void sync(__global int* out) {
            __local int tmp[4];
            int l = get_local_id(0);
            tmp[l] = l;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        let stats = run(
            src,
            "sync",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 4),
        )
        .unwrap();
        assert_eq!(stats.barriers, 2, "one release per work-group");
        // A barrier-free launch reports none.
        let src = "__kernel void id(__global int* out) { out[get_global_id(0)] = 1; }";
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        let stats = run(
            src,
            "id",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 4),
        )
        .unwrap();
        assert_eq!(stats.barriers, 0);
    }

    #[test]
    fn two_dimensional_ids() {
        let src = r#"__kernel void coords(__global int* out, int width) {
            int x = get_global_id(0);
            int y = get_global_id(1);
            out[y * width + x] = x * 100 + y;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(6 * 4)];
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(
            src,
            "coords",
            &args,
            &mut bufs,
            &NdRange::d2([3, 2], [1, 1]),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![0, 100, 200, 1, 101, 201]);
    }

    #[test]
    fn local_2d_array_tiling() {
        let src = r#"__kernel void transpose4(__global const float* in, __global float* out) {
            __local float tile[4][4];
            int x = get_local_id(0);
            int y = get_local_id(1);
            tile[y][x] = in[y * 4 + x];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[x * 4 + y] = tile[y][x];
        }"#;
        let input: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let mut bufs = vec![GlobalBuffer::from_f32(&input), GlobalBuffer::zeroed(64)];
        run(
            src,
            "transpose4",
            &[ArgValue::global(0), ArgValue::global(1)],
            &mut bufs,
            &NdRange::d2([4, 4], [4, 4]),
        )
        .unwrap();
        let out = bufs[1].as_f32();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out[x * 4 + y], (y * 4 + x) as f32);
            }
        }
    }

    #[test]
    fn dynamic_local_argument() {
        let src = r#"__kernel void scan2(__global int* data, __local int* scratch) {
            int l = get_local_id(0);
            scratch[l] = data[get_global_id(0)];
            barrier(CLK_LOCAL_MEM_FENCE);
            int n = get_local_size(0);
            int sum = 0;
            for (int i = 0; i <= l; i++) sum += scratch[i];
            data[get_global_id(0)] = sum;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[1, 2, 3, 4])];
        let args = [ArgValue::global(0), ArgValue::local_bytes(4 * 4)];
        run(src, "scan2", &args, &mut bufs, &NdRange::linear(4, 4)).unwrap();
        assert_eq!(bufs[0].as_i32(), vec![1, 3, 6, 10]);
    }

    #[test]
    fn out_of_bounds_read_is_an_error() {
        let src = r#"__kernel void oob(__global int* a) { a[0] = a[99]; }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[0, 1])];
        let err = run(
            src,
            "oob",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("out-of-bounds"));
    }

    #[test]
    fn division_by_zero_is_an_error() {
        let src = r#"__kernel void dz(__global int* a) { a[0] = a[1] / a[0]; }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[0, 1])];
        let err = run(
            src,
            "dz",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("division by zero"));
    }

    #[test]
    fn barrier_divergence_is_an_error() {
        let src = r#"__kernel void div(__global int* a) {
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            a[get_global_id(0)] = 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        let err = run_warn(
            src,
            "div",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(2, 2),
            None,
        )
        .unwrap_err();
        assert!(err.message().contains("divergence"));
        assert_eq!(err.kind(), ExecErrorKind::BarrierDivergence);
        // The error names where the waiting items are parked.
        assert!(err.message().contains("line 2"), "{}", err.message());
    }

    #[test]
    fn waiting_at_different_barriers_is_divergence() {
        // Both items reach *a* barrier, but not the *same* one; releasing
        // them together would be wrong (real devices deadlock here).
        let src = r#"__kernel void twob(__global int* a) {
            if (get_local_id(0) == 0) {
                barrier(CLK_LOCAL_MEM_FENCE);
            } else {
                barrier(CLK_LOCAL_MEM_FENCE);
            }
            a[get_global_id(0)] = 1;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        let err = run_warn(
            src,
            "twob",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(2, 2),
            None,
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::BarrierDivergence);
        assert!(
            err.message().contains("different barriers"),
            "{}",
            err.message()
        );
        assert!(err.message().contains("line 3"), "{}", err.message());
        assert!(err.message().contains("line 5"), "{}", err.message());
    }

    #[test]
    fn checked_mode_detects_local_race() {
        // Every item stores its own id to tmp[0]: a classic same-element
        // different-values race the static analyzer also flags.
        let src = r#"__kernel void race(__global int* out) {
            __local int tmp[1];
            tmp[0] = get_local_id(0);
            out[get_global_id(0)] = tmp[0];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(16)];
        let err = run_warn(
            src,
            "race",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(4, 4),
            Some(&CheckConfig::default()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::LocalRace);
        assert!(err.message().contains("data race"), "{}", err.message());
    }

    #[test]
    fn checked_mode_detects_unsynchronized_read() {
        // Item reads its neighbour's slot with no barrier in between.
        let src = r#"__kernel void xread(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            tmp[l] = l + 1;
            out[get_global_id(0)] = tmp[7 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(32)];
        let err = run_warn(
            src,
            "xread",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
            Some(&CheckConfig::default()),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::LocalRace);
        assert!(err.message().contains("reads"), "{}", err.message());
    }

    #[test]
    fn checked_mode_accepts_barrier_separated_accesses() {
        // The `rev` kernel from `barrier_synchronizes_local_memory` is
        // clean: the barrier resets the oracle's writer sets.
        let src = r#"__kernel void rev(__global int* out) {
            __local int tmp[8];
            int l = get_local_id(0);
            int n = get_local_size(0);
            tmp[l] = l * 10;
            barrier(CLK_LOCAL_MEM_FENCE);
            out[get_global_id(0)] = tmp[n - 1 - l];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8 * 4)];
        run_warn(
            src,
            "rev",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 8),
            Some(&CheckConfig::default()),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![70, 60, 50, 40, 30, 20, 10, 0]);
    }

    #[test]
    fn checked_mode_accepts_same_value_stores() {
        // All items store the same constant to tmp[0]: benign by the
        // same rule the static analyzer uses.
        let src = r#"__kernel void bcast(__global int* out) {
            __local int tmp[1];
            tmp[0] = 42;
            out[get_global_id(0)] = tmp[0];
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(16)];
        run_warn(
            src,
            "bcast",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(4, 4),
            Some(&CheckConfig::default()),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![42, 42, 42, 42]);
    }

    #[test]
    fn checked_mode_budget_stops_runaway_loop() {
        let src = r#"__kernel void spin(__global int* out) {
            int x = 0;
            while (x < 10) { x = x - 1; }
            out[0] = x;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let cfg = CheckConfig {
            max_instructions: 10_000,
            detect_races: true,
        };
        let err = run_warn(
            src,
            "spin",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
            Some(&cfg),
        )
        .unwrap_err();
        assert_eq!(err.kind(), ExecErrorKind::BudgetExhausted);
        assert!(err.message().contains("budget"), "{}", err.message());
    }

    #[test]
    fn arg_count_mismatch_is_an_error() {
        let src = r#"__kernel void two(__global int* a, int n) { a[0] = n; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "two",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("expects 2 arguments"));
    }

    #[test]
    fn arg_kind_mismatch_is_an_error() {
        let src = r#"__kernel void two(__global int* a, int n) { a[0] = n; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "two",
            &[ArgValue::from_i32(1), ArgValue::from_i32(2)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap_err();
        assert!(err.message().contains("does not match"));
    }

    #[test]
    fn scalar_args_are_coerced_to_param_type() {
        let src = r#"__kernel void put(__global float* a, float v) { a[0] = v; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        // Pass an int where a float is expected.
        let args = [ArgValue::global(0), ArgValue::from_i32(3)];
        run(src, "put", &args, &mut bufs, &NdRange::linear(1, 1)).unwrap();
        assert_eq!(bufs[0].as_f32(), vec![3.0]);
    }

    #[test]
    fn nonuniform_local_size_rejected() {
        let src = r#"__kernel void f(__global int* a) { a[0] = 1; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        let err = run(
            src,
            "f",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(5, 2),
        )
        .unwrap_err();
        assert!(err.message().contains("does not divide"));
    }

    #[test]
    fn math_builtins() {
        let src = r#"__kernel void m(__global float* a) {
            a[0] = sqrt(a[0]);
            a[1] = fmax(a[1], 2.5f);
            a[2] = pow(a[2], 2.0f);
            a[3] = fabs(a[3]);
            a[4] = clamp(a[4], 0.0f, 1.0f);
        }"#;
        let mut bufs = vec![GlobalBuffer::from_f32(&[16.0, 1.0, 3.0, -2.0, 7.0])];
        run(
            src,
            "m",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_f32(), vec![4.0, 2.5, 9.0, 2.0, 1.0]);
    }

    #[test]
    fn integer_min_max_abs() {
        let src = r#"__kernel void m(__global int* a) {
            a[0] = min(a[0], a[1]);
            a[1] = max(a[1], 100);
            a[2] = abs(a[2]);
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[7, 3, -9])];
        run(
            src,
            "m",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![3, 100, 9]);
    }

    #[test]
    fn while_and_do_while() {
        let src = r#"__kernel void w(__global int* a) {
            int x = 0;
            while (x < 5) x++;
            int y = 0;
            do { y += 2; } while (y < 1);
            a[0] = x;
            a[1] = y;
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(8)];
        run(
            src,
            "w",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![5, 2]);
    }

    #[test]
    fn break_and_continue() {
        let src = r#"__kernel void bc(__global int* a) {
            int sum = 0;
            for (int i = 0; i < 100; i++) {
                if (i % 2 == 0) continue;
                if (i > 8) break;
                sum += i;
            }
            a[0] = sum; // 1+3+5+7 = 16
        }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4)];
        run(
            src,
            "bc",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![16]);
    }

    #[test]
    fn ternary_and_logical_ops() {
        let src = r#"__kernel void t(__global int* a) {
            int x = a[0];
            a[1] = (x > 0 && x < 10) ? 1 : 0;
            a[2] = (x < 0 || x == 5) ? 7 : 8;
            a[3] = !(x == 5) ? 100 : 200;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_i32(&[5, 0, 0, 0])];
        run(
            src,
            "t",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_i32(), vec![5, 1, 7, 200]);
    }

    #[test]
    fn unsigned_comparison_uses_unsigned_order() {
        let src = r#"__kernel void u(__global uint* a) {
            uint big = 0xFFFFFFFFu;
            a[0] = (big > 1u) ? 1u : 0u;
        }"#;
        let mut bufs = vec![GlobalBuffer::from_u32(&[0])];
        run(
            src,
            "u",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        assert_eq!(bufs[0].as_u32(), vec![1]);
    }

    #[test]
    fn pointer_offset_arithmetic() {
        let src = r#"__kernel void p(__global float* a, int off) {
            __global float* q = a;
            q = q + off;
            q[0] = 42.0f;
        }"#;
        // Pointer variables are declared via parameters only in the subset;
        // this uses a pointer parameter reassignment instead.
        let src2 = r#"__kernel void p(__global float* a, int off) {
            a = a + off;
            a[0] = 42.0f;
        }"#;
        let _ = src;
        let mut bufs = vec![GlobalBuffer::from_f32(&[0.0, 0.0, 0.0])];
        let args = [ArgValue::global(0), ArgValue::from_i32(2)];
        run(src2, "p", &args, &mut bufs, &NdRange::linear(1, 1)).unwrap();
        assert_eq!(bufs[0].as_f32(), vec![0.0, 0.0, 42.0]);
    }

    #[test]
    fn stats_count_instructions() {
        let src = r#"__kernel void s(__global int* a) { a[get_global_id(0)] = 1; }"#;
        let mut bufs = vec![GlobalBuffer::zeroed(4 * 8)];
        let one = run(
            src,
            "s",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(1, 1),
        )
        .unwrap();
        let eight = run(
            src,
            "s",
            &[ArgValue::global(0)],
            &mut bufs,
            &NdRange::linear(8, 1),
        )
        .unwrap();
        assert_eq!(eight.instructions, one.instructions * 8);
    }

    // --- Engine equivalence. ----------------------------------------------

    const ALL_ENGINES: [EngineKind; 3] = [
        EngineKind::Interp,
        EngineKind::CompiledSerial,
        EngineKind::Compiled,
    ];

    /// Runs `kernel` on every engine and asserts byte-identical buffers,
    /// identical stats, and identical errors across all of them.
    fn assert_engines_agree(
        src: &str,
        kernel: &str,
        args: &[ArgValue],
        buffers: &[GlobalBuffer],
        range: &NdRange,
    ) {
        let p = compile(src).expect("compile");
        let k = p.kernel(kernel).expect("kernel");
        let mut reference: Option<(Result<ExecStats, ExecError>, Vec<GlobalBuffer>)> = None;
        for engine in ALL_ENGINES {
            let mut bufs = buffers.to_vec();
            let r = run_ndrange_with_engine(k, args, &mut bufs, range, engine);
            match &reference {
                None => reference = Some((r, bufs)),
                Some((r0, bufs0)) => {
                    assert_eq!(r0, &r, "stats/error diverged on {engine:?}");
                    if r.is_ok() {
                        assert_eq!(bufs0, &bufs, "buffers diverged on {engine:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn engines_agree_on_elementwise_kernel() {
        let src = r#"__kernel void saxpy(__global float* y, __global const float* x,
                                         float a, int n) {
            int i = get_global_id(0);
            if (i < n) y[i] = a * x[i] + y[i];
        }"#;
        let n = 1024u64;
        let y: Vec<f32> = (0..n).map(|i| i as f32).collect();
        let x: Vec<f32> = (0..n).map(|i| (i as f32) * 0.5).collect();
        let bufs = vec![GlobalBuffer::from_f32(&y), GlobalBuffer::from_f32(&x)];
        let args = [
            ArgValue::global(0),
            ArgValue::global(1),
            ArgValue::from_f32(2.5),
            ArgValue::from_i32(n as i32),
        ];
        assert_engines_agree(src, "saxpy", &args, &bufs, &NdRange::linear(n, 64));
    }

    #[test]
    fn engines_agree_on_barrier_kernel() {
        let src = r#"__kernel void rev(__global int* out, __global const int* in) {
            __local int tile[64];
            int l = get_local_id(0);
            int g = get_global_id(0);
            tile[l] = in[g];
            barrier(CLK_LOCAL_MEM_FENCE);
            out[g] = tile[63 - l];
        }"#;
        let n = 512u64;
        let inp: Vec<i32> = (0..n as i32).collect();
        let bufs = vec![
            GlobalBuffer::zeroed(n as usize * 4),
            GlobalBuffer::from_i32(&inp),
        ];
        let args = [ArgValue::global(0), ArgValue::global(1)];
        assert_engines_agree(src, "rev", &args, &bufs, &NdRange::linear(n, 64));
    }

    #[test]
    fn engines_agree_on_runtime_error() {
        let src = r#"__kernel void oob(__global int* a, int n) {
            a[n] = 1;
        }"#;
        let bufs = vec![GlobalBuffer::from_i32(&[0; 4])];
        let args = [ArgValue::global(0), ArgValue::from_i32(100)];
        assert_engines_agree(src, "oob", &args, &bufs, &NdRange::linear(1, 1));
    }

    #[test]
    fn parallel_gate_admits_elementwise_and_rejects_scatter() {
        let src = r#"
            __kernel void scale(__global float* y, float a, int n) {
                int i = get_global_id(0);
                if (i < n) y[i] = y[i] * a;
            }
            __kernel void scatter(__global int* out, __global const int* idx) {
                out[idx[get_global_id(0)]] = 1;
            }
        "#;
        let p = compile(src).expect("compile");
        let range = NdRange::linear(1024, 64);
        let scale = p.kernel("scale").unwrap();
        assert!(parallel_groups_safe(
            scale,
            &[
                ArgValue::global(0),
                ArgValue::from_f32(2.0),
                ArgValue::from_i32(1024)
            ],
            &range,
        ));
        let scatter = p.kernel("scatter").unwrap();
        assert!(!parallel_groups_safe(
            scatter,
            &[ArgValue::global(0), ArgValue::global(1)],
            &range,
        ));
    }

    #[test]
    fn parallel_gate_rejects_aliased_written_buffer() {
        let src = r#"__kernel void copy(__global int* out, __global const int* in) {
            int i = get_global_id(0);
            out[i] = in[i];
        }"#;
        let p = compile(src).expect("compile");
        let k = p.kernel("copy").unwrap();
        let range = NdRange::linear(1024, 64);
        assert!(parallel_groups_safe(
            k,
            &[ArgValue::global(0), ArgValue::global(1)],
            &range,
        ));
        assert!(!parallel_groups_safe(
            k,
            &[ArgValue::global(0), ArgValue::global(0)],
            &range,
        ));
    }

    #[test]
    fn parallel_gate_requires_single_group_in_other_dims() {
        // Writes are gid(0)-private, but a 2-D launch with several groups
        // along dim 1 would repeat gid(0) across groups — must reject.
        let src = r#"__kernel void f(__global int* out) {
            out[get_global_id(0)] = 1;
        }"#;
        let p = compile(src).expect("compile");
        let k = p.kernel("f").unwrap();
        assert!(parallel_groups_safe(
            k,
            &[ArgValue::global(0)],
            &NdRange::d2([1024, 4], [64, 4]),
        ));
        assert!(!parallel_groups_safe(
            k,
            &[ArgValue::global(0)],
            &NdRange::d2([1024, 8], [64, 4]),
        ));
    }

    #[test]
    fn engine_selection_override_round_trip() {
        set_default_engine(Some(EngineKind::Interp));
        assert_eq!(default_engine(), EngineKind::Interp);
        set_default_engine(Some(EngineKind::CompiledSerial));
        assert_eq!(default_engine(), EngineKind::CompiledSerial);
        set_default_engine(None);
        // Back to env/default selection (never the value we just cleared
        // unless the env says so).
        let _ = default_engine();
    }
}
