//! Shared instruction semantics.
//!
//! Every execution engine — the reference interpreter and the compiled
//! closure engine — funnels arithmetic, memory, and math-builtin
//! behaviour through these helpers, so "byte-identical across engines"
//! is enforced by construction rather than by duplicated code.

use crate::bytecode::{BinKind, CmpKind, Math1, Math2};
use crate::types::ScalarType;

use super::*;

pub(super) fn pop(stack: &mut Vec<Value>) -> Result<Value, ExecError> {
    stack
        .pop()
        .ok_or_else(|| ExecError::new("operand stack underflow"))
}

pub(super) fn int_value(v: i64, ty: ScalarType) -> Value {
    match ty {
        ScalarType::Bool => Value::Bool(v != 0),
        ScalarType::I32 => Value::I32(v as i32),
        ScalarType::U32 => Value::U32(v as u32),
        ScalarType::I64 => Value::I64(v),
        ScalarType::U64 => Value::U64(v as u64),
        ScalarType::F32 => Value::F32(v as f32),
        ScalarType::F64 => Value::F64(v as f64),
    }
}

/// The "dangling buffer binding" error, shared by every memory view.
pub(super) fn dangling_buffer(b: usize) -> ExecError {
    ExecError::new(format!("dangling buffer binding {b}"))
}

/// Loads one element from the work-group local arena.
pub(super) fn load_arena(arena: &[u8], elem: ScalarType, offset: i64) -> Result<Value, ExecError> {
    let sz = elem.size_bytes();
    let off = checked_offset(offset, sz, arena.len())?;
    Ok(decode_scalar(&arena[off..off + sz], elem))
}

/// Stores one element into the work-group local arena.
pub(super) fn store_arena(
    arena: &mut [u8],
    elem: ScalarType,
    offset: i64,
    v: &Value,
) -> Result<(), ExecError> {
    let sz = elem.size_bytes();
    let off = checked_offset(offset, sz, arena.len())?;
    write_scalar(&mut arena[off..off + sz], elem, v);
    Ok(())
}

pub(super) fn load_mem(
    p: Ptr,
    elem: ScalarType,
    buffers: &[GlobalBuffer],
    arena: &[u8],
) -> Result<Value, ExecError> {
    match p.space {
        PtrSpace::Global(b) => buffers
            .get(b)
            .ok_or_else(|| dangling_buffer(b))?
            .load(elem, p.offset),
        PtrSpace::Local => load_arena(arena, elem, p.offset),
    }
}

pub(super) fn store_mem(
    p: Ptr,
    elem: ScalarType,
    v: &Value,
    buffers: &mut [GlobalBuffer],
    arena: &mut [u8],
) -> Result<(), ExecError> {
    match p.space {
        PtrSpace::Global(b) => {
            let buf = buffers.get_mut(b).ok_or_else(|| dangling_buffer(b))?;
            buf.store(elem, p.offset, v)
        }
        PtrSpace::Local => store_arena(arena, elem, p.offset, v),
    }
}

pub(super) fn bin_op(
    kind: BinKind,
    ty: ScalarType,
    a: Value,
    b: Value,
) -> Result<Value, ExecError> {
    use ScalarType::*;
    if ty == F32 {
        // Compute in f32 so single-precision rounding matches real devices.
        let (x, y) = (a.to_f64_lossy() as f32, b.to_f64_lossy() as f32);
        let r = match kind {
            BinKind::Add => x + y,
            BinKind::Sub => x - y,
            BinKind::Mul => x * y,
            BinKind::Div => x / y,
            other => {
                return Err(ExecError::new(format!(
                    "float operands for integer operator {other:?}"
                )));
            }
        };
        return Ok(Value::F32(r));
    }
    if ty == F64 {
        let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
        let r = match kind {
            BinKind::Add => x + y,
            BinKind::Sub => x - y,
            BinKind::Mul => x * y,
            BinKind::Div => x / y,
            other => {
                return Err(ExecError::new(format!(
                    "float operands for integer operator {other:?}"
                )));
            }
        };
        return Ok(Value::F64(r));
    }
    // Integer (and bool promoted earlier by sema).
    let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
    let div_checked = |num: i64, den: i64| -> Result<i64, ExecError> {
        if den == 0 {
            Err(ExecError::new("integer division by zero"))
        } else {
            Ok(num)
        }
    };
    let r = match (kind, ty) {
        (BinKind::Add, _) => x.wrapping_add(y),
        (BinKind::Sub, _) => x.wrapping_sub(y),
        (BinKind::Mul, _) => x.wrapping_mul(y),
        (BinKind::Div, U32 | U64) => {
            div_checked(x, y)?;
            ((x as u64).wrapping_div(y as u64)) as i64
        }
        (BinKind::Div, _) => {
            div_checked(x, y)?;
            x.wrapping_div(y)
        }
        (BinKind::Rem, U32 | U64) => {
            div_checked(x, y)?;
            ((x as u64).wrapping_rem(y as u64)) as i64
        }
        (BinKind::Rem, _) => {
            div_checked(x, y)?;
            x.wrapping_rem(y)
        }
        (BinKind::Shl, _) => x.wrapping_shl(y as u32 & 63),
        (BinKind::Shr, U32 | U64) => ((x as u64).wrapping_shr(y as u32 & 63)) as i64,
        (BinKind::Shr, _) => x.wrapping_shr(y as u32 & 63),
        (BinKind::And, _) => x & y,
        (BinKind::Or, _) => x | y,
        (BinKind::Xor, _) => x ^ y,
    };
    // 32-bit types need masking before re-widening so wraparound matches C.
    Ok(match ty {
        I32 => Value::I32(r as i32),
        U32 => Value::U32(r as u32),
        I64 => Value::I64(r),
        U64 => Value::U64(r as u64),
        Bool => Value::Bool(r != 0),
        F32 | F64 => unreachable!("floats handled above"),
    })
}

pub(super) fn cmp_op(kind: CmpKind, ty: ScalarType, a: Value, b: Value) -> bool {
    if ty.is_float() {
        let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    } else if matches!(ty, ScalarType::U32 | ScalarType::U64) {
        let (x, y) = (a.to_i64_lossy() as u64, b.to_i64_lossy() as u64);
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    } else {
        let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
        match kind {
            CmpKind::Eq => x == y,
            CmpKind::Ne => x != y,
            CmpKind::Lt => x < y,
            CmpKind::Le => x <= y,
            CmpKind::Gt => x > y,
            CmpKind::Ge => x >= y,
        }
    }
}

pub(super) fn neg_op(ty: ScalarType, a: Value) -> Value {
    match ty {
        ScalarType::F32 => Value::F32(-(a.to_f64_lossy() as f32)),
        ScalarType::F64 => Value::F64(-a.to_f64_lossy()),
        ScalarType::I32 => Value::I32((a.to_i64_lossy() as i32).wrapping_neg()),
        ScalarType::U32 => Value::U32((a.to_i64_lossy() as u32).wrapping_neg()),
        ScalarType::I64 => Value::I64(a.to_i64_lossy().wrapping_neg()),
        ScalarType::U64 => Value::U64((a.to_i64_lossy() as u64).wrapping_neg()),
        ScalarType::Bool => Value::I32(-i64::from(a.to_i64_lossy() != 0) as i32),
    }
}

pub(super) fn math1(m: Math1, ty: ScalarType, a: Value) -> Value {
    if ty.is_integer() {
        // Only Abs reaches here for integers (sema guarantees).
        let x = a.to_i64_lossy();
        return int_value(x.wrapping_abs(), ty);
    }
    let x = a.to_f64_lossy();
    let r = match m {
        Math1::Sqrt => x.sqrt(),
        Math1::Rsqrt => 1.0 / x.sqrt(),
        Math1::Abs => x.abs(),
        Math1::Exp => x.exp(),
        Math1::Log => x.ln(),
        Math1::Log2 => x.log2(),
        Math1::Sin => x.sin(),
        Math1::Cos => x.cos(),
        Math1::Tan => x.tan(),
        Math1::Floor => x.floor(),
        Math1::Ceil => x.ceil(),
    };
    if ty == ScalarType::F32 {
        Value::F32(r as f32)
    } else {
        Value::F64(r)
    }
}

pub(super) fn math2(m: Math2, ty: ScalarType, a: Value, b: Value) -> Value {
    if ty.is_integer() {
        let (x, y) = (a.to_i64_lossy(), b.to_i64_lossy());
        let unsigned = matches!(ty, ScalarType::U32 | ScalarType::U64);
        let r = match m {
            Math2::Min => {
                if unsigned {
                    (x as u64).min(y as u64) as i64
                } else {
                    x.min(y)
                }
            }
            Math2::Max => {
                if unsigned {
                    (x as u64).max(y as u64) as i64
                } else {
                    x.max(y)
                }
            }
            Math2::Pow | Math2::Fmod => {
                // Sema types pow/fmod as floats, so this is unreachable.
                unreachable!("float-only builtin with integer type")
            }
        };
        return int_value(r, ty);
    }
    let (x, y) = (a.to_f64_lossy(), b.to_f64_lossy());
    let r = match m {
        Math2::Pow => x.powf(y),
        Math2::Min => x.min(y),
        Math2::Max => x.max(y),
        Math2::Fmod => x % y,
    };
    if ty == ScalarType::F32 {
        Value::F32(r as f32)
    } else {
        Value::F64(r)
    }
}
