//! Parallel execution of independent work-groups.
//!
//! OpenCL guarantees work-groups share no `__local` state, so the only
//! thing that can make group execution order observable is *global*
//! memory: two groups touching the same buffer bytes with at least one
//! write. The static effect prover ([`crate::analysis::effects`])
//! already computes per-argument access shapes for the inter-kernel
//! fusion checks; [`parallel_groups_safe`] reuses them to decide, per
//! launch, whether every written byte is provably private to one
//! work-group. Only then do groups fan out across OS threads — anything
//! weaker falls back to the sequential driver, so `run_ndrange` stays
//! byte-identical to the reference interpreter by construction.
//!
//! # Safety argument
//!
//! A written global argument parallelizes only when:
//!
//! * the effect summary is present and `complete` (no pattern overflow),
//!   and the argument's buffer is bound to exactly one parameter (no
//!   in-launch aliasing);
//! * every access pattern on it is `provable` — element index is
//!   exactly `gid(d) + add` for a single dimension `d` — and all
//!   patterns agree on `(coeffs, base)`, so reads never reach into a
//!   neighbouring group's written elements;
//! * every dimension other than `d` has exactly one work-group, so two
//!   distinct groups always differ in `gid(d)` and therefore write
//!   disjoint elements.
//!
//! Workers then share buffers through raw [`SharedBufs`] views: no
//! `&mut` to the bytes is ever formed, and the prover's disjointness
//! result is what makes the concurrent raw writes race-free.
//!
//! # Determinism
//!
//! Group execution itself uses the same compiled code and the same
//! intra-group schedule as the serial driver, and groups write disjoint
//! bytes, so successful runs are byte-identical regardless of thread
//! interleaving. [`ExecStats`] counters are summed over groups —
//! order-independent. On error, workers finish their sweep and the
//! error of the *lowest-numbered* failing group is reported, which is
//! exactly the error the sequential `gz/gy/gx` loop would have hit
//! first (buffer contents after a failed launch are indeterminate
//! either way).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::analysis::effects::{AccessPattern, PatternBase};
use crate::bytecode::CompiledKernel;

use super::compiled::{run_group, CompiledCode, Memory, SharedBufs};
use super::*;

/// Below this many total work-items a launch is not worth fanning out.
const MIN_PARALLEL_ITEMS: u64 = 256;

/// Whether the effect prover can show that parallel work-group
/// execution of `kernel` over `range` with `args` is unobservable
/// (same bytes, any group order).
///
/// Conservative: `false` means "could not prove it", not "unsafe".
/// Scalar and `__local` arguments never block parallelism; read-only
/// global arguments are always safe; written global arguments must
/// carry provably group-private access patterns (see the module docs
/// for the full argument).
pub fn parallel_groups_safe(kernel: &CompiledKernel, args: &[ArgValue], range: &NdRange) -> bool {
    let effects = &kernel.report.effects;
    if effects.is_empty() || args.len() != effects.args.len() {
        return false;
    }
    for (i, eff) in effects.args.iter().enumerate() {
        if !eff.mode.writes() {
            continue;
        }
        // A written argument must be a global buffer bound to exactly
        // one parameter slot — in-launch aliasing would let another
        // argument's (possibly unprovable) patterns reach these bytes.
        let ArgValue::GlobalBuffer(buf) = args[i] else {
            return false;
        };
        let aliased = args
            .iter()
            .enumerate()
            .any(|(j, a)| j != i && matches!(a, ArgValue::GlobalBuffer(b) if *b == buf));
        if aliased {
            return false;
        }
        if !eff.complete || eff.patterns.is_empty() {
            return false;
        }
        if !patterns_group_private(&eff.patterns, range) {
            return false;
        }
    }
    true
}

/// Whether every pattern is the same provable `gid(d) + add` shape and
/// the launch geometry makes that shape inter-group disjoint.
fn patterns_group_private(patterns: &[AccessPattern], range: &NdRange) -> bool {
    let first = &patterns[0];
    if !patterns
        .iter()
        .all(|p| p.provable && p.coeffs == first.coeffs && p.base == first.base)
    {
        return false;
    }
    // `provable` guarantees exactly one unit coefficient on dimension
    // `d` with a `Geom { id: d, .. }` (group-base) base.
    let PatternBase::Geom { id, .. } = first.base else {
        return false;
    };
    let d = id as usize;
    if d > 2 || first.coeffs[d] != 1 {
        return false;
    }
    // Groups that differ only in another dimension share their gid(d)
    // range — require those dimensions to hold a single group.
    (0..3).all(|e| e == d || range.global[e] / range.local[e] == 1)
}

/// Worker-thread count for a launch: `HAOCL_VM_THREADS` override, else
/// the machine's available parallelism, never more than the group count.
fn thread_count(total_groups: u64) -> u64 {
    let n = std::env::var("HAOCL_VM_THREADS")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get() as u64)
                .unwrap_or(1)
        });
    n.min(total_groups)
}

/// Runs the launch with work-groups fanned out over a worker pool, or
/// returns `None` when the launch should take the sequential path
/// (prover can't show safety, too small to pay for threads, or a
/// single-group range).
#[allow(clippy::too_many_arguments)]
pub(super) fn try_run_parallel(
    kernel: &CompiledKernel,
    ccode: &CompiledCode,
    bound: &[Value],
    args: &[ArgValue],
    buffers: &mut [GlobalBuffer],
    range: &NdRange,
    num_groups: [u64; 3],
    arena_bytes: usize,
) -> Option<Result<ExecStats, ExecError>> {
    let total_groups = num_groups[0] * num_groups[1] * num_groups[2];
    if total_groups < 2 || range.total_items() < MIN_PARALLEL_ITEMS {
        return None;
    }
    let threads = thread_count(total_groups);
    if threads < 2 {
        return None;
    }
    if !parallel_groups_safe(kernel, args, range) {
        return None;
    }

    let shared = SharedBufs::new(buffers);
    // Work distribution: a single fetch-add counter over flattened group
    // ids — natural work stealing, since fast workers simply claim more
    // groups.
    let next = AtomicU64::new(0);
    // First (lowest flat group id) error wins, matching the sequential
    // loop. `u64::MAX` = "no error so far"; also read by workers to skip
    // groups that can no longer affect the outcome.
    let first_err_group = AtomicU64::new(u64::MAX);
    let err_slot: Mutex<Option<(u64, ExecError)>> = Mutex::new(None);
    let total_stats = Mutex::new(ExecStats::default());

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut arena = vec![0u8; arena_bytes];
                let mut stats = ExecStats::default();
                let mut mem = Memory::Shared(&shared);
                loop {
                    let flat = next.fetch_add(1, Ordering::Relaxed);
                    if flat >= total_groups {
                        break;
                    }
                    // A lower-numbered group already failed: this group's
                    // outcome is unobservable, skip the work.
                    if first_err_group.load(Ordering::Relaxed) < flat {
                        continue;
                    }
                    let gx = flat % num_groups[0];
                    let gy = (flat / num_groups[0]) % num_groups[1];
                    let gz = flat / (num_groups[0] * num_groups[1]);
                    let r = run_group(
                        ccode,
                        kernel,
                        bound,
                        &mut mem,
                        range,
                        [gx, gy, gz],
                        num_groups,
                        &mut arena,
                        &mut stats,
                    );
                    match r {
                        Ok(()) => stats.work_groups += 1,
                        Err(e) => {
                            if first_err_group.fetch_min(flat, Ordering::Relaxed) > flat {
                                let mut slot = err_slot.lock().unwrap_or_else(|p| p.into_inner());
                                match &*slot {
                                    Some((g, _)) if *g <= flat => {}
                                    _ => *slot = Some((flat, e)),
                                }
                            }
                        }
                    }
                }
                let mut t = total_stats.lock().unwrap_or_else(|p| p.into_inner());
                t.instructions += stats.instructions;
                t.work_items += stats.work_items;
                t.work_groups += stats.work_groups;
                t.barriers += stats.barriers;
            });
        }
    });

    let err = err_slot.into_inner().unwrap_or_else(|p| p.into_inner());
    Some(match err {
        Some((_, e)) => Err(e),
        None => Ok(total_stats.into_inner().unwrap_or_else(|p| p.into_inner())),
    })
}
