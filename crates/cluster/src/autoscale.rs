//! Metrics-driven autoscaler policy.
//!
//! A pure decision engine over the obs layer's load series: feed it one
//! [`LoadSample`] per policy tick (derived from the `haocl_queue_depth`
//! gauges, see [`LoadSample::from_metrics_text`]) and it answers
//! [`Decision::ScaleUp`], [`Decision::ScaleDown`] or [`Decision::Hold`].
//! The engine carries the *policy* state — sustain streaks (hysteresis)
//! and a post-action cooldown — while actuation (spawning an NMP,
//! draining the least-resident node) stays with the caller, so the same
//! engine drives the platform layer, the soak bench and unit tests.
//!
//! Every scale decision is recorded: a `policy=autoscale` audit row and
//! one `haocl_autoscale_events_total` tick, labelled by direction.

use haocl_obs::top::parse_metrics;
use haocl_obs::{names, FusionDecision, Hub, PlacementAudit, DEFAULT_TENANT};

/// Tuning knobs for the [`Autoscaler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AutoscaleConfig {
    /// Mean queue depth per active node at or above which the fleet is
    /// considered overloaded.
    pub high_depth: f64,
    /// Mean queue depth per active node at or below which the fleet is
    /// considered underused.
    pub low_depth: f64,
    /// Consecutive overloaded (or underused) ticks required before
    /// acting — the hysteresis band that keeps a bursty queue from
    /// flapping the fleet.
    pub sustain_ticks: u32,
    /// Ticks to sit out after any scale action, letting the fleet
    /// absorb the change before the next decision.
    pub cooldown_ticks: u32,
    /// Never drain below this many active nodes.
    pub min_nodes: usize,
    /// Never grow beyond this many active nodes.
    pub max_nodes: usize,
}

impl Default for AutoscaleConfig {
    fn default() -> Self {
        AutoscaleConfig {
            high_depth: 4.0,
            low_depth: 1.0,
            sustain_ticks: 3,
            cooldown_ticks: 5,
            min_nodes: 1,
            max_nodes: 8,
        }
    }
}

/// One policy tick's view of the fleet's load.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadSample {
    /// Nodes currently `Active` (joining/draining/departed excluded).
    pub active_nodes: usize,
    /// Sum of the `haocl_queue_depth` gauges across all devices.
    pub total_queue_depth: u64,
}

impl LoadSample {
    /// Derives a sample from a Prometheus metrics rendering (the obs
    /// registry's text exposition): sums every `haocl_queue_depth`
    /// series. `active_nodes` comes from the membership layer, which the
    /// metrics text does not carry authoritatively.
    pub fn from_metrics_text(text: &str, active_nodes: usize) -> LoadSample {
        let total_queue_depth = parse_metrics(text)
            .iter()
            .filter(|s| s.name == names::QUEUE_DEPTH)
            .map(|s| s.value.max(0.0) as u64)
            .sum();
        LoadSample {
            active_nodes,
            total_queue_depth,
        }
    }

    /// Mean queue depth per active node (0 for an empty fleet).
    pub fn depth_per_node(&self) -> f64 {
        if self.active_nodes == 0 {
            return 0.0;
        }
        self.total_queue_depth as f64 / self.active_nodes as f64
    }
}

/// What one policy tick concluded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Load is inside the band (or the engine is in cooldown / the
    /// streak has not sustained yet).
    Hold,
    /// Sustained overload: the caller should add a node.
    ScaleUp,
    /// Sustained underuse: the caller should drain the least-resident
    /// node.
    ScaleDown,
}

impl std::fmt::Display for Decision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Decision::Hold => "hold",
            Decision::ScaleUp => "scale-up",
            Decision::ScaleDown => "scale-down",
        })
    }
}

/// The autoscaler policy loop's state: streaks, cooldown, event count.
#[derive(Debug)]
pub struct Autoscaler {
    cfg: AutoscaleConfig,
    high_streak: u32,
    low_streak: u32,
    cooldown: u32,
    events: u64,
}

impl Autoscaler {
    /// Creates an idle engine with the given tuning.
    pub fn new(cfg: AutoscaleConfig) -> Autoscaler {
        Autoscaler {
            cfg,
            high_streak: 0,
            low_streak: 0,
            cooldown: 0,
            events: 0,
        }
    }

    /// The engine's tuning.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.cfg
    }

    /// Scale actions decided so far (both directions).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Feeds one policy tick. Streaks accumulate even during cooldown —
    /// a fleet that stays overloaded through the cooldown acts on the
    /// first eligible tick — but no action fires until the cooldown has
    /// drained, and every action restarts it.
    pub fn observe(&mut self, sample: &LoadSample, obs: &Hub) -> Decision {
        let per_node = sample.depth_per_node();
        if per_node >= self.cfg.high_depth {
            self.high_streak += 1;
            self.low_streak = 0;
        } else if per_node <= self.cfg.low_depth {
            self.low_streak += 1;
            self.high_streak = 0;
        } else {
            self.high_streak = 0;
            self.low_streak = 0;
        }
        if self.cooldown > 0 {
            self.cooldown -= 1;
            return Decision::Hold;
        }
        if self.high_streak >= self.cfg.sustain_ticks && sample.active_nodes < self.cfg.max_nodes {
            self.act(Decision::ScaleUp, sample, per_node, obs);
            return Decision::ScaleUp;
        }
        if self.low_streak >= self.cfg.sustain_ticks && sample.active_nodes > self.cfg.min_nodes {
            self.act(Decision::ScaleDown, sample, per_node, obs);
            return Decision::ScaleDown;
        }
        Decision::Hold
    }

    fn act(&mut self, decision: Decision, sample: &LoadSample, per_node: f64, obs: &Hub) {
        self.high_streak = 0;
        self.low_streak = 0;
        self.cooldown = self.cfg.cooldown_ticks;
        self.events += 1;
        let direction = match decision {
            Decision::ScaleUp => "up",
            _ => "down",
        };
        obs.metrics
            .inc_counter(names::AUTOSCALE_EVENTS, &[("direction", direction)], 1);
        // Decision rows follow the scheduler convention: audit-logged
        // only while tracing is on.
        if !obs.enabled() {
            return;
        }
        obs.audit.record(PlacementAudit {
            kernel: "<autoscale>".to_string(),
            tenant: DEFAULT_TENANT.to_string(),
            policy: "autoscale".to_string(),
            candidates: Vec::new(),
            chosen: 0,
            reason: format!(
                "decision={decision} depth_per_node={per_node:.2} active={} total_depth={}",
                sample.active_nodes, sample.total_queue_depth
            ),
            fused: FusionDecision::Unconsidered,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(active: usize, depth: u64) -> LoadSample {
        LoadSample {
            active_nodes: active,
            total_queue_depth: depth,
        }
    }

    fn engine() -> Autoscaler {
        Autoscaler::new(AutoscaleConfig {
            high_depth: 4.0,
            low_depth: 1.0,
            sustain_ticks: 3,
            cooldown_ticks: 2,
            min_nodes: 1,
            max_nodes: 4,
        })
    }

    #[test]
    fn sustained_depth_scales_up_once_then_cools_down() {
        let obs = Hub::new();
        let mut a = engine();
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::Hold);
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::Hold);
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::ScaleUp);
        // Cooldown: even sustained overload holds for cooldown_ticks.
        assert_eq!(a.observe(&sample(3, 30), &obs), Decision::Hold);
        assert_eq!(a.observe(&sample(3, 30), &obs), Decision::Hold);
        // Streaks kept accumulating through the cooldown, so the first
        // eligible tick acts.
        assert_eq!(a.observe(&sample(3, 30), &obs), Decision::ScaleUp);
        assert_eq!(a.events(), 2);
        assert_eq!(
            obs.metrics
                .counter_value(names::AUTOSCALE_EVENTS, &[("direction", "up")]),
            2
        );
    }

    #[test]
    fn brief_spikes_inside_the_hysteresis_band_hold() {
        let obs = Hub::new();
        let mut a = engine();
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::Hold);
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::Hold);
        // The spike breaks before sustaining: streak resets.
        assert_eq!(a.observe(&sample(2, 4), &obs), Decision::Hold);
        assert_eq!(a.observe(&sample(2, 20), &obs), Decision::Hold);
        assert_eq!(a.events(), 0);
    }

    #[test]
    fn sustained_idle_scales_down_but_never_below_min() {
        let obs = Hub::new();
        let mut a = engine();
        for _ in 0..3 {
            a.observe(&sample(3, 0), &obs);
        }
        // Third idle tick crossed the sustain threshold.
        assert_eq!(a.events(), 1);
        assert_eq!(
            obs.metrics
                .counter_value(names::AUTOSCALE_EVENTS, &[("direction", "down")]),
            1
        );
        // At the floor, idleness never drains another node.
        let mut floor = engine();
        for _ in 0..10 {
            assert_eq!(floor.observe(&sample(1, 0), &obs), Decision::Hold);
        }
    }

    #[test]
    fn overload_at_the_ceiling_holds() {
        let obs = Hub::new();
        let mut a = engine();
        for _ in 0..10 {
            assert_eq!(a.observe(&sample(4, 100), &obs), Decision::Hold);
        }
        assert_eq!(a.events(), 0);
    }

    #[test]
    fn decisions_are_audit_logged_under_the_autoscale_policy() {
        let obs = Hub::new();
        obs.set_enabled(true);
        let mut a = engine();
        for _ in 0..3 {
            a.observe(&sample(2, 20), &obs);
        }
        let rendered = obs.audit.render();
        assert!(
            rendered.contains("policy=autoscale"),
            "audit row missing: {rendered}"
        );
        assert!(
            rendered.contains("decision=scale-up"),
            "audit row missing: {rendered}"
        );
    }

    #[test]
    fn load_sample_sums_queue_depth_gauges() {
        let text = "\
haocl_queue_depth{device=\"0\",node=\"gpu0\"} 3\n\
haocl_queue_depth{device=\"1\",node=\"gpu1\"} 5\n\
haocl_other{node=\"gpu0\"} 99\n";
        let s = LoadSample::from_metrics_text(text, 2);
        assert_eq!(s.total_queue_depth, 8);
        assert_eq!(s.depth_per_node(), 4.0);
        assert_eq!(LoadSample::from_metrics_text("", 0).depth_per_node(), 0.0);
    }
}
