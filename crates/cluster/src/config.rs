//! The cluster configuration file.
//!
//! The paper's host process "reads the address and port defined in a
//! system configuration file and creates a message and a data listener
//! for each node" (§III-C). The format here is line-oriented:
//!
//! ```text
//! # comments and blank lines are ignored
//! host 10.0.0.1:7000
//! node gpu0  10.0.1.1:7100 gpu
//! node gpu1  10.0.1.2:7100 gpu
//! node fpga0 10.0.2.1:7100 fpga
//! node fat0  10.0.3.1:7100 cpu,gpu,fpga
//! bandwidth_gbps 1.0
//! latency_us 50
//! ```

use haocl_net::LinkModel;
use haocl_proto::messages::DeviceKind;
use haocl_sim::SimDuration;

use crate::error::ClusterError;

/// One device node in the cluster.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Unique node name.
    pub name: String,
    /// Message-listener address (`"host:port"`); the data listener is at
    /// `port + 1`.
    pub addr: String,
    /// The devices installed in the node, in index order.
    pub devices: Vec<DeviceKind>,
}

impl NodeSpec {
    /// The data-listener address (`port + 1`).
    ///
    /// # Panics
    ///
    /// Panics if the address has no parseable port (validated at config
    /// construction).
    pub fn data_addr(&self) -> String {
        data_addr_of(&self.addr).expect("validated at construction")
    }
}

fn data_addr_of(addr: &str) -> Option<String> {
    let (h, p) = addr.rsplit_once(':')?;
    let port: u32 = p.parse().ok()?;
    Some(format!("{h}:{}", port + 1))
}

/// A parsed cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// The host process address (selects the host's transmit NIC).
    pub host_addr: String,
    /// Device nodes in declaration order (their [`haocl_proto::ids::NodeId`]s
    /// are their positions).
    pub nodes: Vec<NodeSpec>,
    /// The interconnect model.
    pub link: LinkModel,
}

impl ClusterConfig {
    /// Parses the configuration file format.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] with a line-numbered message on any
    /// malformed directive, duplicate node name/address, missing host
    /// line, or empty cluster.
    pub fn parse(text: &str) -> Result<Self, ClusterError> {
        let mut host_addr: Option<String> = None;
        let mut nodes: Vec<NodeSpec> = Vec::new();
        let mut bandwidth_gbps = 1.0f64;
        let mut latency = SimDuration::from_micros(50);
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let directive = parts.next().expect("non-empty line");
            let err = |msg: String| ClusterError::Config(format!("line {}: {msg}", lineno + 1));
            match directive {
                "host" => {
                    let addr = parts
                        .next()
                        .ok_or_else(|| err("`host` needs an address".into()))?;
                    if host_addr.is_some() {
                        return Err(err("duplicate `host` line".into()));
                    }
                    host_addr = Some(addr.to_string());
                }
                "node" => {
                    let name = parts
                        .next()
                        .ok_or_else(|| err("`node` needs a name".into()))?;
                    let addr = parts
                        .next()
                        .ok_or_else(|| err("`node` needs an address".into()))?;
                    let devices_str = parts
                        .next()
                        .ok_or_else(|| err("`node` needs a device list".into()))?;
                    if data_addr_of(addr).is_none() {
                        return Err(err(format!("address `{addr}` is not host:port")));
                    }
                    let mut devices = Vec::new();
                    for d in devices_str.split(',') {
                        devices.push(match d {
                            "cpu" => DeviceKind::Cpu,
                            "gpu" => DeviceKind::Gpu,
                            "fpga" => DeviceKind::Fpga,
                            other => return Err(err(format!("unknown device kind `{other}`"))),
                        });
                    }
                    if nodes.iter().any(|n| n.name == name) {
                        return Err(err(format!("duplicate node name `{name}`")));
                    }
                    if nodes.iter().any(|n| n.addr == addr) {
                        return Err(err(format!("duplicate node address `{addr}`")));
                    }
                    nodes.push(NodeSpec {
                        name: name.to_string(),
                        addr: addr.to_string(),
                        devices,
                    });
                }
                "bandwidth_gbps" => {
                    let v: f64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("`bandwidth_gbps` needs a number".into()))?;
                    if !(v.is_finite() && v > 0.0) {
                        return Err(err("bandwidth must be positive".into()));
                    }
                    bandwidth_gbps = v;
                }
                "latency_us" => {
                    let v: u64 = parts
                        .next()
                        .and_then(|s| s.parse().ok())
                        .ok_or_else(|| err("`latency_us` needs an integer".into()))?;
                    latency = SimDuration::from_micros(v);
                }
                other => return Err(err(format!("unknown directive `{other}`"))),
            }
            if parts.next().is_some() {
                return Err(ClusterError::Config(format!(
                    "line {}: trailing tokens",
                    lineno + 1
                )));
            }
        }
        let host_addr =
            host_addr.ok_or_else(|| ClusterError::Config("missing `host` line".into()))?;
        if nodes.is_empty() {
            return Err(ClusterError::Config("no `node` lines".into()));
        }
        Ok(ClusterConfig {
            host_addr,
            nodes,
            link: LinkModel::custom(bandwidth_gbps * 125.0e6, latency),
        })
    }

    /// A synthetic cluster of `n` single-GPU nodes on Gigabit Ethernet
    /// (the paper's GPU configuration).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn gpu_cluster(n: usize) -> Self {
        Self::uniform_cluster(n, DeviceKind::Gpu)
    }

    /// A single-node cluster whose host process runs *on* the device
    /// node (loopback backbone): the paper's single-node deployment,
    /// used for the "negligible overhead" comparison.
    pub fn colocated_single(kind: DeviceKind) -> Self {
        ClusterConfig {
            host_addr: "10.0.1.1:7000".to_string(),
            nodes: vec![NodeSpec {
                name: "colocated0".to_string(),
                addr: "10.0.1.1:7100".to_string(),
                devices: vec![kind],
            }],
            link: LinkModel::gigabit_ethernet(),
        }
    }

    /// A synthetic cluster of `n` single-FPGA nodes.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn fpga_cluster(n: usize) -> Self {
        Self::uniform_cluster(n, DeviceKind::Fpga)
    }

    /// A synthetic mixed cluster of `gpus` GPU nodes and `fpgas` FPGA
    /// nodes (the paper's GPU+FPGA configuration).
    ///
    /// # Panics
    ///
    /// Panics if both counts are zero.
    pub fn hetero_cluster(gpus: usize, fpgas: usize) -> Self {
        assert!(gpus + fpgas > 0, "cluster needs at least one node");
        let mut nodes = Vec::new();
        for i in 0..gpus {
            nodes.push(NodeSpec {
                name: format!("gpu{i}"),
                addr: format!("10.0.1.{}:7100", i + 1),
                devices: vec![DeviceKind::Gpu],
            });
        }
        for i in 0..fpgas {
            nodes.push(NodeSpec {
                name: format!("fpga{i}"),
                addr: format!("10.0.2.{}:7100", i + 1),
                devices: vec![DeviceKind::Fpga],
            });
        }
        ClusterConfig {
            host_addr: "10.0.0.1:7000".to_string(),
            nodes,
            link: LinkModel::gigabit_ethernet(),
        }
    }

    fn uniform_cluster(n: usize, kind: DeviceKind) -> Self {
        assert!(n > 0, "cluster needs at least one node");
        match kind {
            DeviceKind::Gpu => Self::hetero_cluster(n, 0),
            DeviceKind::Fpga => Self::hetero_cluster(0, n),
            DeviceKind::Cpu => {
                let nodes = (0..n)
                    .map(|i| NodeSpec {
                        name: format!("cpu{i}"),
                        addr: format!("10.0.3.{}:7100", i + 1),
                        devices: vec![DeviceKind::Cpu],
                    })
                    .collect();
                ClusterConfig {
                    host_addr: "10.0.0.1:7000".to_string(),
                    nodes,
                    link: LinkModel::gigabit_ethernet(),
                }
            }
        }
    }

    /// Renders the config back into file format (round-trippable).
    pub fn to_file_string(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("host {}\n", self.host_addr));
        for n in &self.nodes {
            let devices: Vec<&str> = n
                .devices
                .iter()
                .map(|d| match d {
                    DeviceKind::Cpu => "cpu",
                    DeviceKind::Gpu => "gpu",
                    DeviceKind::Fpga => "fpga",
                })
                .collect();
            out.push_str(&format!(
                "node {} {} {}\n",
                n.name,
                n.addr,
                devices.join(",")
            ));
        }
        out.push_str(&format!(
            "bandwidth_gbps {}\n",
            self.link.bandwidth_bps / 125.0e6
        ));
        out.push_str(&format!(
            "latency_us {}\n",
            self.link.latency.as_nanos() / 1000
        ));
        out
    }

    /// Total device count across all nodes.
    pub fn device_count(&self) -> usize {
        self.nodes.iter().map(|n| n.devices.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\n# demo cluster\nhost 10.0.0.1:7000\nnode gpu0 10.0.1.1:7100 gpu\nnode fat0 10.0.3.1:7100 cpu,gpu,fpga\nbandwidth_gbps 1.0\nlatency_us 50\n";

    #[test]
    fn parses_sample() {
        let c = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.host_addr, "10.0.0.1:7000");
        assert_eq!(c.nodes.len(), 2);
        assert_eq!(c.nodes[0].devices, vec![DeviceKind::Gpu]);
        assert_eq!(
            c.nodes[1].devices,
            vec![DeviceKind::Cpu, DeviceKind::Gpu, DeviceKind::Fpga]
        );
        assert_eq!(c.device_count(), 4);
        assert!((c.link.bandwidth_bps - 125.0e6).abs() < 1.0);
    }

    #[test]
    fn roundtrips_through_file_format() {
        let c = ClusterConfig::parse(SAMPLE).unwrap();
        let again = ClusterConfig::parse(&c.to_file_string()).unwrap();
        assert_eq!(again, c);
    }

    #[test]
    fn data_addr_is_port_plus_one() {
        let c = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(c.nodes[0].data_addr(), "10.0.1.1:7101");
    }

    #[test]
    fn missing_host_rejected() {
        let err = ClusterConfig::parse("node a 1:1 gpu\n").unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("host")));
    }

    #[test]
    fn empty_cluster_rejected() {
        let err = ClusterConfig::parse("host h:1\n").unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("node")));
    }

    #[test]
    fn bad_device_kind_rejected() {
        let err = ClusterConfig::parse("host h:1\nnode a 10.0.0.2:1 tpu\n").unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("tpu")));
    }

    #[test]
    fn duplicate_names_and_addrs_rejected() {
        let err = ClusterConfig::parse("host h:1\nnode a 10.0.0.2:1 gpu\nnode a 10.0.0.3:1 gpu\n")
            .unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("duplicate node name")));
        let err = ClusterConfig::parse("host h:1\nnode a 10.0.0.2:1 gpu\nnode b 10.0.0.2:1 gpu\n")
            .unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("duplicate node address")));
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = ClusterConfig::parse("host h:1\nwat\n").unwrap_err();
        assert!(matches!(err, ClusterError::Config(m) if m.contains("line 2")));
    }

    #[test]
    fn synthetic_clusters() {
        let c = ClusterConfig::gpu_cluster(16);
        assert_eq!(c.nodes.len(), 16);
        assert!(c.nodes.iter().all(|n| n.devices == vec![DeviceKind::Gpu]));
        let h = ClusterConfig::hetero_cluster(2, 2);
        assert_eq!(h.device_count(), 4);
        let f = ClusterConfig::fpga_cluster(4);
        assert!(f.nodes.iter().all(|n| n.devices == vec![DeviceKind::Fpga]));
        // All addresses unique.
        let mut addrs: Vec<_> = h.nodes.iter().map(|n| &n.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 4);
    }

    #[test]
    #[should_panic(expected = "at least one node")]
    fn zero_node_synthetic_panics() {
        let _ = ClusterConfig::gpu_cluster(0);
    }
}
