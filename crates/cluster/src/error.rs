//! Cluster runtime failure taxonomy.

use std::error::Error;
use std::fmt;

use haocl_net::NetError;
use haocl_proto::wire::WireError;

/// A cluster runtime failure.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A backbone failure.
    Net(NetError),
    /// A protocol (de)serialization failure.
    Wire(WireError),
    /// The remote node replied with an OpenCL-style error.
    Remote {
        /// The OpenCL status code (see [`haocl_proto::messages::status`]).
        code: i32,
        /// Human-readable detail from the node.
        message: String,
    },
    /// The cluster configuration is invalid.
    Config(String),
    /// The node replied with something that does not answer the call.
    UnexpectedReply(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Net(e) => write!(f, "backbone error: {e}"),
            ClusterError::Wire(e) => write!(f, "protocol error: {e}"),
            ClusterError::Remote { code, message } => {
                write!(f, "remote error {code}: {message}")
            }
            ClusterError::Config(msg) => write!(f, "configuration error: {msg}"),
            ClusterError::UnexpectedReply(msg) => write!(f, "unexpected reply: {msg}"),
        }
    }
}

impl Error for ClusterError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClusterError::Net(e) => Some(e),
            ClusterError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for ClusterError {
    fn from(e: NetError) -> Self {
        ClusterError::Net(e)
    }
}

impl From<WireError> for ClusterError {
    fn from(e: WireError) -> Self {
        ClusterError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: ClusterError = NetError::Disconnected.into();
        assert!(e.to_string().contains("backbone"));
        let e: ClusterError = WireError::InvalidUtf8.into();
        assert!(e.to_string().contains("protocol"));
        let e = ClusterError::Remote {
            code: -46,
            message: "no such kernel".into(),
        };
        assert!(e.to_string().contains("-46"));
    }
}
