//! The host-side runtime.
//!
//! The host process executes the user's OpenCL program and owns the
//! cluster-facing side of the backbone: it connects a message and a data
//! connection to every node in the configuration, performs the device-ID
//! mapping handshake ("when the user program calls clGetDeviceIDs, the
//! wrapper lib creates a device ID request message for each compute
//! node… the backbone obtains the device's id of each compute node and
//! records this mapping", §III-C), and forwards calls *synchronously* —
//! after sending a message the host waits for the response before taking
//! the next action, exactly as described in the paper.

use std::sync::atomic::Ordering;

use parking_lot::Mutex;

use haocl_net::{Conn, Fabric};
use haocl_proto::ids::{IdAllocator, NodeId, RequestId, UserId};
use haocl_proto::messages::{ApiCall, ApiReply, DeviceDescriptor, Request, Response};
use haocl_proto::wire::{decode_from_slice, encode_to_vec};
use haocl_sim::{Clock, SimTime};

use crate::config::ClusterConfig;
use crate::error::ClusterError;

/// One device in the cluster, as mapped during the handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteDevice {
    /// The node hosting the device.
    pub node: NodeId,
    /// The node's configured name.
    pub node_name: String,
    /// Device index within the node.
    pub device: u8,
    /// The advertised model summary.
    pub descriptor: DeviceDescriptor,
}

/// The outcome of one forwarded call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The node's reply.
    pub reply: ApiReply,
    /// Virtual time the operation completed on the node.
    pub node_completed: SimTime,
    /// Virtual time the response reached the host.
    pub host_received: SimTime,
}

struct NodeLink {
    name: String,
    /// Message connection (control plane).
    msg: Mutex<Conn>,
    /// Data connection (buffer contents, §III-C's data listener).
    data: Mutex<Conn>,
}

/// The host runtime: device mapping plus synchronous call forwarding.
pub struct HostRuntime {
    user: UserId,
    links: Vec<NodeLink>,
    devices: Vec<RemoteDevice>,
    request_ids: IdAllocator,
    clock: Clock,
}

impl HostRuntime {
    /// Connects to every node in `config` and performs the hello/device
    /// mapping handshake.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] if any node is unreachable or answers the
    /// handshake with anything but its device inventory.
    pub fn connect(fabric: &Fabric, config: &ClusterConfig) -> Result<Self, ClusterError> {
        let host_name = config
            .host_addr
            .split(':')
            .next()
            .unwrap_or(&config.host_addr)
            .to_string();
        let mut runtime = HostRuntime {
            user: UserId::new(1),
            links: Vec::new(),
            devices: Vec::new(),
            request_ids: IdAllocator::new(),
            clock: fabric.clock().clone(),
        };
        for (i, spec) in config.nodes.iter().enumerate() {
            let msg = fabric.connect(&host_name, &spec.addr)?;
            let data = fabric.connect(&host_name, &spec.data_addr())?;
            runtime.links.push(NodeLink {
                name: spec.name.clone(),
                msg: Mutex::new(msg),
                data: Mutex::new(data),
            });
            let node = NodeId::new(i as u32);
            let outcome = runtime.call(
                node,
                ApiCall::Hello {
                    client: format!("haocl-host/{host_name}"),
                },
            )?;
            match outcome.reply {
                ApiReply::NodeInfo { devices } => {
                    for d in devices {
                        runtime.devices.push(RemoteDevice {
                            node,
                            node_name: spec.name.clone(),
                            device: d.index,
                            descriptor: d,
                        });
                    }
                }
                other => {
                    return Err(ClusterError::UnexpectedReply(format!(
                        "hello answered with {other:?}"
                    )));
                }
            }
        }
        Ok(runtime)
    }

    /// The mapped devices, cluster-wide, in `(node, device)` order.
    pub fn devices(&self) -> &[RemoteDevice] {
        &self.devices
    }

    /// Number of nodes connected.
    pub fn node_count(&self) -> usize {
        self.links.len()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The session's user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Sets the session's user id (multi-user support).
    pub fn set_user(&mut self, user: UserId) {
        self.user = user;
    }

    /// Forwards `call` to `node` and waits synchronously for its reply.
    ///
    /// Buffer-content calls (`WriteBuffer`/`ReadBuffer`) travel on the
    /// node's data connection; everything else on the message connection.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] when the node answers with an error
    /// reply; transport errors otherwise.
    pub fn call(&self, node: NodeId, call: ApiCall) -> Result<CallOutcome, ClusterError> {
        let link = self
            .links
            .get(node.raw() as usize)
            .ok_or_else(|| ClusterError::Config(format!("unknown node {node}")))?;
        let is_data = matches!(
            call,
            ApiCall::WriteBuffer { .. }
                | ApiCall::ReadBuffer { .. }
                | ApiCall::WriteBufferModeled { .. }
                | ApiCall::ReadBufferModeled { .. }
        );
        let id = RequestId::new(self.request_ids.next());
        let now = self.clock.now();
        let request = Request {
            id,
            user: self.user,
            sent_at_nanos: now.as_nanos(),
            body: call,
        };
        // Modeled writes stand in for bulk data packages: charge the link
        // as if the payload were on the wire.
        let virtual_len = match &request.body {
            ApiCall::WriteBufferModeled { len, .. } => *len,
            _ => 0,
        };
        let payload = encode_to_vec(&request);
        let mut conn = if is_data {
            link.data.lock()
        } else {
            link.msg.lock()
        };
        conn.send_frame_virtual(&payload, now, virtual_len)?;
        // Synchronous host semantics: wait for this call's response.
        let (frame, received_at) = conn.recv_frame()?;
        drop(conn);
        let response: Response = decode_from_slice(&frame)?;
        if response.id != id {
            return Err(ClusterError::UnexpectedReply(format!(
                "response {} does not match request {id}",
                response.id
            )));
        }
        self.clock.advance_to(received_at);
        match response.body {
            ApiReply::Error { code, message } => Err(ClusterError::Remote { code, message }),
            reply => Ok(CallOutcome {
                reply,
                node_completed: SimTime::from_nanos(response.completed_at_nanos),
                host_received: received_at,
            }),
        }
    }

    /// Sends `Shutdown` to every node (best effort) for orderly teardown.
    pub fn shutdown_cluster(&self) {
        for i in 0..self.links.len() {
            let _ = self.call(NodeId::new(i as u32), ApiCall::Shutdown);
        }
    }

    /// The configured name of `node`.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.links.get(node.raw() as usize).map(|l| l.name.as_str())
    }

    fn _assert_send_sync() {
        fn assert<T: Send + Sync>() {}
        assert::<HostRuntime>();
        let _ = Ordering::SeqCst;
    }
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("user", &self.user)
            .field("nodes", &self.links.len())
            .field("devices", &self.devices.len())
            .finish()
    }
}
