//! The host-side runtime.
//!
//! The host process executes the user's OpenCL program and owns the
//! cluster-facing side of the backbone: it connects a message and a data
//! connection to every node in the configuration, performs the device-ID
//! mapping handshake ("when the user program calls clGetDeviceIDs, the
//! wrapper lib creates a device ID request message for each compute
//! node… the backbone obtains the device's id of each compute node and
//! records this mapping", §III-C), and forwards calls over a *pipelined*
//! backbone:
//!
//! * [`HostRuntime::submit`] writes the request and returns a
//!   [`PendingCall`] immediately, so many calls can be in flight per node
//!   at once;
//! * a per-connection demultiplexer thread drains responses and
//!   completes pending calls by [`RequestId`] — responses may arrive in
//!   any order;
//! * [`HostRuntime::call`] keeps the paper's synchronous semantics as
//!   `submit(...).wait()`, so lock-step callers are unchanged;
//! * control-plane requests that queue up while another thread is
//!   occupying the transmit path are coalesced into one
//!   [`Envelope::Batch`] frame instead of paying per-frame overhead
//!   each.
//!
//! # Fault recovery
//!
//! With a [`RecoveryPolicy`] installed (see
//! [`HostRuntime::set_recovery`] — recovery is *opt-in*; without it the
//! seed semantics hold and a dead backbone fails calls fast), the
//! runtime additionally:
//!
//! * retransmits a timed-out request on the same route with exponential
//!   backoff, under the *same* [`RequestId`] — the node's at-most-once
//!   journal answers duplicates from cache, so a kernel never executes
//!   twice and a write never applies twice;
//! * when a node is lost (its connection died, or retries exhausted
//!   against a blackhole), re-provisions the node's state on a surviving
//!   node by replaying the per-node mutation journal, re-routes the
//!   logical node there, and bumps its routing *epoch*;
//! * counts every retransmission, failover and journal-dedup hit in the
//!   shared metrics registry ([`haocl_obs::names::RETRIES`] /
//!   [`FAILOVERS`](haocl_obs::names::FAILOVERS) /
//!   [`DEDUP_HITS`](haocl_obs::names::DEDUP_HITS)).

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use haocl_net::{ConnSender, Fabric, NetError};
use haocl_obs::{
    names, CandidateInfo, FusionDecision, Hub, PlacementAudit, PredictionSource, TraceCtx,
    DEFAULT_TENANT,
};
use haocl_proto::ids::{IdAllocator, NodeId, RequestId, UserId};
use haocl_proto::messages::{
    ApiCall, ApiReply, DeviceDescriptor, Envelope, Request, Response, WireSpan,
};
#[cfg(test)]
use haocl_proto::wire::encode_to_vec;
use haocl_proto::wire::{decode_from_slice, encode_into_vec};
use haocl_sim::{Clock, SimTime};

use crate::config::{ClusterConfig, NodeSpec};
use crate::error::ClusterError;

/// How often demultiplexer threads check the stop flag.
const DEMUX_POLL: Duration = Duration::from_millis(10);

/// One device in the cluster, as mapped during the handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteDevice {
    /// The node hosting the device.
    pub node: NodeId,
    /// The node's configured name.
    pub node_name: String,
    /// Device index within the node.
    pub device: u8,
    /// The advertised model summary.
    pub descriptor: DeviceDescriptor,
}

/// The outcome of one forwarded call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The node's reply.
    pub reply: ApiReply,
    /// Virtual time the operation completed on the node.
    pub node_completed: SimTime,
    /// Virtual time the response reached the host.
    pub host_received: SimTime,
    /// Node-side spans, when the request was traced (see
    /// [`HostRuntime::submit_traced`]); empty otherwise.
    pub spans: Vec<WireSpan>,
}

/// Opt-in fault recovery for the host runtime.
///
/// Absent (the default), the runtime keeps its fail-fast semantics: a
/// dead backbone fails in-flight and later calls immediately. Installed
/// via [`HostRuntime::set_recovery`], it makes [`PendingCall::wait`]
/// retransmit and fail over instead (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Wall-clock patience for the first delivery attempt; doubles on
    /// every retransmission (exponential backoff).
    pub base_timeout: Duration,
    /// Total delivery attempts on the current route before giving up on
    /// it (the first transmission counts as attempt one).
    pub max_attempts: u32,
    /// Whether exhausting a route triggers failover to a surviving node
    /// (journal replay + re-route) or a terminal error.
    pub failover: bool,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            base_timeout: Duration::from_millis(100),
            max_attempts: 4,
            failover: true,
        }
    }
}

/// Where a logical node stands in the cluster's membership lifecycle.
///
/// Nodes move strictly forward: `Joining → Active → Draining → Departed`
/// (a failed handshake jumps straight from `Joining` to `Departed`).
/// Departed slots persist as tombstones — device indices and [`NodeId`]s
/// allocated while the node was alive stay stable forever — and a node
/// that rejoins under the same name gets a *fresh* slot and `NodeId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipState {
    /// Connected; the hello/device-mapping handshake is in flight.
    Joining,
    /// Fully registered; eligible for placements and failover targets.
    Active,
    /// Voluntarily leaving: no new placements land here, resident
    /// buffers are migrating off, in-flight work still completes.
    Draining,
    /// Gone from the cluster — voluntarily (after a drain) or because a
    /// join handshake failed. Terminal.
    Departed,
}

impl MembershipState {
    /// The value the `haocl_node_state` gauge carries for this state.
    pub fn gauge_value(self) -> i64 {
        match self {
            MembershipState::Joining => 0,
            MembershipState::Active => 1,
            MembershipState::Draining => 2,
            MembershipState::Departed => 3,
        }
    }
}

impl std::fmt::Display for MembershipState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            MembershipState::Joining => "Joining",
            MembershipState::Active => "Active",
            MembershipState::Draining => "Draining",
            MembershipState::Departed => "Departed",
        })
    }
}

/// Which of a node's two connections a request travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    /// The message connection (control plane).
    Control,
    /// The data connection (buffer contents).
    Data,
}

/// The plane a call travels on: buffer contents go over the data
/// connection, everything else over the message connection.
fn plane_of(call: &ApiCall) -> Plane {
    if matches!(
        call,
        ApiCall::WriteBuffer { .. }
            | ApiCall::ReadBuffer { .. }
            | ApiCall::WriteBufferModeled { .. }
            | ApiCall::ReadBufferModeled { .. }
            | ApiCall::PushBufferTo { .. }
            | ApiCall::PullBufferFrom { .. }
    ) {
        Plane::Data
    } else {
        Plane::Control
    }
}

/// Calls that establish node state a failover target must reproduce.
/// Pure queries (pings, reads, profile queries) are excluded: replaying
/// them would change nothing.
fn establishes_state(call: &ApiCall) -> bool {
    matches!(
        call,
        ApiCall::CreateBuffer { .. }
            | ApiCall::CreateBufferModeled { .. }
            | ApiCall::WriteBuffer { .. }
            | ApiCall::WriteBufferModeled { .. }
            | ApiCall::ReleaseBuffer { .. }
            | ApiCall::CopyBuffer { .. }
            | ApiCall::BuildProgram { .. }
            | ApiCall::LoadBitstream { .. }
            | ApiCall::CreateKernel { .. }
            | ApiCall::LaunchKernel { .. }
    )
}

/// An error the transport produced (retryable), as opposed to an answer
/// the node computed (final).
fn is_transport(err: &ClusterError) -> bool {
    matches!(err, ClusterError::Net(_) | ClusterError::Wire(_))
}

enum PendingEntry {
    /// Submitted on the given plane; no response yet.
    Waiting(Plane),
    /// Completed by the demultiplexer; result not yet claimed. The
    /// second field is the response's virtual arrival time (`None` for
    /// transport failures, which carry no timestamp): the *claimer*
    /// advances the shared clock to it, so virtual time progresses in
    /// program order rather than at the whim of demultiplexer-thread
    /// scheduling — out-of-order completion must not make virtual
    /// timestamps nondeterministic.
    Done(Box<Result<CallOutcome, ClusterError>>, Option<SimTime>),
}

struct LinkState {
    pending: HashMap<RequestId, PendingEntry>,
    /// Set once the node's backbone connection is gone; every later
    /// submit or wait fails immediately with this error.
    dead: Option<ClusterError>,
}

/// Completion state shared between submitters, waiters and the link's
/// demultiplexer threads.
struct LinkShared {
    state: Mutex<LinkState>,
    completed: Condvar,
}

/// What [`LinkShared::claim`] found.
enum Claim {
    /// The entry completed; the result was claimed out of the map and
    /// the clock advanced to the response's arrival.
    Outcome(Result<CallOutcome, ClusterError>),
    /// The deadline passed with the entry still waiting (it stays
    /// registered, so a later claim can still succeed).
    TimedOut,
    /// The entry vanished (link teardown); carries the link's terminal
    /// error.
    Gone(ClusterError),
}

impl LinkShared {
    fn new() -> Self {
        LinkShared {
            state: Mutex::new(LinkState {
                pending: HashMap::new(),
                dead: None,
            }),
            completed: Condvar::new(),
        }
    }

    /// Completes the pending call correlated to `response` (responses
    /// for cancelled/unknown ids are discarded — including the slower
    /// copy when a retransmitted request is answered twice).
    fn complete(&self, response: Response, received_at: SimTime) {
        let result = match response.body {
            ApiReply::Error { code, message } => Err(ClusterError::Remote { code, message }),
            reply => Ok(CallOutcome {
                reply,
                node_completed: SimTime::from_nanos(response.completed_at_nanos),
                host_received: received_at,
                spans: response.spans,
            }),
        };
        let mut state = self.state.lock().expect("link state poisoned");
        if let Some(entry) = state.pending.get_mut(&response.id) {
            *entry = PendingEntry::Done(Box::new(result), Some(received_at));
            self.completed.notify_all();
        }
    }

    /// Blocks until the call completes (or `deadline` passes, when one
    /// is given), claiming the result and advancing the clock.
    fn claim(&self, id: RequestId, clock: &Clock, deadline: Option<Instant>) -> Claim {
        let mut state = self.state.lock().expect("link state poisoned");
        loop {
            match state.pending.get(&id) {
                Some(PendingEntry::Done(..)) => {
                    let Some(PendingEntry::Done(result, received_at)) = state.pending.remove(&id)
                    else {
                        unreachable!("entry observed Done under the same lock");
                    };
                    if let Some(at) = received_at {
                        clock.advance_to(at);
                    }
                    return Claim::Outcome(*result);
                }
                // Even on a dead link a Waiting entry just waits: the
                // owning plane's demultiplexer (or terminal teardown)
                // is guaranteed to resolve it, and the *other* plane
                // dying first must not discard a response that is
                // already queued for delivery.
                Some(PendingEntry::Waiting(_)) => match deadline {
                    None => {
                        state = self.completed.wait(state).expect("link state poisoned");
                    }
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            return Claim::TimedOut;
                        }
                        let (guard, _) = self
                            .completed
                            .wait_timeout(state, d - now)
                            .expect("link state poisoned");
                        state = guard;
                    }
                },
                None => {
                    return Claim::Gone(
                        state
                            .dead
                            .clone()
                            .unwrap_or(ClusterError::Net(NetError::Disconnected)),
                    );
                }
            }
        }
    }

    /// Marks the link dead and fails `plane`'s in-flight calls with
    /// `err`.
    ///
    /// Only the dying plane's entries are failed: a demultiplexer fully
    /// drains its own connection before it can observe the disconnect,
    /// but the *other* plane's demultiplexer may still be working
    /// through already-received responses — failing those calls here
    /// would discard answers the node actually delivered.
    fn fail_plane(&self, plane: Plane, err: ClusterError) {
        let mut state = self.state.lock().expect("link state poisoned");
        if state.dead.is_none() {
            state.dead = Some(err.clone());
        }
        for entry in state.pending.values_mut() {
            if matches!(entry, PendingEntry::Waiting(p) if *p == plane) {
                *entry = PendingEntry::Done(Box::new(Err(err.clone())), None);
            }
        }
        self.completed.notify_all();
    }

    /// Marks the link dead and fails every in-flight call with `err`
    /// (terminal teardown, once no demultiplexer is left to deliver).
    fn fail_all(&self, err: ClusterError) {
        self.fail_plane(Plane::Control, err.clone());
        self.fail_plane(Plane::Data, err);
    }
}

struct NodeLink {
    name: String,
    /// The node's data-listener address, handed to *other* nodes as the
    /// destination of peer data-plane transfers.
    data_addr: String,
    shared: Arc<LinkShared>,
    /// Control-plane requests waiting to be coalesced into the next
    /// frame (see [`NodeLink::send_control`]).
    control_queue: Mutex<Vec<Request>>,
    /// Message-connection transmit half (control plane).
    msg_tx: Mutex<ConnSender>,
    /// Data-connection transmit half (buffer contents, §III-C's data
    /// listener).
    data_tx: Mutex<ConnSender>,
    /// Shared observability hub (plane metrics; gated on its enable
    /// flag so the hot path pays one atomic load when tracing is off).
    obs: Arc<Hub>,
    /// Set when the node retires voluntarily: the demultiplexer threads
    /// exit quietly instead of counting the (expected) disconnect as a
    /// link failure.
    retired: Arc<AtomicBool>,
}

impl NodeLink {
    /// Enqueues a control-plane request and flushes the queue unless
    /// another thread is already transmitting — in which case that
    /// thread picks this request up, coalescing it into its next
    /// [`Envelope::Batch`].
    fn send_control(&self, request: Request, at: SimTime) -> Result<(), ClusterError> {
        self.control_queue
            .lock()
            .expect("control queue poisoned")
            .push(request);
        loop {
            // Non-blocking: if the transmit path is busy, the holder
            // re-checks the queue after finishing its send (below), so
            // leaving our request queued cannot strand it.
            let Ok(mut sender) = self.msg_tx.try_lock() else {
                return Ok(());
            };
            let batch =
                std::mem::take(&mut *self.control_queue.lock().expect("control queue poisoned"));
            if batch.is_empty() {
                return Ok(());
            }
            let virtual_len: u64 = batch.iter().map(|r| virtual_len_of(&r.body)).sum();
            let coalesced = batch.len() as u64;
            let mut encoded_len = 0;
            let sent = sender.send_frame_with(at, virtual_len, |buf| {
                let start = buf.len();
                encode_into_vec(&Envelope::from(batch), buf);
                encoded_len = buf.len() - start;
            });
            self.note_frame("control", encoded_len, virtual_len, coalesced);
            if let Err(e) = sent {
                // The batch may carry other submitters' requests; their
                // PendingCalls must observe the failure too.
                let err = ClusterError::Net(e);
                self.shared.fail_plane(Plane::Control, err.clone());
                return Err(err);
            }
            drop(sender);
            // Someone may have queued behind us while we held the
            // sender; make sure their request is not stranded.
            if self
                .control_queue
                .lock()
                .expect("control queue poisoned")
                .is_empty()
            {
                return Ok(());
            }
        }
    }

    /// Sends a data-plane request immediately (bulk payloads are never
    /// coalesced; their transmit cost dominates framing overhead).
    fn send_data(&self, request: Request, at: SimTime) -> Result<(), ClusterError> {
        let virtual_len = virtual_len_of(&request.body);
        let mut sender = self.data_tx.lock().expect("data sender poisoned");
        let mut encoded_len = 0;
        let sent = sender.send_frame_with(at, virtual_len, |buf| {
            let start = buf.len();
            encode_into_vec(&Envelope::Single(request), buf);
            encoded_len = buf.len() - start;
        });
        drop(sender);
        self.note_frame("data", encoded_len, virtual_len, 1);
        sent?;
        Ok(())
    }

    /// Sends on the right plane for the request's body.
    fn send(&self, request: Request, at: SimTime) -> Result<(), ClusterError> {
        match plane_of(&request.body) {
            Plane::Data => self.send_data(request, at),
            Plane::Control => self.send_control(request, at),
        }
    }

    /// Records one outgoing frame's plane metrics (no-op while tracing
    /// is off). Bytes are *virtual wire bytes*: modeled bulk payloads
    /// count their declared length, not the descriptor that stands in
    /// for them.
    fn note_frame(&self, plane: &str, payload_len: usize, virtual_len: u64, coalesced: u64) {
        if !self.obs.enabled() {
            return;
        }
        let labels = [("node", self.name.as_str()), ("plane", plane)];
        let bytes = (payload_len as u64).max(virtual_len);
        self.obs
            .metrics
            .inc_counter(names::PLANE_FRAMES, &labels, 1);
        self.obs
            .metrics
            .inc_counter(names::PLANE_BYTES, &labels, bytes);
        if plane == "control" {
            self.obs.metrics.observe_with_buckets(
                names::BATCH_SIZE,
                &[("node", self.name.as_str())],
                coalesced,
                &haocl_obs::SIZE_BUCKETS,
            );
        }
    }
}

/// Virtual wire size of modeled bulk writes (the data package the
/// descriptor stands in for). Peer-transfer commands stay at zero: the
/// bulk bytes are charged on the NMP→NMP hop, not the host's NIC — that
/// is the whole point of them.
fn virtual_len_of(call: &ApiCall) -> u64 {
    match call {
        ApiCall::WriteBufferModeled { len, .. } => *len,
        _ => 0,
    }
}

/// Where a logical node's traffic currently goes.
struct RouteState {
    /// Index of the physical link carrying this logical node.
    physical: usize,
    /// Bumped on every failover; stamped into requests so duplicate
    /// traffic from before a re-route is distinguishable on the wire.
    epoch: u32,
    /// Physical links already lost for this logical node (the node's
    /// own link once it died, plus failed failover targets) — never
    /// chosen again.
    burned: Vec<usize>,
}

/// One journaled state-establishing call, replayed on failover.
#[derive(Clone)]
struct JournalEntry {
    id: RequestId,
    user: UserId,
    call: ApiCall,
}

/// Everything the host tracks about one logical node, consolidated so
/// membership can grow at runtime: the slot vector is append-only (a
/// departed node leaves a tombstone slot), so slot index, [`NodeId`] and
/// physical link index are one and the same, and all stay stable.
struct NodeSlot {
    link: NodeLink,
    /// Current physical route (identity until failover).
    route: Mutex<RouteState>,
    /// Ordered journal of state-establishing calls, replayed onto a
    /// failover target to reconstruct the lost node's buffers, programs
    /// and kernels. Recorded only while recovery is enabled.
    journal: Mutex<Vec<JournalEntry>>,
    /// Ids of calls currently in flight. Failover replay skips these:
    /// their own waiters retransmit them (under the original id, so the
    /// node journal can dedup), and replaying them under a fresh id as
    /// well would execute them twice.
    inflight: Mutex<HashSet<RequestId>>,
    /// Where the node stands in the membership lifecycle.
    membership: Mutex<MembershipState>,
    /// How many of this node's route-epoch bumps were *voluntary*
    /// (drain retirements). Quarantine logic subtracts these from the
    /// route epoch so a clean departure never reads as a failure.
    voluntary_epochs: AtomicU32,
}

/// State shared between the runtime, its pending calls and recovery.
struct HostInner {
    /// One slot per logical node, append-only (see [`NodeSlot`]).
    slots: RwLock<Vec<Arc<NodeSlot>>>,
    recovery: Mutex<Option<RecoveryPolicy>>,
    request_ids: IdAllocator,
    clock: Clock,
    obs: Arc<Hub>,
}

impl HostInner {
    fn recovery(&self) -> Option<RecoveryPolicy> {
        *self.recovery.lock().expect("recovery policy poisoned")
    }

    /// Clones the slot out of the registry: callers never hold the
    /// registry lock across blocking sends or waits.
    fn slot(&self, index: usize) -> Option<Arc<NodeSlot>> {
        self.slots
            .read()
            .expect("slots poisoned")
            .get(index)
            .cloned()
    }

    fn slot_count(&self) -> usize {
        self.slots.read().expect("slots poisoned").len()
    }

    fn membership_of(&self, index: usize) -> Option<MembershipState> {
        self.slot(index)
            .map(|s| *s.membership.lock().expect("membership poisoned"))
    }

    fn route_of(&self, node: NodeId) -> (usize, u32) {
        let slot = self
            .slot(node.raw() as usize)
            .expect("route of unknown node");
        let route = slot.route.lock().expect("route poisoned");
        (route.physical, route.epoch)
    }

    fn link_alive(&self, physical: usize) -> bool {
        let Some(slot) = self.slot(physical) else {
            return false;
        };
        let alive = slot
            .link
            .shared
            .state
            .lock()
            .expect("link state poisoned")
            .dead
            .is_none();
        alive
    }

    /// Moves `node`'s route to a surviving physical link, replaying its
    /// journal there first. `observed_epoch` is the epoch the caller
    /// last transmitted under: if another waiter already moved the
    /// route, the current route is returned without replaying again.
    fn failover(&self, node: NodeId, observed_epoch: u32) -> Result<(usize, u32), ClusterError> {
        let index = node.raw() as usize;
        let slot = self
            .slot(index)
            .ok_or(ClusterError::Net(NetError::Disconnected))?;
        let mut route = slot.route.lock().expect("route poisoned");
        if route.epoch != observed_epoch {
            return Ok((route.physical, route.epoch));
        }
        let failed = route.physical;
        if !route.burned.contains(&failed) {
            route.burned.push(failed);
        }
        let policy = self.recovery().unwrap_or_default();
        loop {
            // Only Active members host failover traffic: a Joining node
            // has no verified inventory yet, a Draining node is on its
            // way out, and a Departed slot is a tombstone.
            let Some(candidate) = (0..self.slot_count()).find(|p| {
                !route.burned.contains(p)
                    && self.membership_of(*p) == Some(MembershipState::Active)
                    && self.link_alive(*p)
            }) else {
                return Err(ClusterError::Net(NetError::Disconnected));
            };
            match self.replay_journal(index, candidate, &policy) {
                Ok(()) => {
                    let from = self.slot(failed).map(|s| s.link.name.clone());
                    let to = self.slot(candidate).map(|s| s.link.name.clone());
                    self.obs.metrics.inc_counter(
                        names::FAILOVERS,
                        &[
                            ("from", from.as_deref().unwrap_or("?")),
                            ("to", to.as_deref().unwrap_or("?")),
                        ],
                        1,
                    );
                    route.physical = candidate;
                    route.epoch += 1;
                    return Ok((candidate, route.epoch));
                }
                Err(_) => {
                    // The candidate is no better; rule it out and keep
                    // looking.
                    route.burned.push(candidate);
                }
            }
        }
    }

    /// Replays logical node `index`'s journal onto physical link
    /// `candidate` with fresh request ids, reconstructing the lost
    /// node's state there.
    fn replay_journal(
        &self,
        index: usize,
        candidate: usize,
        policy: &RecoveryPolicy,
    ) -> Result<(), ClusterError> {
        let slot = self
            .slot(index)
            .ok_or(ClusterError::Net(NetError::Disconnected))?;
        let entries: Vec<JournalEntry> = slot.journal.lock().expect("journal poisoned").clone();
        let inflight: HashSet<RequestId> = slot.inflight.lock().expect("inflight poisoned").clone();
        for entry in entries {
            // In-flight calls re-execute through their own waiters'
            // retransmissions (same id, deduped by the node journal);
            // replaying them here as well would run them twice under an
            // id the journal cannot correlate.
            if inflight.contains(&entry.id) {
                continue;
            }
            if let ApiCall::CreateBuffer { device, buffer, .. }
            | ApiCall::CreateBufferModeled { device, buffer, .. } = &entry.call
            {
                // An earlier aborted failover may have left this buffer
                // behind on the candidate; clear it so the create below
                // is clean.
                let _ = self.call_on_link(
                    candidate,
                    entry.user,
                    ApiCall::ReleaseBuffer {
                        device: *device,
                        buffer: *buffer,
                    },
                    policy,
                );
            }
            match self.call_on_link(candidate, entry.user, entry.call.clone(), policy) {
                Ok(_) => {}
                // The original call may have failed the same way (user
                // errors replay faithfully); only transport trouble
                // rules the candidate out.
                Err(ClusterError::Remote { .. }) => {}
                Err(e) => return Err(e),
            }
        }
        Ok(())
    }

    /// One synchronous call straight to a physical link, bypassing
    /// routing and recovery (used by journal replay, which runs *inside*
    /// failover and must not recurse into it).
    ///
    /// Retransmits with exponential backoff under the *same* request id
    /// so a lossy link cannot burn a perfectly good candidate: the node
    /// journal dedups replays of an already-executed call and answers
    /// from cache.
    fn call_on_link(
        &self,
        physical: usize,
        user: UserId,
        call: ApiCall,
        policy: &RecoveryPolicy,
    ) -> Result<CallOutcome, ClusterError> {
        let slot = self
            .slot(physical)
            .ok_or(ClusterError::Net(NetError::Disconnected))?;
        let link = &slot.link;
        let id = RequestId::new(self.request_ids.next());
        let plane = plane_of(&call);
        for attempt in 0..=policy.max_attempts.min(6) {
            let patience = policy.base_timeout * 2u32.saturating_pow(attempt);
            let now = self.clock.now();
            let request = Request {
                id,
                user,
                sent_at_nanos: now.as_nanos(),
                trace_id: 0,
                parent_span: 0,
                epoch: 0,
                attempt,
                body: call.clone(),
            };
            {
                let mut state = link.shared.state.lock().expect("link state poisoned");
                if let Some(err) = &state.dead {
                    return Err(err.clone());
                }
                state.pending.insert(id, PendingEntry::Waiting(plane));
            }
            if let Err(err) = link.send(request, now) {
                link.shared
                    .state
                    .lock()
                    .expect("link state poisoned")
                    .pending
                    .remove(&id);
                return Err(err);
            }
            match link
                .shared
                .claim(id, &self.clock, Some(Instant::now() + patience))
            {
                Claim::Outcome(result) => return result,
                Claim::TimedOut => {
                    // Drop the stale entry before retrying; a late
                    // response to this transmission is simply discarded
                    // and the retry re-earns one (deduped node-side).
                    link.shared
                        .state
                        .lock()
                        .expect("link state poisoned")
                        .pending
                        .remove(&id);
                }
                Claim::Gone(e) => return Err(e),
            }
        }
        Err(ClusterError::Net(NetError::Timeout))
    }
}

/// A submitted request whose response has not yet been claimed.
///
/// Obtained from [`HostRuntime::submit`]. Dropping it abandons the call:
/// the response, when it arrives, is discarded.
#[must_use = "a PendingCall that is never waited on silently discards its response"]
pub struct PendingCall {
    /// The original request, kept for retransmission under recovery.
    request: Request,
    /// The logical node addressed.
    node: NodeId,
    /// The physical link the request was last transmitted on.
    physical: usize,
    /// The routing epoch the request was last transmitted under.
    epoch: u32,
    inner: Arc<HostInner>,
    taken: bool,
}

impl PendingCall {
    /// The request's correlation id.
    pub fn id(&self) -> RequestId {
        self.request.id
    }

    /// The node the request was sent to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks until the response arrives (or the node's backbone dies).
    ///
    /// Claiming the response advances the shared virtual clock to its
    /// arrival time; until a response is claimed it does not move the
    /// clock, keeping virtual timestamps deterministic however the
    /// demultiplexer threads are scheduled.
    ///
    /// With a [`RecoveryPolicy`] installed, transport failures and
    /// timeouts are absorbed: the call is retransmitted with backoff
    /// and, if its node is lost, failed over to a survivor (see the
    /// module docs). Only a terminal inability to deliver surfaces as
    /// an error then.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] when the node answered with an error
    /// reply; a transport error when the connection failed while the
    /// call was in flight (and recovery was off or exhausted).
    pub fn wait(mut self) -> Result<CallOutcome, ClusterError> {
        match self.inner.recovery() {
            Some(policy) => self.wait_recovering(policy),
            None => self.wait_plain(),
        }
    }

    fn wait_plain(&mut self) -> Result<CallOutcome, ClusterError> {
        let Some(slot) = self.inner.slot(self.physical) else {
            self.taken = true;
            return Err(ClusterError::Net(NetError::Disconnected));
        };
        let shared = Arc::clone(&slot.link.shared);
        match shared.claim(self.request.id, &self.inner.clock, None) {
            Claim::Outcome(result) => {
                self.taken = true;
                result
            }
            Claim::Gone(err) => {
                self.taken = true;
                Err(err)
            }
            Claim::TimedOut => unreachable!("claim without a deadline cannot time out"),
        }
    }

    fn wait_recovering(&mut self, policy: RecoveryPolicy) -> Result<CallOutcome, ClusterError> {
        let mut attempt: u32 = 0;
        let mut last_err;
        loop {
            let patience = policy.base_timeout * 2u32.saturating_pow(attempt.min(6));
            let deadline = Instant::now() + patience;
            let Some(slot) = self.inner.slot(self.physical) else {
                self.taken = true;
                return Err(ClusterError::Net(NetError::Disconnected));
            };
            let shared = Arc::clone(&slot.link.shared);
            match shared.claim(self.request.id, &self.inner.clock, Some(deadline)) {
                Claim::Outcome(result) => match result {
                    Err(e) if is_transport(&e) => last_err = e,
                    final_answer => {
                        self.taken = true;
                        return final_answer;
                    }
                },
                Claim::TimedOut => last_err = ClusterError::Net(NetError::Timeout),
                Claim::Gone(e) => last_err = e,
            }
            // Transport trouble. Retransmit on the current route while
            // it is alive and attempts remain — the node's at-most-once
            // journal absorbs the duplicate if the original executed.
            attempt += 1;
            if attempt < policy.max_attempts
                && self.inner.link_alive(self.physical)
                && self.resend(attempt).is_ok()
            {
                self.inner.obs.metrics.inc_counter(
                    names::RETRIES,
                    &[("node", slot.link.name.as_str())],
                    1,
                );
                continue;
            }
            if !policy.failover {
                return Err(last_err);
            }
            match self.inner.failover(self.node, self.epoch) {
                Ok((physical, epoch)) => {
                    if physical != self.physical {
                        // Abandon the entry on the lost route.
                        if let Ok(mut state) = slot.link.shared.state.lock() {
                            state.pending.remove(&self.request.id);
                        }
                    }
                    self.physical = physical;
                    self.epoch = epoch;
                    attempt = 0;
                    // Best effort: if the fresh route died under us the
                    // next claim times out fast and we route again.
                    let _ = self.resend(0);
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Retransmits the original request (same id) on the current route,
    /// (re-)registering its pending entry first.
    fn resend(&mut self, attempt: u32) -> Result<(), ClusterError> {
        let slot = self
            .inner
            .slot(self.physical)
            .ok_or(ClusterError::Net(NetError::Disconnected))?;
        let link = &slot.link;
        let plane = plane_of(&self.request.body);
        {
            let mut state = link.shared.state.lock().expect("link state poisoned");
            if let Some(err) = &state.dead {
                return Err(err.clone());
            }
            state
                .pending
                .insert(self.request.id, PendingEntry::Waiting(plane));
        }
        let now = self.inner.clock.now();
        let mut request = self.request.clone();
        request.sent_at_nanos = now.as_nanos();
        request.epoch = self.epoch;
        request.attempt = attempt;
        link.send(request, now)
    }

    /// Claims the response if it has already arrived, without blocking.
    ///
    /// Returns `None` while the call is still in flight. After a
    /// `Some(..)` the call is consumed: later polls return `None` and
    /// [`PendingCall::wait`] must not be expected to yield it again.
    /// `try_poll` never retransmits, even under a recovery policy.
    pub fn try_poll(&mut self) -> Option<Result<CallOutcome, ClusterError>> {
        if self.taken {
            return None;
        }
        let Some(slot) = self.inner.slot(self.physical) else {
            self.taken = true;
            return Some(Err(ClusterError::Net(NetError::Disconnected)));
        };
        let mut state = slot.link.shared.state.lock().expect("link state poisoned");
        match state.pending.get(&self.request.id) {
            Some(PendingEntry::Done(..)) => {
                let Some(PendingEntry::Done(result, received_at)) =
                    state.pending.remove(&self.request.id)
                else {
                    unreachable!("entry observed Done under the same lock");
                };
                self.taken = true;
                if let Some(at) = received_at {
                    self.inner.clock.advance_to(at);
                }
                Some(*result)
            }
            Some(PendingEntry::Waiting(_)) => None,
            None => {
                self.taken = true;
                Some(Err(state
                    .dead
                    .clone()
                    .unwrap_or(ClusterError::Net(NetError::Disconnected))))
            }
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.taken {
            if let Some(slot) = self.inner.slot(self.physical) {
                if let Ok(mut state) = slot.link.shared.state.lock() {
                    state.pending.remove(&self.request.id);
                }
            }
        }
        if let Some(slot) = self.inner.slot(self.node.raw() as usize) {
            if let Ok(mut inflight) = slot.inflight.lock() {
                inflight.remove(&self.request.id);
            }
        }
    }
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PendingCall({} @ {})", self.request.id, self.node)
    }
}

/// The host runtime: device mapping plus pipelined call forwarding.
pub struct HostRuntime {
    /// The user/session every outgoing request is tagged with. Atomic
    /// so the serving plane can switch it per dispatch through a shared
    /// handle — the per-tenant submission path tags each wire request
    /// with the tenant's session id (§III-D's "user ID" field).
    user: AtomicU32,
    /// The mapped devices, cluster-wide; append-only like the slots, so
    /// device indices allocated while a node was alive stay stable after
    /// it departs.
    devices: RwLock<Vec<RemoteDevice>>,
    /// Session registry: tenants/users submitting through this runtime.
    sessions: crate::session::SessionManager,
    /// The fabric nodes connect through, kept so membership can grow
    /// after construction ([`HostRuntime::connect_node`]).
    fabric: Fabric,
    /// The host's fabric endpoint name.
    host_name: String,
    inner: Arc<HostInner>,
    stop: Arc<AtomicBool>,
    demux_threads: Mutex<Vec<JoinHandle<()>>>,
}

impl HostRuntime {
    /// Connects to every node in `config` and performs the hello/device
    /// mapping handshake.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] if any node is unreachable or answers the
    /// handshake with anything but its device inventory.
    pub fn connect(fabric: &Fabric, config: &ClusterConfig) -> Result<Self, ClusterError> {
        let host_name = config
            .host_addr
            .split(':')
            .next()
            .unwrap_or(&config.host_addr)
            .to_string();
        let runtime = HostRuntime {
            user: AtomicU32::new(1),
            devices: RwLock::new(Vec::new()),
            sessions: crate::session::SessionManager::new(),
            fabric: fabric.clone(),
            host_name,
            inner: Arc::new(HostInner {
                slots: RwLock::new(Vec::new()),
                recovery: Mutex::new(None),
                request_ids: IdAllocator::new(),
                clock: fabric.clock().clone(),
                obs: Arc::new(Hub::new()),
            }),
            stop: Arc::new(AtomicBool::new(false)),
            demux_threads: Mutex::new(Vec::new()),
        };
        for spec in &config.nodes {
            runtime.connect_node(spec)?;
        }
        Ok(runtime)
    }

    /// Connects a *new* node into the running cluster: dials both
    /// planes, spawns its demultiplexers, registers a fresh slot (state
    /// `Joining`), performs the hello/device-mapping handshake, and
    /// promotes the node to `Active`. Returns the new node's id.
    ///
    /// Each join mints a fresh [`NodeId`] and fresh device indices, even
    /// for a name that served before — a rejoining node is a new member,
    /// not a resurrection of the old slot.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] if the node is unreachable or the handshake
    /// fails; the slot is left behind as a `Departed` tombstone so ids
    /// stay stable.
    pub fn connect_node(&self, spec: &NodeSpec) -> Result<NodeId, ClusterError> {
        let (msg_tx, msg_rx) = self.fabric.connect(&self.host_name, &spec.addr)?.split();
        let (data_tx, data_rx) = self
            .fabric
            .connect(&self.host_name, &spec.data_addr())?
            .split();
        let shared = Arc::new(LinkShared::new());
        let retired = Arc::new(AtomicBool::new(false));
        {
            let mut threads = self.demux_threads.lock().expect("demux threads poisoned");
            for (plane, rx) in [(Plane::Control, msg_rx), (Plane::Data, data_rx)] {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&self.stop);
                let retired = Arc::clone(&retired);
                let obs = Arc::clone(&self.inner.obs);
                let node_name = spec.name.clone();
                threads.push(
                    std::thread::Builder::new()
                        .name(format!("haocl-demux-{}-{plane:?}", spec.name))
                        .spawn(move || demux_loop(rx, plane, shared, stop, retired, obs, node_name))
                        .expect("spawn demux thread"),
                );
            }
        }
        let node = {
            let mut slots = self.inner.slots.write().expect("slots poisoned");
            let index = slots.len();
            slots.push(Arc::new(NodeSlot {
                link: NodeLink {
                    name: spec.name.clone(),
                    data_addr: spec.data_addr(),
                    shared,
                    control_queue: Mutex::new(Vec::new()),
                    msg_tx: Mutex::new(msg_tx),
                    data_tx: Mutex::new(data_tx),
                    obs: Arc::clone(&self.inner.obs),
                    retired,
                },
                route: Mutex::new(RouteState {
                    physical: index,
                    epoch: 0,
                    burned: Vec::new(),
                }),
                journal: Mutex::new(Vec::new()),
                inflight: Mutex::new(HashSet::new()),
                membership: Mutex::new(MembershipState::Joining),
                voluntary_epochs: AtomicU32::new(0),
            }));
            NodeId::new(index as u32)
        };
        self.note_membership(node, MembershipState::Joining);
        let handshake = (|| {
            let outcome = self.call(
                node,
                ApiCall::Hello {
                    client: format!("haocl-host/{}", self.host_name),
                },
            )?;
            match outcome.reply {
                ApiReply::NodeInfo { devices } => Ok(devices),
                other => Err(ClusterError::UnexpectedReply(format!(
                    "hello answered with {other:?}"
                ))),
            }
        })();
        let slot = self
            .inner
            .slot(node.raw() as usize)
            .expect("slot just added");
        match handshake {
            Ok(descriptors) => {
                let mut devices = self.devices.write().expect("devices poisoned");
                for d in descriptors {
                    devices.push(RemoteDevice {
                        node,
                        node_name: spec.name.clone(),
                        device: d.index,
                        descriptor: d,
                    });
                }
                drop(devices);
                *slot.membership.lock().expect("membership poisoned") = MembershipState::Active;
                self.note_membership(node, MembershipState::Active);
                Ok(node)
            }
            Err(e) => {
                // Tombstone the slot so indices stay stable and nothing
                // ever routes here.
                *slot.membership.lock().expect("membership poisoned") = MembershipState::Departed;
                slot.link.retired.store(true, Ordering::SeqCst);
                slot.link
                    .shared
                    .fail_all(ClusterError::Net(NetError::Disconnected));
                self.note_membership(node, MembershipState::Departed);
                Err(e)
            }
        }
    }

    /// The mapped devices, cluster-wide, in `(node, device)` order —
    /// including devices on nodes that have since departed (device
    /// indices are stable for the life of the runtime). Check
    /// [`HostRuntime::node_membership`] for liveness.
    pub fn devices(&self) -> Vec<RemoteDevice> {
        self.devices.read().expect("devices poisoned").clone()
    }

    /// The mapping record for one cluster-wide device index.
    pub fn device_info(&self, index: usize) -> Option<RemoteDevice> {
        self.devices
            .read()
            .expect("devices poisoned")
            .get(index)
            .cloned()
    }

    /// Number of mapped devices, cluster-wide (tombstones included).
    pub fn device_count(&self) -> usize {
        self.devices.read().expect("devices poisoned").len()
    }

    /// Number of node slots, including `Departed` tombstones.
    pub fn node_count(&self) -> usize {
        self.inner.slot_count()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.inner.clock
    }

    /// The user id outgoing requests are currently tagged with.
    pub fn user(&self) -> UserId {
        UserId::new(self.user.load(Ordering::Relaxed))
    }

    /// Sets the user id outgoing requests are tagged with (multi-user
    /// support). Takes `&self` so a serving plane holding the runtime
    /// behind an `Arc` can re-tag per dispatch.
    pub fn set_user(&self, user: UserId) {
        self.user.store(user.raw(), Ordering::Relaxed);
    }

    /// The session registry: per-user names and call/launch statistics.
    pub fn sessions(&self) -> &crate::session::SessionManager {
        &self.sessions
    }

    /// Installs (or clears) the fault-recovery policy. `None` — the
    /// default — keeps fail-fast semantics; see the module docs for
    /// what a policy enables. Takes effect for subsequent submissions
    /// and waits; enable recovery *before* issuing work, so the
    /// failover journal is complete.
    pub fn set_recovery(&self, policy: Option<RecoveryPolicy>) {
        *self
            .inner
            .recovery
            .lock()
            .expect("recovery policy poisoned") = policy;
    }

    /// The currently installed recovery policy, if any.
    pub fn recovery(&self) -> Option<RecoveryPolicy> {
        self.inner.recovery()
    }

    /// Whether the logical node's current route has a live backbone
    /// connection. A crashed-but-blackholed node still reads as live
    /// until its route is failed over — liveness here is connection
    /// state, not reachability.
    pub fn node_is_live(&self, node: NodeId) -> bool {
        let index = node.raw() as usize;
        let Some(membership) = self.inner.membership_of(index) else {
            return false;
        };
        if membership == MembershipState::Departed {
            return false;
        }
        let (physical, _) = self.inner.route_of(node);
        self.inner.link_alive(physical)
    }

    /// The logical node's routing epoch: 0 until its first failover or
    /// retirement, bumped on each. Schedulers use this as a flap signal
    /// (net of [`HostRuntime::node_voluntary_epochs`]).
    pub fn node_epoch(&self, node: NodeId) -> u32 {
        let index = node.raw() as usize;
        if index >= self.inner.slot_count() {
            return 0;
        }
        self.inner.route_of(node).1
    }

    /// How many of the node's epoch bumps were voluntary (drain
    /// retirements, not failures). `node_epoch - node_voluntary_epochs`
    /// is the *involuntary* flap count quarantine policies should see.
    pub fn node_voluntary_epochs(&self, node: NodeId) -> u32 {
        self.inner
            .slot(node.raw() as usize)
            .map_or(0, |s| s.voluntary_epochs.load(Ordering::SeqCst))
    }

    /// Where the node stands in the membership lifecycle; `None` for an
    /// unknown node.
    pub fn node_membership(&self, node: NodeId) -> Option<MembershipState> {
        self.inner.membership_of(node.raw() as usize)
    }

    /// The data-listener address currently serving the logical node —
    /// failover-aware, so peer transfers aimed at a re-routed node land
    /// on its surviving physical link. `None` for an unknown node.
    pub fn node_data_addr(&self, node: NodeId) -> Option<String> {
        let index = node.raw() as usize;
        if index >= self.inner.slot_count() {
            return None;
        }
        let (physical, _) = self.inner.route_of(node);
        self.inner.slot(physical).map(|s| s.link.data_addr.clone())
    }

    /// Appends `call` to `node`'s failover journal under a fresh request
    /// id, without sending it anywhere now.
    ///
    /// Peer transfers need this: the bytes a peer pushed onto a node
    /// never crossed that node's host connection, so nothing journals
    /// them automatically. The coherence layer records a compensating
    /// `PullBufferFrom` here after each successful push — on failover the
    /// replacement node re-pulls the replica from its source. No-op while
    /// recovery is off, exactly like the automatic journaling in
    /// [`HostRuntime::submit`].
    pub fn journal_companion(&self, node: NodeId, call: ApiCall) {
        let Some(slot) = self.inner.slot(node.raw() as usize) else {
            return;
        };
        if self.inner.recovery().is_none()
            || *slot.membership.lock().expect("membership poisoned") == MembershipState::Departed
        {
            return;
        }
        slot.journal
            .lock()
            .expect("journal poisoned")
            .push(JournalEntry {
                id: RequestId::new(self.inner.request_ids.next()),
                user: self.user(),
                call,
            });
    }

    /// Forwards `call` to `node` without waiting for its response.
    ///
    /// The returned [`PendingCall`] resolves when the node's response
    /// arrives; any number of calls may be in flight per node, and they
    /// complete in whatever order the node answers. Buffer-content calls
    /// (`WriteBuffer`/`ReadBuffer`) travel on the node's data
    /// connection; everything else on the message connection, where
    /// concurrent submissions coalesce into batched frames.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unknown node; a transport error
    /// if the request cannot be written.
    pub fn submit(&self, node: NodeId, call: ApiCall) -> Result<PendingCall, ClusterError> {
        self.submit_traced(node, call, None)
    }

    /// Like [`HostRuntime::submit`], but threads a trace context to the
    /// node: the NMP records its dispatch (and, for kernel launches, the
    /// VM run) as spans parented under `ctx.parent` and ships them back
    /// in the response, where they surface as [`CallOutcome::spans`].
    ///
    /// # Errors
    ///
    /// Same as [`HostRuntime::submit`].
    pub fn submit_traced(
        &self,
        node: NodeId,
        call: ApiCall,
        ctx: Option<TraceCtx>,
    ) -> Result<PendingCall, ClusterError> {
        let inner = &self.inner;
        let index = node.raw() as usize;
        let Some(node_slot) = inner.slot(index) else {
            return Err(ClusterError::Config(format!("unknown node {node}")));
        };
        // Joining (the handshake itself), Active and Draining nodes all
        // accept traffic; a Departed tombstone never does — its in-flight
        // work was already failed out when it retired.
        if *node_slot.membership.lock().expect("membership poisoned") == MembershipState::Departed {
            return Err(ClusterError::Config(format!(
                "node {node} has departed the cluster"
            )));
        }
        let recovery = inner.recovery();
        let failover = recovery.is_some_and(|p| p.failover);
        let id = RequestId::new(inner.request_ids.next());
        // Journal and in-flight registration happen before the send so
        // a concurrent failover can neither miss this call's state nor
        // replay it while its own waiter still owns it.
        if recovery.is_some() && establishes_state(&call) {
            node_slot
                .journal
                .lock()
                .expect("journal poisoned")
                .push(JournalEntry {
                    id,
                    user: self.user(),
                    call: call.clone(),
                });
        }
        node_slot
            .inflight
            .lock()
            .expect("inflight poisoned")
            .insert(id);
        let now = inner.clock.now();
        let mut request = Request {
            id,
            user: self.user(),
            sent_at_nanos: now.as_nanos(),
            trace_id: ctx.map_or(0, |c| c.trace.0),
            parent_span: ctx.map_or(0, |c| c.parent.0),
            epoch: 0,
            attempt: 0,
            body: call,
        };
        let abort = |err: ClusterError| {
            node_slot
                .inflight
                .lock()
                .expect("inflight poisoned")
                .remove(&id);
            let mut journal = node_slot.journal.lock().expect("journal poisoned");
            if let Some(pos) = journal.iter().rposition(|e| e.id == id) {
                journal.remove(pos);
            }
            Err(err)
        };
        let mut routes_tried = 0usize;
        loop {
            let (physical, epoch) = {
                let (physical, epoch) = inner.route_of(node);
                if failover && !inner.link_alive(physical) {
                    match inner.failover(node, epoch) {
                        Ok(moved) => moved,
                        Err(e) => return abort(e),
                    }
                } else {
                    (physical, epoch)
                }
            };
            request.epoch = epoch;
            let Some(route_slot) = inner.slot(physical) else {
                return abort(ClusterError::Net(NetError::Disconnected));
            };
            let link = &route_slot.link;
            let plane = plane_of(&request.body);
            {
                let mut state = link.shared.state.lock().expect("link state poisoned");
                if let Some(err) = &state.dead {
                    if failover && routes_tried < inner.slot_count() {
                        routes_tried += 1;
                        continue;
                    }
                    return abort(err.clone());
                }
                state.pending.insert(id, PendingEntry::Waiting(plane));
            }
            match link.send(request.clone(), now) {
                Ok(()) => {
                    return Ok(PendingCall {
                        request,
                        node,
                        physical,
                        epoch,
                        inner: Arc::clone(inner),
                        taken: false,
                    });
                }
                Err(err) => {
                    link.shared
                        .state
                        .lock()
                        .expect("link state poisoned")
                        .pending
                        .remove(&id);
                    if failover && routes_tried < inner.slot_count() {
                        routes_tried += 1;
                        continue;
                    }
                    return abort(err);
                }
            }
        }
    }

    /// Forwards `call` to `node` and waits synchronously for its reply —
    /// [`HostRuntime::submit`] followed by [`PendingCall::wait`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] when the node answers with an error
    /// reply; transport errors otherwise.
    pub fn call(&self, node: NodeId, call: ApiCall) -> Result<CallOutcome, ClusterError> {
        self.submit(node, call)?.wait()
    }

    /// Sends `Shutdown` to every node (best effort) for orderly teardown.
    ///
    /// Teardown runs in bounded-patience, no-failover mode: it must
    /// neither trigger failover replays onto the survivors nor hang
    /// forever on a node a chaos policy has blackholed. Recovery is
    /// left disabled afterwards.
    pub fn shutdown_cluster(&self) {
        self.set_recovery(Some(RecoveryPolicy {
            base_timeout: Duration::from_millis(250),
            max_attempts: 1,
            failover: false,
        }));
        for i in 0..self.inner.slot_count() {
            let node = NodeId::new(i as u32);
            if self.node_membership(node) == Some(MembershipState::Departed) {
                continue;
            }
            let _ = self.call(node, ApiCall::Shutdown);
        }
        self.set_recovery(None);
    }

    /// Marks `node` as draining: the membership state flips to
    /// `Draining` (so placement layers stop choosing it and failover
    /// stops targeting it) and the NMP is told — best effort — to refuse
    /// fresh kernel launches. In-flight work and buffer reads continue;
    /// actually moving the resident replicas off is the platform layer's
    /// job, after which [`HostRuntime::retire_node`] completes the
    /// departure.
    ///
    /// Draining an already-draining node is a no-op.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unknown node or one that is
    /// `Joining`/`Departed`.
    pub fn begin_drain(&self, node: NodeId) -> Result<(), ClusterError> {
        let slot = self
            .inner
            .slot(node.raw() as usize)
            .ok_or_else(|| ClusterError::Config(format!("unknown node {node}")))?;
        {
            let mut membership = slot.membership.lock().expect("membership poisoned");
            match *membership {
                MembershipState::Draining => return Ok(()),
                MembershipState::Active => *membership = MembershipState::Draining,
                other => {
                    return Err(ClusterError::Config(format!(
                        "node {node} cannot drain from state {other}"
                    )));
                }
            }
        }
        self.note_membership(node, MembershipState::Draining);
        // Advisory: a node that cannot hear it still drains correctly —
        // the host-side Draining state already excludes it from
        // placement; the NMP-side flag just closes the race with
        // requests already on the wire. It goes straight onto the
        // node's *own* physical link, outside routing and recovery: a
        // routed send could fail over mid-call (say a crash races the
        // drain) and retransmit the flag onto the surviving NMP that
        // now hosts this node's replayed state — which would then
        // refuse every launch the fleet still depends on.
        let _ = self.inner.call_on_link(
            node.raw() as usize,
            self.user(),
            ApiCall::BeginDrain,
            &RecoveryPolicy {
                base_timeout: Duration::from_millis(50),
                max_attempts: 1,
                failover: false,
            },
        );
        Ok(())
    }

    /// Completes a voluntary departure: the node becomes a `Departed`
    /// tombstone, its route epoch is bumped (with the bump booked as
    /// *voluntary*, so quarantine logic does not read it as a failure),
    /// its journal and in-flight set are cleared, and any stragglers
    /// still waiting on it are failed out. No replay happens — departure
    /// is clean by construction, the caller having already migrated the
    /// node's resident state.
    ///
    /// Retiring an already-departed node is a no-op.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unknown node.
    pub fn retire_node(&self, node: NodeId) -> Result<(), ClusterError> {
        let slot = self
            .inner
            .slot(node.raw() as usize)
            .ok_or_else(|| ClusterError::Config(format!("unknown node {node}")))?;
        {
            let mut membership = slot.membership.lock().expect("membership poisoned");
            if *membership == MembershipState::Departed {
                return Ok(());
            }
            *membership = MembershipState::Departed;
        }
        {
            let mut route = slot.route.lock().expect("route poisoned");
            route.epoch += 1;
            let physical = route.physical;
            if !route.burned.contains(&physical) {
                route.burned.push(physical);
            }
        }
        slot.voluntary_epochs.fetch_add(1, Ordering::SeqCst);
        slot.journal.lock().expect("journal poisoned").clear();
        slot.inflight.lock().expect("inflight poisoned").clear();
        // The demux threads see the retirement flag and exit without
        // booking a link failure when the NMP's connections close.
        slot.link.retired.store(true, Ordering::SeqCst);
        slot.link
            .shared
            .fail_all(ClusterError::Net(NetError::Disconnected));
        self.note_membership(node, MembershipState::Departed);
        Ok(())
    }

    /// Records one membership transition: the `haocl_node_state` gauge
    /// and a `policy=membership` audit row (the source haocl-top reads
    /// node states from).
    fn note_membership(&self, node: NodeId, state: MembershipState) {
        let name = self
            .node_name(node)
            .unwrap_or_else(|| format!("node{}", node.raw()));
        let obs = &self.inner.obs;
        obs.metrics.set_gauge(
            names::NODE_STATE,
            &[("node", name.as_str())],
            state.gauge_value(),
        );
        // The audit row follows the scheduler convention: decision rows
        // are recorded only while tracing is on.
        if !obs.enabled() {
            return;
        }
        obs.audit.record(PlacementAudit {
            kernel: "<membership>".to_string(),
            tenant: DEFAULT_TENANT.to_string(),
            policy: "membership".to_string(),
            candidates: vec![CandidateInfo {
                device: node.raw() as usize,
                node: name.clone(),
                kind: "-".to_string(),
                predicted_nanos: None,
                source: PredictionSource::CostModel,
                health: CandidateInfo::HEALTHY.to_string(),
            }],
            chosen: node.raw() as usize,
            reason: format!("state={state} node={name}"),
            fused: FusionDecision::Unconsidered,
        });
    }

    /// The configured name of `node`.
    pub fn node_name(&self, node: NodeId) -> Option<String> {
        self.inner
            .slot(node.raw() as usize)
            .map(|s| s.link.name.clone())
    }

    /// The observability hub shared by this runtime's links and demux
    /// threads. The platform layer adopts this hub (instead of creating
    /// its own) so every layer records into one recorder/registry.
    pub fn obs(&self) -> &Arc<Hub> {
        &self.inner.obs
    }

    fn _assert_send_sync() {
        fn assert<T: Send + Sync>() {}
        assert::<HostRuntime>();
        assert::<PendingCall>();
    }
}

impl Drop for HostRuntime {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let threads: Vec<JoinHandle<()>> = self
            .demux_threads
            .lock()
            .expect("demux threads poisoned")
            .drain(..)
            .collect();
        for t in threads {
            let _ = t.join();
        }
        // PendingCalls hold their own Arc into the shared state and may
        // outlive the runtime; leave them a terminal error instead of a
        // hang.
        for slot in self.inner.slots.read().expect("slots poisoned").iter() {
            slot.link
                .shared
                .fail_all(ClusterError::Net(NetError::Disconnected));
        }
    }
}

/// Drains one connection's responses, completing pending calls by
/// correlation id. Exits when the runtime stops or the connection dies;
/// on death every in-flight call on this plane fails with the transport
/// error (responses already delivered on the connection are drained
/// first, so nothing the node answered is discarded).
fn demux_loop(
    mut rx: haocl_net::ConnReceiver,
    plane: Plane,
    shared: Arc<LinkShared>,
    stop: Arc<AtomicBool>,
    retired: Arc<AtomicBool>,
    obs: Arc<Hub>,
    node_name: String,
) {
    let note_failure = || {
        obs.metrics.inc_counter(
            names::LINK_FAILURES,
            &[
                ("node", node_name.as_str()),
                (
                    "plane",
                    if plane == Plane::Control {
                        "control"
                    } else {
                        "data"
                    },
                ),
            ],
            1,
        );
    };
    while !stop.load(Ordering::SeqCst) {
        // A retired node's connections close by design: exit without
        // booking a link failure (retire_node already failed out any
        // straggling waiters).
        if retired.load(Ordering::SeqCst) {
            return;
        }
        match rx.recv_frame_timeout(DEMUX_POLL) {
            Ok((frame, received_at)) => match decode_from_slice::<Response>(&frame) {
                Ok(response) => {
                    if response.duplicate {
                        obs.metrics.inc_counter(
                            names::DEDUP_HITS,
                            &[("node", node_name.as_str())],
                            1,
                        );
                    }
                    shared.complete(response, received_at);
                }
                Err(e) => {
                    if retired.load(Ordering::SeqCst) {
                        return;
                    }
                    note_failure();
                    shared.fail_plane(plane, ClusterError::Wire(e));
                    return;
                }
            },
            Err(NetError::Timeout) => continue,
            // Poll deadline hit mid-frame: the partial bytes stay
            // buffered in the receiver, so the next recv resynchronizes
            // on the remaining chunks.
            Err(NetError::TimeoutMidFrame { .. }) => continue,
            Err(e) => {
                if retired.load(Ordering::SeqCst) {
                    return;
                }
                note_failure();
                shared.fail_plane(plane, ClusterError::Net(e));
                return;
            }
        }
    }
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("user", &self.user())
            .field("nodes", &self.inner.slot_count())
            .field("devices", &self.device_count())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeSpec;
    use crate::local::LocalCluster;
    use bytes::Bytes;
    use haocl_kernel::KernelRegistry;
    use haocl_net::{Conn, LinkModel};
    use haocl_proto::ids::BufferId;

    fn one_node_config() -> ClusterConfig {
        ClusterConfig {
            host_addr: "10.0.0.1:7000".into(),
            nodes: vec![NodeSpec {
                name: "n0".into(),
                addr: "10.0.9.1:7100".into(),
                devices: vec![],
            }],
            link: LinkModel::gigabit_ethernet(),
        }
    }

    fn reply(conn: &mut Conn, id: RequestId, body: ApiReply, at: SimTime) {
        let response = Response {
            id,
            completed_at_nanos: at.as_nanos(),
            body,
            duplicate: false,
            spans: Vec::new(),
        };
        conn.send_frame(&encode_to_vec(&response), at).unwrap();
    }

    fn answer_handshake(msg: &mut Conn) {
        let (frame, at) = msg.recv_frame().unwrap();
        let hello = decode_from_slice::<Envelope>(&frame)
            .unwrap()
            .into_requests()
            .remove(0);
        assert!(matches!(hello.body, ApiCall::Hello { .. }));
        reply(msg, hello.id, ApiReply::NodeInfo { devices: vec![] }, at);
    }

    fn collect_requests(msg: &mut Conn, n: usize) -> Vec<(Request, SimTime)> {
        let mut collected = Vec::new();
        while collected.len() < n {
            let (frame, at) = msg.recv_frame().unwrap();
            for request in decode_from_slice::<Envelope>(&frame)
                .unwrap()
                .into_requests()
            {
                collected.push((request, at));
            }
        }
        collected
    }

    #[test]
    fn responses_complete_out_of_order() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let msg_listener = fabric.bind("10.0.9.1:7100").unwrap();
        let data_listener = fabric.bind("10.0.9.1:7101").unwrap();
        // A scripted node that answers a burst of requests newest-first,
        // echoing each request id as the Pong payload — something the
        // sequential NMP never does, which is exactly the point: the
        // demultiplexer must correlate by id, not arrival order.
        let server = std::thread::spawn(move || {
            let mut msg = msg_listener.accept().unwrap();
            let _data = data_listener.accept().unwrap();
            answer_handshake(&mut msg);
            for (request, at) in collect_requests(&mut msg, 8).into_iter().rev() {
                reply(
                    &mut msg,
                    request.id,
                    ApiReply::Pong {
                        now_nanos: request.id.raw(),
                    },
                    at,
                );
            }
        });
        let host = HostRuntime::connect(&fabric, &one_node_config()).unwrap();
        let pending: Vec<PendingCall> = (0..8)
            .map(|_| host.submit(NodeId::new(0), ApiCall::Ping).unwrap())
            .collect();
        for p in pending {
            let id = p.id();
            let outcome = p.wait().unwrap();
            match outcome.reply {
                ApiReply::Pong { now_nanos } => {
                    assert_eq!(now_nanos, id.raw(), "response correlated to its request");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        server.join().unwrap();
    }

    #[test]
    fn dying_node_fails_inflight_calls_cleanly() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let msg_listener = fabric.bind("10.0.9.1:7100").unwrap();
        let data_listener = fabric.bind("10.0.9.1:7101").unwrap();
        // A node that swallows three requests and dies without answering.
        let server = std::thread::spawn(move || {
            let mut msg = msg_listener.accept().unwrap();
            let _data = data_listener.accept().unwrap();
            answer_handshake(&mut msg);
            collect_requests(&mut msg, 3);
        });
        let host = HostRuntime::connect(&fabric, &one_node_config()).unwrap();
        let pending: Vec<PendingCall> = (0..3)
            .map(|_| host.submit(NodeId::new(0), ApiCall::Ping).unwrap())
            .collect();
        server.join().unwrap();
        for p in pending {
            let err = p.wait().unwrap_err();
            assert!(
                matches!(err, ClusterError::Net(_)),
                "unexpected error {err}"
            );
        }
        // The link is marked dead: later submissions fail fast too.
        let err = match host.submit(NodeId::new(0), ApiCall::Ping) {
            Err(e) => e,
            Ok(p) => p.wait().unwrap_err(),
        };
        assert!(
            matches!(err, ClusterError::Net(_)),
            "unexpected error {err}"
        );
    }

    #[test]
    fn eight_deep_pipeline_on_one_node() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let pending: Vec<PendingCall> = (0..12)
            .map(|_| {
                cluster
                    .host()
                    .submit(NodeId::new(0), ApiCall::Ping)
                    .unwrap()
            })
            .collect();
        assert_eq!(pending.len(), 12, "12 calls in flight before any wait");
        for p in pending {
            assert!(matches!(p.wait().unwrap().reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn interleaved_submits_across_nodes() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
        let pending: Vec<PendingCall> = (0..9)
            .map(|i| {
                cluster
                    .host()
                    .submit(NodeId::new(i % 3), ApiCall::Ping)
                    .unwrap()
            })
            .collect();
        // Claim in reverse submission order: completion must not depend
        // on waiting in FIFO order.
        for p in pending.into_iter().rev() {
            assert!(matches!(p.wait().unwrap().reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn try_poll_claims_without_blocking() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let mut p = cluster
            .host()
            .submit(NodeId::new(0), ApiCall::Ping)
            .unwrap();
        let result = loop {
            match p.try_poll() {
                Some(r) => break r,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        assert!(matches!(result.unwrap().reply, ApiReply::Pong { .. }));
        assert!(p.try_poll().is_none(), "a claimed call stays claimed");
        cluster.shutdown();
    }

    #[test]
    fn concurrent_submitters_share_the_control_plane() {
        // Many threads hammering one node exercises the coalescing path:
        // whoever holds the transmit lock batches the others' requests.
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let host = cluster.host();
                s.spawn(move || {
                    for i in 0..16 {
                        let outcome = host.call(NodeId::new((t + i) % 2), ApiCall::Ping).unwrap();
                        assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
                    }
                });
            }
        });
        cluster.shutdown();
    }

    #[test]
    fn swallowed_request_is_retransmitted_until_answered() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let msg_listener = fabric.bind("10.0.9.1:7100").unwrap();
        let data_listener = fabric.bind("10.0.9.1:7101").unwrap();
        // A node that swallows the first delivery and only answers the
        // retransmission — the wait must absorb the loss.
        let server = std::thread::spawn(move || {
            let mut msg = msg_listener.accept().unwrap();
            let _data = data_listener.accept().unwrap();
            answer_handshake(&mut msg);
            let (first, _) = collect_requests(&mut msg, 1).remove(0);
            assert_eq!(first.attempt, 0);
            let (retry, at) = collect_requests(&mut msg, 1).remove(0);
            assert_eq!(retry.id, first.id, "retransmission reuses the id");
            assert_eq!(retry.attempt, 1, "retransmission bumps the attempt");
            reply(&mut msg, retry.id, ApiReply::Pong { now_nanos: 7 }, at);
        });
        let host = HostRuntime::connect(&fabric, &one_node_config()).unwrap();
        host.set_recovery(Some(RecoveryPolicy {
            base_timeout: Duration::from_millis(30),
            max_attempts: 4,
            failover: false,
        }));
        let outcome = host.call(NodeId::new(0), ApiCall::Ping).unwrap();
        assert!(matches!(outcome.reply, ApiReply::Pong { now_nanos: 7 }));
        let retries = host
            .obs()
            .metrics
            .counter_value(names::RETRIES, &[("node", "n0")]);
        assert!(retries >= 1, "retry was counted, got {retries}");
        server.join().unwrap();
    }

    #[test]
    fn failover_replays_state_onto_a_survivor() {
        let mut cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
        cluster.host().set_recovery(Some(RecoveryPolicy {
            base_timeout: Duration::from_millis(50),
            max_attempts: 2,
            failover: true,
        }));
        let node = NodeId::new(1);
        let buf = BufferId::new(1);
        let payload: Vec<u8> = (0..16).collect();
        cluster
            .host()
            .call(
                node,
                ApiCall::CreateBuffer {
                    device: 0,
                    buffer: buf,
                    size: 16,
                },
            )
            .unwrap();
        cluster
            .host()
            .call(
                node,
                ApiCall::WriteBuffer {
                    device: 0,
                    buffer: buf,
                    offset: 0,
                    data: Bytes::from(payload.clone()),
                },
            )
            .unwrap();
        // Lose the node. The next call to it must fail over: the journal
        // re-provisions the buffer (with its contents) on the survivor.
        assert!(cluster.kill_node(1));
        let outcome = cluster
            .host()
            .call(
                node,
                ApiCall::ReadBuffer {
                    device: 0,
                    buffer: buf,
                    offset: 0,
                    len: 16,
                },
            )
            .unwrap();
        match outcome.reply {
            ApiReply::Data { bytes } => assert_eq!(bytes.as_ref(), &payload[..]),
            other => panic!("unexpected reply {other:?}"),
        }
        assert_eq!(cluster.host().node_epoch(node), 1, "route epoch bumped");
        // The logical node keeps answering (served by the survivor).
        let outcome = cluster.host().call(node, ApiCall::Ping).unwrap();
        assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
        let failovers = cluster
            .host()
            .obs()
            .metrics
            .counter_value(names::FAILOVERS, &[("from", "gpu1"), ("to", "gpu0")]);
        assert!(failovers >= 1, "failover was counted, got {failovers}");
        cluster.shutdown();
    }
}
