//! The host-side runtime.
//!
//! The host process executes the user's OpenCL program and owns the
//! cluster-facing side of the backbone: it connects a message and a data
//! connection to every node in the configuration, performs the device-ID
//! mapping handshake ("when the user program calls clGetDeviceIDs, the
//! wrapper lib creates a device ID request message for each compute
//! node… the backbone obtains the device's id of each compute node and
//! records this mapping", §III-C), and forwards calls over a *pipelined*
//! backbone:
//!
//! * [`HostRuntime::submit`] writes the request and returns a
//!   [`PendingCall`] immediately, so many calls can be in flight per node
//!   at once;
//! * a per-connection demultiplexer thread drains responses and
//!   completes pending calls by [`RequestId`] — responses may arrive in
//!   any order;
//! * [`HostRuntime::call`] keeps the paper's synchronous semantics as
//!   `submit(...).wait()`, so lock-step callers are unchanged;
//! * control-plane requests that queue up while another thread is
//!   occupying the transmit path are coalesced into one
//!   [`Envelope::Batch`] frame instead of paying per-frame overhead
//!   each.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use haocl_net::{ConnSender, Fabric, NetError};
use haocl_obs::{names, Hub, TraceCtx};
use haocl_proto::ids::{IdAllocator, NodeId, RequestId, UserId};
use haocl_proto::messages::{
    ApiCall, ApiReply, DeviceDescriptor, Envelope, Request, Response, WireSpan,
};
use haocl_proto::wire::{decode_from_slice, encode_to_vec};
use haocl_sim::{Clock, SimTime};

use crate::config::ClusterConfig;
use crate::error::ClusterError;

/// How often demultiplexer threads check the stop flag.
const DEMUX_POLL: Duration = Duration::from_millis(10);

/// One device in the cluster, as mapped during the handshake.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteDevice {
    /// The node hosting the device.
    pub node: NodeId,
    /// The node's configured name.
    pub node_name: String,
    /// Device index within the node.
    pub device: u8,
    /// The advertised model summary.
    pub descriptor: DeviceDescriptor,
}

/// The outcome of one forwarded call.
#[derive(Debug, Clone, PartialEq)]
pub struct CallOutcome {
    /// The node's reply.
    pub reply: ApiReply,
    /// Virtual time the operation completed on the node.
    pub node_completed: SimTime,
    /// Virtual time the response reached the host.
    pub host_received: SimTime,
    /// Node-side spans, when the request was traced (see
    /// [`HostRuntime::submit_traced`]); empty otherwise.
    pub spans: Vec<WireSpan>,
}

/// Which of a node's two connections a request travels on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Plane {
    /// The message connection (control plane).
    Control,
    /// The data connection (buffer contents).
    Data,
}

enum PendingEntry {
    /// Submitted on the given plane; no response yet.
    Waiting(Plane),
    /// Completed by the demultiplexer; result not yet claimed. The
    /// second field is the response's virtual arrival time (`None` for
    /// transport failures, which carry no timestamp): the *claimer*
    /// advances the shared clock to it, so virtual time progresses in
    /// program order rather than at the whim of demultiplexer-thread
    /// scheduling — out-of-order completion must not make virtual
    /// timestamps nondeterministic.
    Done(Box<Result<CallOutcome, ClusterError>>, Option<SimTime>),
}

struct LinkState {
    pending: HashMap<RequestId, PendingEntry>,
    /// Set once the node's backbone connection is gone; every later
    /// submit or wait fails immediately with this error.
    dead: Option<ClusterError>,
}

/// Completion state shared between submitters, waiters and the link's
/// demultiplexer threads.
struct LinkShared {
    state: Mutex<LinkState>,
    completed: Condvar,
}

impl LinkShared {
    fn new() -> Self {
        LinkShared {
            state: Mutex::new(LinkState {
                pending: HashMap::new(),
                dead: None,
            }),
            completed: Condvar::new(),
        }
    }

    /// Completes the pending call correlated to `response` (responses
    /// for cancelled/unknown ids are discarded).
    fn complete(&self, response: Response, received_at: SimTime) {
        let result = match response.body {
            ApiReply::Error { code, message } => Err(ClusterError::Remote { code, message }),
            reply => Ok(CallOutcome {
                reply,
                node_completed: SimTime::from_nanos(response.completed_at_nanos),
                host_received: received_at,
                spans: response.spans,
            }),
        };
        let mut state = self.state.lock().expect("link state poisoned");
        if let Some(entry) = state.pending.get_mut(&response.id) {
            *entry = PendingEntry::Done(Box::new(result), Some(received_at));
            self.completed.notify_all();
        }
    }

    /// Marks the link dead and fails `plane`'s in-flight calls with
    /// `err`.
    ///
    /// Only the dying plane's entries are failed: a demultiplexer fully
    /// drains its own connection before it can observe the disconnect,
    /// but the *other* plane's demultiplexer may still be working
    /// through already-received responses — failing those calls here
    /// would discard answers the node actually delivered.
    fn fail_plane(&self, plane: Plane, err: ClusterError) {
        let mut state = self.state.lock().expect("link state poisoned");
        if state.dead.is_none() {
            state.dead = Some(err.clone());
        }
        for entry in state.pending.values_mut() {
            if matches!(entry, PendingEntry::Waiting(p) if *p == plane) {
                *entry = PendingEntry::Done(Box::new(Err(err.clone())), None);
            }
        }
        self.completed.notify_all();
    }

    /// Marks the link dead and fails every in-flight call with `err`
    /// (terminal teardown, once no demultiplexer is left to deliver).
    fn fail_all(&self, err: ClusterError) {
        self.fail_plane(Plane::Control, err.clone());
        self.fail_plane(Plane::Data, err);
    }
}

/// A submitted request whose response has not yet been claimed.
///
/// Obtained from [`HostRuntime::submit`]. Dropping it abandons the call:
/// the response, when it arrives, is discarded.
#[must_use = "a PendingCall that is never waited on silently discards its response"]
pub struct PendingCall {
    id: RequestId,
    node: NodeId,
    shared: Arc<LinkShared>,
    clock: Clock,
    taken: bool,
}

impl PendingCall {
    /// The request's correlation id.
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// The node the request was sent to.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Blocks until the response arrives (or the node's backbone dies).
    ///
    /// Claiming the response advances the shared virtual clock to its
    /// arrival time; until a response is claimed it does not move the
    /// clock, keeping virtual timestamps deterministic however the
    /// demultiplexer threads are scheduled.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] when the node answered with an error
    /// reply; a transport error when the connection failed while the
    /// call was in flight.
    pub fn wait(mut self) -> Result<CallOutcome, ClusterError> {
        let mut state = self.shared.state.lock().expect("link state poisoned");
        loop {
            match state.pending.get(&self.id) {
                Some(PendingEntry::Done(..)) => {
                    let Some(PendingEntry::Done(result, received_at)) =
                        state.pending.remove(&self.id)
                    else {
                        unreachable!("entry observed Done under the same lock");
                    };
                    self.taken = true;
                    if let Some(at) = received_at {
                        self.clock.advance_to(at);
                    }
                    return *result;
                }
                // Even on a dead link a Waiting entry just waits: the
                // owning plane's demultiplexer (or terminal teardown)
                // is guaranteed to resolve it, and the *other* plane
                // dying first must not discard a response that is
                // already queued for delivery.
                Some(PendingEntry::Waiting(_)) => {
                    state = self
                        .shared
                        .completed
                        .wait(state)
                        .expect("link state poisoned");
                }
                None => {
                    // The backbone was torn down underneath us.
                    self.taken = true;
                    return Err(state
                        .dead
                        .clone()
                        .unwrap_or(ClusterError::Net(NetError::Disconnected)));
                }
            }
        }
    }

    /// Claims the response if it has already arrived, without blocking.
    ///
    /// Returns `None` while the call is still in flight. After a
    /// `Some(..)` the call is consumed: later polls return `None` and
    /// [`PendingCall::wait`] must not be expected to yield it again.
    pub fn try_poll(&mut self) -> Option<Result<CallOutcome, ClusterError>> {
        if self.taken {
            return None;
        }
        let mut state = self.shared.state.lock().expect("link state poisoned");
        match state.pending.get(&self.id) {
            Some(PendingEntry::Done(..)) => {
                let Some(PendingEntry::Done(result, received_at)) = state.pending.remove(&self.id)
                else {
                    unreachable!("entry observed Done under the same lock");
                };
                self.taken = true;
                if let Some(at) = received_at {
                    self.clock.advance_to(at);
                }
                Some(*result)
            }
            Some(PendingEntry::Waiting(_)) => None,
            None => {
                self.taken = true;
                Some(Err(state
                    .dead
                    .clone()
                    .unwrap_or(ClusterError::Net(NetError::Disconnected))))
            }
        }
    }
}

impl Drop for PendingCall {
    fn drop(&mut self) {
        if !self.taken {
            if let Ok(mut state) = self.shared.state.lock() {
                state.pending.remove(&self.id);
            }
        }
    }
}

impl std::fmt::Debug for PendingCall {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PendingCall({} @ {})", self.id, self.node)
    }
}

struct NodeLink {
    name: String,
    shared: Arc<LinkShared>,
    /// Control-plane requests waiting to be coalesced into the next
    /// frame (see [`NodeLink::send_control`]).
    control_queue: Mutex<Vec<Request>>,
    /// Message-connection transmit half (control plane).
    msg_tx: Mutex<ConnSender>,
    /// Data-connection transmit half (buffer contents, §III-C's data
    /// listener).
    data_tx: Mutex<ConnSender>,
    /// Shared observability hub (plane metrics; gated on its enable
    /// flag so the hot path pays one atomic load when tracing is off).
    obs: Arc<Hub>,
}

impl NodeLink {
    /// Enqueues a control-plane request and flushes the queue unless
    /// another thread is already transmitting — in which case that
    /// thread picks this request up, coalescing it into its next
    /// [`Envelope::Batch`].
    fn send_control(&self, request: Request, at: SimTime) -> Result<(), ClusterError> {
        self.control_queue
            .lock()
            .expect("control queue poisoned")
            .push(request);
        loop {
            // Non-blocking: if the transmit path is busy, the holder
            // re-checks the queue after finishing its send (below), so
            // leaving our request queued cannot strand it.
            let Ok(mut sender) = self.msg_tx.try_lock() else {
                return Ok(());
            };
            let batch =
                std::mem::take(&mut *self.control_queue.lock().expect("control queue poisoned"));
            if batch.is_empty() {
                return Ok(());
            }
            let virtual_len: u64 = batch.iter().map(|r| virtual_len_of(&r.body)).sum();
            let coalesced = batch.len() as u64;
            let payload = encode_to_vec(&Envelope::from(batch));
            self.note_frame("control", &payload, virtual_len, coalesced);
            if let Err(e) = sender.send_frame_virtual(&payload, at, virtual_len) {
                // The batch may carry other submitters' requests; their
                // PendingCalls must observe the failure too.
                let err = ClusterError::Net(e);
                self.shared.fail_plane(Plane::Control, err.clone());
                return Err(err);
            }
            drop(sender);
            // Someone may have queued behind us while we held the
            // sender; make sure their request is not stranded.
            if self
                .control_queue
                .lock()
                .expect("control queue poisoned")
                .is_empty()
            {
                return Ok(());
            }
        }
    }

    /// Sends a data-plane request immediately (bulk payloads are never
    /// coalesced; their transmit cost dominates framing overhead).
    fn send_data(&self, request: Request, at: SimTime) -> Result<(), ClusterError> {
        let virtual_len = virtual_len_of(&request.body);
        let payload = encode_to_vec(&Envelope::Single(request));
        self.note_frame("data", &payload, virtual_len, 1);
        let mut sender = self.data_tx.lock().expect("data sender poisoned");
        sender.send_frame_virtual(&payload, at, virtual_len)?;
        Ok(())
    }

    /// Records one outgoing frame's plane metrics (no-op while tracing
    /// is off). Bytes are *virtual wire bytes*: modeled bulk payloads
    /// count their declared length, not the descriptor that stands in
    /// for them.
    fn note_frame(&self, plane: &str, payload: &[u8], virtual_len: u64, coalesced: u64) {
        if !self.obs.enabled() {
            return;
        }
        let labels = [("node", self.name.as_str()), ("plane", plane)];
        let bytes = (payload.len() as u64).max(virtual_len);
        self.obs
            .metrics
            .inc_counter(names::PLANE_FRAMES, &labels, 1);
        self.obs
            .metrics
            .inc_counter(names::PLANE_BYTES, &labels, bytes);
        if plane == "control" {
            self.obs.metrics.observe_with_buckets(
                names::BATCH_SIZE,
                &[("node", self.name.as_str())],
                coalesced,
                &haocl_obs::SIZE_BUCKETS,
            );
        }
    }
}

/// Virtual wire size of modeled bulk writes (the data package the
/// descriptor stands in for).
fn virtual_len_of(call: &ApiCall) -> u64 {
    match call {
        ApiCall::WriteBufferModeled { len, .. } => *len,
        _ => 0,
    }
}

/// The host runtime: device mapping plus pipelined call forwarding.
pub struct HostRuntime {
    user: UserId,
    links: Vec<NodeLink>,
    devices: Vec<RemoteDevice>,
    request_ids: IdAllocator,
    clock: Clock,
    stop: Arc<AtomicBool>,
    demux_threads: Vec<JoinHandle<()>>,
    /// The observability hub the whole stack above shares: the platform
    /// layer reads it back via [`HostRuntime::obs`] rather than creating
    /// its own, so host spans, plane metrics and node spans land in one
    /// place.
    obs: Arc<Hub>,
}

impl HostRuntime {
    /// Connects to every node in `config` and performs the hello/device
    /// mapping handshake.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] if any node is unreachable or answers the
    /// handshake with anything but its device inventory.
    pub fn connect(fabric: &Fabric, config: &ClusterConfig) -> Result<Self, ClusterError> {
        let host_name = config
            .host_addr
            .split(':')
            .next()
            .unwrap_or(&config.host_addr)
            .to_string();
        let mut runtime = HostRuntime {
            user: UserId::new(1),
            links: Vec::new(),
            devices: Vec::new(),
            request_ids: IdAllocator::new(),
            clock: fabric.clock().clone(),
            stop: Arc::new(AtomicBool::new(false)),
            demux_threads: Vec::new(),
            obs: Arc::new(Hub::new()),
        };
        for (i, spec) in config.nodes.iter().enumerate() {
            let (msg_tx, msg_rx) = fabric.connect(&host_name, &spec.addr)?.split();
            let (data_tx, data_rx) = fabric.connect(&host_name, &spec.data_addr())?.split();
            let shared = Arc::new(LinkShared::new());
            for (plane, rx) in [(Plane::Control, msg_rx), (Plane::Data, data_rx)] {
                let shared = Arc::clone(&shared);
                let stop = Arc::clone(&runtime.stop);
                let obs = Arc::clone(&runtime.obs);
                let node_name = spec.name.clone();
                runtime.demux_threads.push(
                    std::thread::Builder::new()
                        .name(format!("haocl-demux-{}-{plane:?}", spec.name))
                        .spawn(move || demux_loop(rx, plane, shared, stop, obs, node_name))
                        .expect("spawn demux thread"),
                );
            }
            runtime.links.push(NodeLink {
                name: spec.name.clone(),
                shared,
                control_queue: Mutex::new(Vec::new()),
                msg_tx: Mutex::new(msg_tx),
                data_tx: Mutex::new(data_tx),
                obs: Arc::clone(&runtime.obs),
            });
            let node = NodeId::new(i as u32);
            let outcome = runtime.call(
                node,
                ApiCall::Hello {
                    client: format!("haocl-host/{host_name}"),
                },
            )?;
            match outcome.reply {
                ApiReply::NodeInfo { devices } => {
                    for d in devices {
                        runtime.devices.push(RemoteDevice {
                            node,
                            node_name: spec.name.clone(),
                            device: d.index,
                            descriptor: d,
                        });
                    }
                }
                other => {
                    return Err(ClusterError::UnexpectedReply(format!(
                        "hello answered with {other:?}"
                    )));
                }
            }
        }
        Ok(runtime)
    }

    /// The mapped devices, cluster-wide, in `(node, device)` order.
    pub fn devices(&self) -> &[RemoteDevice] {
        &self.devices
    }

    /// Number of nodes connected.
    pub fn node_count(&self) -> usize {
        self.links.len()
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The session's user id.
    pub fn user(&self) -> UserId {
        self.user
    }

    /// Sets the session's user id (multi-user support).
    pub fn set_user(&mut self, user: UserId) {
        self.user = user;
    }

    /// Forwards `call` to `node` without waiting for its response.
    ///
    /// The returned [`PendingCall`] resolves when the node's response
    /// arrives; any number of calls may be in flight per node, and they
    /// complete in whatever order the node answers. Buffer-content calls
    /// (`WriteBuffer`/`ReadBuffer`) travel on the node's data
    /// connection; everything else on the message connection, where
    /// concurrent submissions coalesce into batched frames.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unknown node; a transport error
    /// if the request cannot be written.
    pub fn submit(&self, node: NodeId, call: ApiCall) -> Result<PendingCall, ClusterError> {
        self.submit_traced(node, call, None)
    }

    /// Like [`HostRuntime::submit`], but threads a trace context to the
    /// node: the NMP records its dispatch (and, for kernel launches, the
    /// VM run) as spans parented under `ctx.parent` and ships them back
    /// in the response, where they surface as [`CallOutcome::spans`].
    ///
    /// # Errors
    ///
    /// Same as [`HostRuntime::submit`].
    pub fn submit_traced(
        &self,
        node: NodeId,
        call: ApiCall,
        ctx: Option<TraceCtx>,
    ) -> Result<PendingCall, ClusterError> {
        let link = self
            .links
            .get(node.raw() as usize)
            .ok_or_else(|| ClusterError::Config(format!("unknown node {node}")))?;
        let is_data = matches!(
            call,
            ApiCall::WriteBuffer { .. }
                | ApiCall::ReadBuffer { .. }
                | ApiCall::WriteBufferModeled { .. }
                | ApiCall::ReadBufferModeled { .. }
        );
        let id = RequestId::new(self.request_ids.next());
        let now = self.clock.now();
        let request = Request {
            id,
            user: self.user,
            sent_at_nanos: now.as_nanos(),
            trace_id: ctx.map_or(0, |c| c.trace.0),
            parent_span: ctx.map_or(0, |c| c.parent.0),
            body: call,
        };
        let plane = if is_data { Plane::Data } else { Plane::Control };
        {
            let mut state = link.shared.state.lock().expect("link state poisoned");
            if let Some(err) = &state.dead {
                return Err(err.clone());
            }
            state.pending.insert(id, PendingEntry::Waiting(plane));
        }
        let sent = if is_data {
            link.send_data(request, now)
        } else {
            link.send_control(request, now)
        };
        if let Err(err) = sent {
            link.shared
                .state
                .lock()
                .expect("link state poisoned")
                .pending
                .remove(&id);
            return Err(err);
        }
        Ok(PendingCall {
            id,
            node,
            shared: Arc::clone(&link.shared),
            clock: self.clock.clone(),
            taken: false,
        })
    }

    /// Forwards `call` to `node` and waits synchronously for its reply —
    /// [`HostRuntime::submit`] followed by [`PendingCall::wait`].
    ///
    /// # Errors
    ///
    /// [`ClusterError::Remote`] when the node answers with an error
    /// reply; transport errors otherwise.
    pub fn call(&self, node: NodeId, call: ApiCall) -> Result<CallOutcome, ClusterError> {
        self.submit(node, call)?.wait()
    }

    /// Sends `Shutdown` to every node (best effort) for orderly teardown.
    pub fn shutdown_cluster(&self) {
        for i in 0..self.links.len() {
            let _ = self.call(NodeId::new(i as u32), ApiCall::Shutdown);
        }
    }

    /// The configured name of `node`.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.links.get(node.raw() as usize).map(|l| l.name.as_str())
    }

    /// The observability hub shared by this runtime's links and demux
    /// threads. The platform layer adopts this hub (instead of creating
    /// its own) so every layer records into one recorder/registry.
    pub fn obs(&self) -> &Arc<Hub> {
        &self.obs
    }

    fn _assert_send_sync() {
        fn assert<T: Send + Sync>() {}
        assert::<HostRuntime>();
        assert::<PendingCall>();
    }
}

impl Drop for HostRuntime {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.demux_threads.drain(..) {
            let _ = t.join();
        }
        // PendingCalls hold their own Arc<LinkShared> and may outlive the
        // runtime; leave them a terminal error instead of a hang.
        for link in &self.links {
            link.shared
                .fail_all(ClusterError::Net(NetError::Disconnected));
        }
    }
}

/// Drains one connection's responses, completing pending calls by
/// correlation id. Exits when the runtime stops or the connection dies;
/// on death every in-flight call on this plane fails with the transport
/// error (responses already delivered on the connection are drained
/// first, so nothing the node answered is discarded).
fn demux_loop(
    mut rx: haocl_net::ConnReceiver,
    plane: Plane,
    shared: Arc<LinkShared>,
    stop: Arc<AtomicBool>,
    obs: Arc<Hub>,
    node_name: String,
) {
    let note_failure = || {
        obs.metrics.inc_counter(
            names::LINK_FAILURES,
            &[
                ("node", node_name.as_str()),
                (
                    "plane",
                    if plane == Plane::Control {
                        "control"
                    } else {
                        "data"
                    },
                ),
            ],
            1,
        );
    };
    while !stop.load(Ordering::SeqCst) {
        match rx.recv_frame_timeout(DEMUX_POLL) {
            Ok((frame, received_at)) => match decode_from_slice::<Response>(&frame) {
                Ok(response) => shared.complete(response, received_at),
                Err(e) => {
                    note_failure();
                    shared.fail_plane(plane, ClusterError::Wire(e));
                    return;
                }
            },
            Err(NetError::Timeout) => continue,
            Err(e) => {
                note_failure();
                shared.fail_plane(plane, ClusterError::Net(e));
                return;
            }
        }
    }
}

impl std::fmt::Debug for HostRuntime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HostRuntime")
            .field("user", &self.user)
            .field("nodes", &self.links.len())
            .field("devices", &self.devices.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::NodeSpec;
    use crate::local::LocalCluster;
    use haocl_kernel::KernelRegistry;
    use haocl_net::{Conn, LinkModel};

    fn one_node_config() -> ClusterConfig {
        ClusterConfig {
            host_addr: "10.0.0.1:7000".into(),
            nodes: vec![NodeSpec {
                name: "n0".into(),
                addr: "10.0.9.1:7100".into(),
                devices: vec![],
            }],
            link: LinkModel::gigabit_ethernet(),
        }
    }

    fn reply(conn: &mut Conn, id: RequestId, body: ApiReply, at: SimTime) {
        let response = Response {
            id,
            completed_at_nanos: at.as_nanos(),
            body,
            spans: Vec::new(),
        };
        conn.send_frame(&encode_to_vec(&response), at).unwrap();
    }

    fn answer_handshake(msg: &mut Conn) {
        let (frame, at) = msg.recv_frame().unwrap();
        let hello = decode_from_slice::<Envelope>(&frame)
            .unwrap()
            .into_requests()
            .remove(0);
        assert!(matches!(hello.body, ApiCall::Hello { .. }));
        reply(msg, hello.id, ApiReply::NodeInfo { devices: vec![] }, at);
    }

    fn collect_requests(msg: &mut Conn, n: usize) -> Vec<(Request, SimTime)> {
        let mut collected = Vec::new();
        while collected.len() < n {
            let (frame, at) = msg.recv_frame().unwrap();
            for request in decode_from_slice::<Envelope>(&frame)
                .unwrap()
                .into_requests()
            {
                collected.push((request, at));
            }
        }
        collected
    }

    #[test]
    fn responses_complete_out_of_order() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let msg_listener = fabric.bind("10.0.9.1:7100").unwrap();
        let data_listener = fabric.bind("10.0.9.1:7101").unwrap();
        // A scripted node that answers a burst of requests newest-first,
        // echoing each request id as the Pong payload — something the
        // sequential NMP never does, which is exactly the point: the
        // demultiplexer must correlate by id, not arrival order.
        let server = std::thread::spawn(move || {
            let mut msg = msg_listener.accept().unwrap();
            let _data = data_listener.accept().unwrap();
            answer_handshake(&mut msg);
            for (request, at) in collect_requests(&mut msg, 8).into_iter().rev() {
                reply(
                    &mut msg,
                    request.id,
                    ApiReply::Pong {
                        now_nanos: request.id.raw(),
                    },
                    at,
                );
            }
        });
        let host = HostRuntime::connect(&fabric, &one_node_config()).unwrap();
        let pending: Vec<PendingCall> = (0..8)
            .map(|_| host.submit(NodeId::new(0), ApiCall::Ping).unwrap())
            .collect();
        for p in pending {
            let id = p.id();
            let outcome = p.wait().unwrap();
            match outcome.reply {
                ApiReply::Pong { now_nanos } => {
                    assert_eq!(now_nanos, id.raw(), "response correlated to its request");
                }
                other => panic!("unexpected reply {other:?}"),
            }
        }
        server.join().unwrap();
    }

    #[test]
    fn dying_node_fails_inflight_calls_cleanly() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let msg_listener = fabric.bind("10.0.9.1:7100").unwrap();
        let data_listener = fabric.bind("10.0.9.1:7101").unwrap();
        // A node that swallows three requests and dies without answering.
        let server = std::thread::spawn(move || {
            let mut msg = msg_listener.accept().unwrap();
            let _data = data_listener.accept().unwrap();
            answer_handshake(&mut msg);
            collect_requests(&mut msg, 3);
        });
        let host = HostRuntime::connect(&fabric, &one_node_config()).unwrap();
        let pending: Vec<PendingCall> = (0..3)
            .map(|_| host.submit(NodeId::new(0), ApiCall::Ping).unwrap())
            .collect();
        server.join().unwrap();
        for p in pending {
            let err = p.wait().unwrap_err();
            assert!(
                matches!(err, ClusterError::Net(_)),
                "unexpected error {err}"
            );
        }
        // The link is marked dead: later submissions fail fast too.
        let err = match host.submit(NodeId::new(0), ApiCall::Ping) {
            Err(e) => e,
            Ok(p) => p.wait().unwrap_err(),
        };
        assert!(
            matches!(err, ClusterError::Net(_)),
            "unexpected error {err}"
        );
    }

    #[test]
    fn eight_deep_pipeline_on_one_node() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let pending: Vec<PendingCall> = (0..12)
            .map(|_| {
                cluster
                    .host()
                    .submit(NodeId::new(0), ApiCall::Ping)
                    .unwrap()
            })
            .collect();
        assert_eq!(pending.len(), 12, "12 calls in flight before any wait");
        for p in pending {
            assert!(matches!(p.wait().unwrap().reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn interleaved_submits_across_nodes() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
        let pending: Vec<PendingCall> = (0..9)
            .map(|i| {
                cluster
                    .host()
                    .submit(NodeId::new(i % 3), ApiCall::Ping)
                    .unwrap()
            })
            .collect();
        // Claim in reverse submission order: completion must not depend
        // on waiting in FIFO order.
        for p in pending.into_iter().rev() {
            assert!(matches!(p.wait().unwrap().reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn try_poll_claims_without_blocking() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let mut p = cluster
            .host()
            .submit(NodeId::new(0), ApiCall::Ping)
            .unwrap();
        let result = loop {
            match p.try_poll() {
                Some(r) => break r,
                None => std::thread::sleep(Duration::from_millis(1)),
            }
        };
        assert!(matches!(result.unwrap().reply, ApiReply::Pong { .. }));
        assert!(p.try_poll().is_none(), "a claimed call stays claimed");
        cluster.shutdown();
    }

    #[test]
    fn concurrent_submitters_share_the_control_plane() {
        // Many threads hammering one node exercises the coalescing path:
        // whoever holds the transmit lock batches the others' requests.
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(2), KernelRegistry::new()).unwrap();
        std::thread::scope(|s| {
            for t in 0..4 {
                let host = cluster.host();
                s.spawn(move || {
                    for i in 0..16 {
                        let outcome = host.call(NodeId::new((t + i) % 2), ApiCall::Ping).unwrap();
                        assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
                    }
                });
            }
        });
        cluster.shutdown();
    }
}
