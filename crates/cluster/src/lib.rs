//! The HaoCL cluster runtime: Node Management Processes and the host.
//!
//! This crate wires the substrates together into the system of Fig. 1:
//!
//! * [`config`] — the cluster configuration file (host address, node
//!   addresses and device inventories, link parameters) the paper's host
//!   process reads at startup (§III-C).
//! * [`nmp`] — the **Node Management Process** (§III-D): a daemon on each
//!   device node that accepts connections on a *message* port and a
//!   *data* port, unpacks message packages, executes them on its
//!   simulated devices and replies. FPGAs only serve kernels pre-built in
//!   their bitstream registry.
//! * [`host`] — the host-side runtime: connects to every node from the
//!   config, performs the `clGetDeviceIDs` device-mapping handshake, and
//!   forwards calls over a pipelined backbone — non-blocking
//!   [`HostRuntime::submit`] returning a [`host::PendingCall`], with a
//!   per-connection demultiplexer completing responses out of order and
//!   [`HostRuntime::call`] retaining the paper's synchronous semantics.
//! * [`local`] — [`LocalCluster`]: spawns a whole cluster in-process
//!   (NMPs as OS threads on a shared [`haocl_net::Fabric`]) for tests,
//!   examples and benchmarks.
//! * [`session`] — multi-user session bookkeeping (§I, §III-D).
//! * [`autoscale`] — the metrics-driven [`autoscale::Autoscaler`]: a
//!   hysteresis/cooldown policy engine over the obs layer's queue-depth
//!   series that tells the platform when to grow or drain the fleet.
//!
//! # Examples
//!
//! ```
//! use haocl_cluster::{ClusterConfig, LocalCluster};
//! use haocl_kernel::KernelRegistry;
//! use haocl_proto::messages::ApiCall;
//!
//! let config = ClusterConfig::gpu_cluster(2);
//! let cluster = LocalCluster::launch(&config, KernelRegistry::new())?;
//! let host = cluster.host();
//! assert_eq!(host.devices().len(), 2);
//! # Ok::<(), haocl_cluster::ClusterError>(())
//! ```

pub mod autoscale;
pub mod config;
pub mod error;
pub mod host;
pub mod local;
pub mod nmp;
pub mod session;

pub use autoscale::{AutoscaleConfig, Autoscaler, Decision, LoadSample};
pub use config::{ClusterConfig, NodeSpec};
pub use error::ClusterError;
pub use host::{
    CallOutcome, HostRuntime, MembershipState, PendingCall, RecoveryPolicy, RemoteDevice,
};
pub use local::LocalCluster;
pub use nmp::NmpHandle;
pub use session::SessionManager;
