//! In-process cluster launcher.

use std::sync::Mutex;

use haocl_kernel::KernelRegistry;
use haocl_net::{ChaosPolicy, Fabric};
use haocl_proto::ids::NodeId;
use haocl_sim::Clock;

use crate::config::{ClusterConfig, NodeSpec};
use crate::error::ClusterError;
use crate::host::{HostRuntime, RecoveryPolicy};
use crate::nmp::NmpHandle;

/// A whole HaoCL cluster running in-process: one NMP thread pair per node
/// on a shared fabric, plus a connected host runtime.
///
/// Dropping the cluster shuts the daemons down and joins their threads.
///
/// # Examples
///
/// ```
/// use haocl_cluster::{ClusterConfig, LocalCluster};
/// use haocl_kernel::KernelRegistry;
///
/// let cluster = LocalCluster::launch(
///     &ClusterConfig::hetero_cluster(1, 1),
///     KernelRegistry::new(),
/// )?;
/// assert_eq!(cluster.host().node_count(), 2);
/// assert_eq!(cluster.host().devices().len(), 2);
/// # Ok::<(), haocl_cluster::ClusterError>(())
/// ```
pub struct LocalCluster {
    fabric: Fabric,
    /// One entry per node slot, aligned with the host's `NodeId` space;
    /// `None` marks a node whose NMP has been stopped (killed, retired,
    /// or failed to join). Entries are never removed, so indices stay
    /// aligned as membership grows.
    handles: Mutex<Vec<Option<NmpHandle>>>,
    /// The shared bitstream store, kept so late-joining nodes get the
    /// same kernels as the founders.
    registry: KernelRegistry,
    host: HostRuntime,
}

impl LocalCluster {
    /// Spawns NMPs for every node in `config` and connects the host.
    ///
    /// `registry` is shared by all nodes as their bitstream store (and
    /// native fast path); pass an empty registry for pure-source runs.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on address clashes or handshake failures.
    pub fn launch(config: &ClusterConfig, registry: KernelRegistry) -> Result<Self, ClusterError> {
        let fabric = Fabric::new(Clock::new(), config.link);
        let mut handles = Vec::with_capacity(config.nodes.len());
        for spec in &config.nodes {
            handles.push(Some(NmpHandle::spawn(&fabric, spec, registry.clone())?));
        }
        let host = HostRuntime::connect(&fabric, config)?;
        // Chaos opt-in from the environment (HAOCL_CHAOS_SPEC /
        // HAOCL_CHAOS_SEED): installed only after the handshake, so
        // bring-up is exempt, and paired with a default recovery policy —
        // an injected fault schedule without recovery would just fail.
        // Wildcards resolve against the *node* hosts only; the host
        // process itself is never a crash candidate.
        let node_hosts: Vec<String> = config
            .nodes
            .iter()
            .map(|spec| {
                spec.addr
                    .split(':')
                    .next()
                    .unwrap_or(&spec.addr)
                    .to_string()
            })
            .collect();
        match ChaosPolicy::from_env(&node_hosts) {
            None => {}
            Some(Ok(policy)) => {
                fabric.install_chaos(policy);
                host.set_recovery(Some(RecoveryPolicy::default()));
            }
            Some(Err(e)) => {
                return Err(ClusterError::Config(format!("bad chaos spec: {e}")));
            }
        }
        Ok(LocalCluster {
            fabric,
            handles: Mutex::new(handles),
            registry,
            host,
        })
    }

    /// Adds a node to the running cluster: spawns its NMP on the shared
    /// fabric (with the shared kernel registry) and joins it through the
    /// host's membership handshake. Returns the new node's id.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on address clashes or a failed handshake; the
    /// NMP is stopped again and the host keeps a `Departed` tombstone.
    pub fn add_node(&self, spec: &NodeSpec) -> Result<NodeId, ClusterError> {
        let handle = NmpHandle::spawn(&self.fabric, spec, self.registry.clone())?;
        // Reserve the slot before the handshake so the handle index and
        // the host's NodeId stay aligned even if the join fails.
        {
            let mut handles = self.handles.lock().expect("handles poisoned");
            debug_assert_eq!(handles.len(), self.host.node_count());
            handles.push(Some(handle));
        }
        match self.host.connect_node(spec) {
            Ok(node) => {
                debug_assert_eq!(
                    node.raw() as usize + 1,
                    self.handles.lock().expect("handles poisoned").len()
                );
                Ok(node)
            }
            Err(e) => {
                if let Some(handle) = self
                    .handles
                    .lock()
                    .expect("handles poisoned")
                    .last_mut()
                    .and_then(Option::take)
                {
                    handle.stop();
                }
                Err(e)
            }
        }
    }

    /// Completes a node's voluntary departure: retires it host-side
    /// (epoch bump booked as voluntary, stragglers failed out) and stops
    /// its NMP, freeing its fabric addresses for a later rejoin.
    ///
    /// The caller is responsible for *draining* first — migrating the
    /// node's resident state off via the platform layer. `remove_node`
    /// itself is the final, state-destroying step.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Config`] for an unknown node.
    pub fn remove_node(&self, node: NodeId) -> Result<(), ClusterError> {
        self.host.retire_node(node)?;
        if let Some(handle) = self
            .handles
            .lock()
            .expect("handles poisoned")
            .get_mut(node.raw() as usize)
            .and_then(Option::take)
        {
            handle.stop();
        }
        Ok(())
    }

    /// The connected host runtime.
    pub fn host(&self) -> &HostRuntime {
        &self.host
    }

    /// Mutable access to the host runtime (e.g. to switch users).
    pub fn host_mut(&mut self) -> &mut HostRuntime {
        &mut self.host
    }

    /// The shared fabric (to attach extra clients or inspect the link).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Installs a chaos policy on the fabric and enables the default
    /// recovery policy, exactly as the `HAOCL_CHAOS_*` environment
    /// variables would — but scoped to this cluster, so parallel tests
    /// don't race on process-global state.
    pub fn install_chaos(&self, policy: ChaosPolicy) {
        self.fabric.install_chaos(policy);
        self.host.set_recovery(Some(RecoveryPolicy::default()));
    }

    /// The chaos schedule observed so far, one line per injected fault —
    /// the repro artifact to attach to a failing run. Empty when no
    /// chaos policy is installed.
    pub fn chaos_schedule(&self) -> Vec<String> {
        self.fabric
            .with_chaos(|c| c.schedule_lines())
            .unwrap_or_default()
    }

    /// Kills the NMP of node `index` abruptly (failure injection): its
    /// listener threads stop and join, connections drop. Returns `false`
    /// if the node was already killed or the index is out of range.
    pub fn kill_node(&mut self, index: usize) -> bool {
        let Some(handle) = self
            .handles
            .lock()
            .expect("handles poisoned")
            .get_mut(index)
            .and_then(Option::take)
        else {
            return false;
        };
        handle.stop();
        true
    }

    /// Number of NMPs still running.
    pub fn live_nodes(&self) -> usize {
        self.handles
            .lock()
            .expect("handles poisoned")
            .iter()
            .filter(|h| h.is_some())
            .count()
    }

    /// Orderly shutdown: notifies every NMP, then stops and joins them.
    pub fn shutdown(self) {
        self.host.shutdown_cluster();
        for h in self
            .handles
            .lock()
            .expect("handles poisoned")
            .iter_mut()
            .filter_map(Option::take)
        {
            h.stop();
        }
    }
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("nodes", &self.live_nodes())
            .field("devices", &self.host.devices().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_proto::ids::NodeId;
    use haocl_proto::messages::{ApiCall, ApiReply, DeviceKind};

    #[test]
    fn launch_maps_every_device_in_order() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::hetero_cluster(2, 1), KernelRegistry::new())
                .unwrap();
        let devices = cluster.host().devices();
        assert_eq!(devices.len(), 3);
        assert_eq!(devices[0].descriptor.kind, DeviceKind::Gpu);
        assert_eq!(devices[1].descriptor.kind, DeviceKind::Gpu);
        assert_eq!(devices[2].descriptor.kind, DeviceKind::Fpga);
        assert_eq!(devices[2].node, NodeId::new(2));
        cluster.shutdown();
    }

    #[test]
    fn ping_every_node() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
        for i in 0..3 {
            let outcome = cluster.host().call(NodeId::new(i), ApiCall::Ping).unwrap();
            assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        drop(cluster); // NmpHandle::drop must stop threads without hanging.
    }

    #[test]
    fn two_clusters_can_coexist() {
        // Separate fabrics: identical addresses do not clash.
        let a =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let b =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        assert_eq!(a.host().devices().len(), 1);
        assert_eq!(b.host().devices().len(), 1);
        a.shutdown();
        b.shutdown();
    }
}
