//! In-process cluster launcher.

use haocl_kernel::KernelRegistry;
use haocl_net::{ChaosPolicy, Fabric};
use haocl_sim::Clock;

use crate::config::ClusterConfig;
use crate::error::ClusterError;
use crate::host::{HostRuntime, RecoveryPolicy};
use crate::nmp::NmpHandle;

/// A whole HaoCL cluster running in-process: one NMP thread pair per node
/// on a shared fabric, plus a connected host runtime.
///
/// Dropping the cluster shuts the daemons down and joins their threads.
///
/// # Examples
///
/// ```
/// use haocl_cluster::{ClusterConfig, LocalCluster};
/// use haocl_kernel::KernelRegistry;
///
/// let cluster = LocalCluster::launch(
///     &ClusterConfig::hetero_cluster(1, 1),
///     KernelRegistry::new(),
/// )?;
/// assert_eq!(cluster.host().node_count(), 2);
/// assert_eq!(cluster.host().devices().len(), 2);
/// # Ok::<(), haocl_cluster::ClusterError>(())
/// ```
pub struct LocalCluster {
    fabric: Fabric,
    handles: Vec<NmpHandle>,
    host: HostRuntime,
}

impl LocalCluster {
    /// Spawns NMPs for every node in `config` and connects the host.
    ///
    /// `registry` is shared by all nodes as their bitstream store (and
    /// native fast path); pass an empty registry for pure-source runs.
    ///
    /// # Errors
    ///
    /// [`ClusterError`] on address clashes or handshake failures.
    pub fn launch(config: &ClusterConfig, registry: KernelRegistry) -> Result<Self, ClusterError> {
        let fabric = Fabric::new(Clock::new(), config.link);
        let mut handles = Vec::with_capacity(config.nodes.len());
        for spec in &config.nodes {
            handles.push(NmpHandle::spawn(&fabric, spec, registry.clone())?);
        }
        let host = HostRuntime::connect(&fabric, config)?;
        // Chaos opt-in from the environment (HAOCL_CHAOS_SPEC /
        // HAOCL_CHAOS_SEED): installed only after the handshake, so
        // bring-up is exempt, and paired with a default recovery policy —
        // an injected fault schedule without recovery would just fail.
        // Wildcards resolve against the *node* hosts only; the host
        // process itself is never a crash candidate.
        let node_hosts: Vec<String> = config
            .nodes
            .iter()
            .map(|spec| {
                spec.addr
                    .split(':')
                    .next()
                    .unwrap_or(&spec.addr)
                    .to_string()
            })
            .collect();
        match ChaosPolicy::from_env(&node_hosts) {
            None => {}
            Some(Ok(policy)) => {
                fabric.install_chaos(policy);
                host.set_recovery(Some(RecoveryPolicy::default()));
            }
            Some(Err(e)) => {
                return Err(ClusterError::Config(format!("bad chaos spec: {e}")));
            }
        }
        Ok(LocalCluster {
            fabric,
            handles,
            host,
        })
    }

    /// The connected host runtime.
    pub fn host(&self) -> &HostRuntime {
        &self.host
    }

    /// Mutable access to the host runtime (e.g. to switch users).
    pub fn host_mut(&mut self) -> &mut HostRuntime {
        &mut self.host
    }

    /// The shared fabric (to attach extra clients or inspect the link).
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Installs a chaos policy on the fabric and enables the default
    /// recovery policy, exactly as the `HAOCL_CHAOS_*` environment
    /// variables would — but scoped to this cluster, so parallel tests
    /// don't race on process-global state.
    pub fn install_chaos(&self, policy: ChaosPolicy) {
        self.fabric.install_chaos(policy);
        self.host.set_recovery(Some(RecoveryPolicy::default()));
    }

    /// The chaos schedule observed so far, one line per injected fault —
    /// the repro artifact to attach to a failing run. Empty when no
    /// chaos policy is installed.
    pub fn chaos_schedule(&self) -> Vec<String> {
        self.fabric
            .with_chaos(|c| c.schedule_lines())
            .unwrap_or_default()
    }

    /// Kills the NMP of node `index` abruptly (failure injection): its
    /// listener threads stop and join, connections drop. Returns `false`
    /// if the node was already killed or the index is out of range.
    pub fn kill_node(&mut self, index: usize) -> bool {
        if index >= self.handles.len() {
            return false;
        }
        // Replace with a tombstone by draining just that handle.
        let handle = self.handles.remove(index);
        handle.stop();
        true
    }

    /// Number of NMPs still running.
    pub fn live_nodes(&self) -> usize {
        self.handles.len()
    }

    /// Orderly shutdown: notifies every NMP, then stops and joins them.
    pub fn shutdown(mut self) {
        self.host.shutdown_cluster();
        for h in self.handles.drain(..) {
            h.stop();
        }
    }
}

impl std::fmt::Debug for LocalCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocalCluster")
            .field("nodes", &self.handles.len())
            .field("devices", &self.host.devices().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_proto::ids::NodeId;
    use haocl_proto::messages::{ApiCall, ApiReply, DeviceKind};

    #[test]
    fn launch_maps_every_device_in_order() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::hetero_cluster(2, 1), KernelRegistry::new())
                .unwrap();
        let devices = cluster.host().devices();
        assert_eq!(devices.len(), 3);
        assert_eq!(devices[0].descriptor.kind, DeviceKind::Gpu);
        assert_eq!(devices[1].descriptor.kind, DeviceKind::Gpu);
        assert_eq!(devices[2].descriptor.kind, DeviceKind::Fpga);
        assert_eq!(devices[2].node, NodeId::new(2));
        cluster.shutdown();
    }

    #[test]
    fn ping_every_node() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(3), KernelRegistry::new()).unwrap();
        for i in 0..3 {
            let outcome = cluster.host().call(NodeId::new(i), ApiCall::Ping).unwrap();
            assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
        }
        cluster.shutdown();
    }

    #[test]
    fn drop_without_shutdown_is_clean() {
        let cluster =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        drop(cluster); // NmpHandle::drop must stop threads without hanging.
    }

    #[test]
    fn two_clusters_can_coexist() {
        // Separate fabrics: identical addresses do not clash.
        let a =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        let b =
            LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
        assert_eq!(a.host().devices().len(), 1);
        assert_eq!(b.host().devices().len(), 1);
        a.shutdown();
        b.shutdown();
    }
}
