//! The Node Management Process (paper §III-D).
//!
//! "The daemon process runs on each device (accelerator) node for the
//! actual execution of OpenCL API calls." Each NMP binds a *message*
//! listener and a *data* listener (§III-C), accepts connections
//! asynchronously, and for each incoming package unpacks it, executes it
//! against the node's simulated devices and replies.
//!
//! FPGA devices refuse online source builds; their kernels come from the
//! node's bitstream [`KernelRegistry`] via
//! [`haocl_proto::messages::ApiCall::LoadBitstream`].
//!
//! # Peer data-plane transfers
//!
//! [`ApiCall::PushBufferTo`] / [`ApiCall::PullBufferFrom`] move buffer
//! contents *directly* between two NMPs: the host still packages and
//! delivers the command (preserving §III-A's single-host architecture),
//! but the bulk bytes take one node→node hop instead of relaying through
//! the host's shadow copy. The executing NMP dials the peer's data
//! listener itself, releasing its state lock around the network hop so a
//! co-located peer (or the node itself, over loopback) can serve the
//! inner request.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;

use haocl_device::device::DeviceError;
use haocl_device::memory::MemoryError;
use haocl_device::{presets, FusedPart, SimDevice};
use haocl_kernel::{CostModel, Kernel, KernelRegistry, NdRange};
use haocl_net::{host_name_of, Conn, Fabric, Listener, NetError};
use haocl_obs::SpanId;
use haocl_proto::ids::{KernelId, ProgramId, RequestId, UserId};
use haocl_proto::messages::{
    status, ApiCall, ApiReply, Envelope, Request, Response, WireAccessPattern, WireArgEffect,
    WireKernelReport, WireSpan,
};
#[cfg(test)]
use haocl_proto::wire::encode_to_vec;
use haocl_proto::wire::{decode_from_slice, encode_into_vec};
use haocl_sim::SimTime;

use crate::config::NodeSpec;
use crate::error::ClusterError;

/// How often blocking loops check the stop flag.
const POLL: Duration = Duration::from_millis(20);

/// How many completed state-mutating requests the at-most-once journal
/// remembers. The host retries a request only while it is pending, so
/// the journal needs to outlive the host's in-flight window — 1024 is
/// orders of magnitude deeper than the backbone ever pipelines.
const JOURNAL_CAP: usize = 1024;

/// Wall-clock patience for the peer's answer during an NMP→NMP transfer.
/// On expiry the transfer fails with an error reply and the host falls
/// back to relaying the bytes through its own shadow, so this bounds how
/// long a serve thread can stall on an unresponsive peer. It must stay
/// *shorter* than the host's recovery escalation window (base timeout
/// through `max_attempts` retransmissions): a stalled peer hop blocks
/// this node's serve thread, and if the block outlives the host's
/// patience the host concludes the node itself died and fails it over —
/// turning one dropped peer frame into a spurious cluster reroute. The
/// fabric moves frames instantly in real time (only *virtual* time is
/// charged), so a healthy hop answers in microseconds and this margin is
/// pure fault headroom.
const PEER_PATIENCE: Duration = Duration::from_millis(100);

enum ProgramEntry {
    /// Source-compiled program (CPU/GPU path).
    Built(haocl_kernel::CompiledProgram),
    /// Pre-built bitstream kernel names (FPGA path).
    Bitstream(Vec<String>),
}

struct NodeState {
    devices: Vec<SimDevice>,
    programs: HashMap<(ProgramId, u8), ProgramEntry>,
    kernels: HashMap<KernelId, (u8, Kernel)>,
    registry: KernelRegistry,
    launches_by_user: HashMap<UserId, u64>,
    /// Set by [`ApiCall::BeginDrain`]: the node refuses fresh kernel
    /// launches so live migration can converge, while buffer traffic
    /// and already-queued work keep completing.
    draining: bool,
    /// At-most-once journal: completed responses to state-mutating
    /// requests, keyed by correlation token. A retried or duplicated
    /// request whose id is here is answered from the journal instead of
    /// re-executing — a kernel never runs twice, a write never applies
    /// twice.
    journal: HashMap<RequestId, Response>,
    /// Journal insertion order, for FIFO eviction at [`JOURNAL_CAP`].
    journal_order: VecDeque<RequestId>,
}

/// What a serve thread needs to execute peer data-plane transfers: a
/// fabric handle to dial the peer's data listener, and this node's host
/// name so outbound frames serialize on its own NIC — and take the free
/// loopback path when the peer is co-located.
struct PeerCtx {
    fabric: Fabric,
    host_name: String,
}

impl NodeState {
    fn journal_record(&mut self, response: &Response) {
        if self.journal.insert(response.id, response.clone()).is_none() {
            self.journal_order.push_back(response.id);
            while self.journal_order.len() > JOURNAL_CAP {
                if let Some(evicted) = self.journal_order.pop_front() {
                    self.journal.remove(&evicted);
                }
            }
        }
    }
}

/// A running NMP: its listener threads and stop control.
///
/// Dropping the handle stops the daemon and joins its threads.
pub struct NmpHandle {
    name: String,
    addr: String,
    stop: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl NmpHandle {
    /// Spawns the NMP for `spec` on `fabric`, with `registry` as its
    /// bitstream store.
    ///
    /// Binds the message listener at `spec.addr` and the data listener at
    /// `spec.data_addr()`, then serves until stopped.
    ///
    /// # Errors
    ///
    /// [`ClusterError::Net`] if either address is already bound.
    pub fn spawn(
        fabric: &Fabric,
        spec: &NodeSpec,
        registry: KernelRegistry,
    ) -> Result<Self, ClusterError> {
        let devices = spec
            .devices
            .iter()
            .map(|k| SimDevice::new(presets::by_kind(*k)))
            .collect();
        let state = Arc::new(Mutex::new(NodeState {
            devices,
            programs: HashMap::new(),
            kernels: HashMap::new(),
            registry,
            launches_by_user: HashMap::new(),
            draining: false,
            journal: HashMap::new(),
            journal_order: VecDeque::new(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let peer = Arc::new(PeerCtx {
            fabric: fabric.clone(),
            host_name: host_name_of(&spec.addr),
        });
        let msg_listener = fabric.bind(&spec.addr)?;
        let data_listener = fabric.bind(&spec.data_addr())?;
        let threads = vec![
            spawn_accept_loop(
                msg_listener,
                Arc::clone(&state),
                Arc::clone(&stop),
                Arc::clone(&peer),
            ),
            spawn_accept_loop(
                data_listener,
                Arc::clone(&state),
                Arc::clone(&stop),
                Arc::clone(&peer),
            ),
        ];
        Ok(NmpHandle {
            name: spec.name.clone(),
            addr: spec.addr.clone(),
            stop,
            threads,
        })
    }

    /// The node's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The message-listener address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Stops the daemon and joins its threads.
    pub fn stop(mut self) {
        self.stop_inner();
    }

    fn stop_inner(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NmpHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

impl std::fmt::Debug for NmpHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "NmpHandle({} @ {})", self.name, self.addr)
    }
}

fn spawn_accept_loop(
    listener: Listener,
    state: Arc<Mutex<NodeState>>,
    stop: Arc<AtomicBool>,
    peer: Arc<PeerCtx>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Serve threads are tracked so the accept loop can join them on
        // shutdown (the paper's per-message thread model, §III-C).
        let mut serving: Vec<JoinHandle<()>> = Vec::new();
        while !stop.load(Ordering::SeqCst) {
            match listener.accept_timeout(POLL) {
                Ok(conn) => {
                    let state = Arc::clone(&state);
                    let stop = Arc::clone(&stop);
                    let peer = Arc::clone(&peer);
                    serving.push(std::thread::spawn(move || serve(conn, state, stop, peer)));
                }
                Err(NetError::Timeout) => continue,
                Err(_) => break,
            }
        }
        for t in serving {
            let _ = t.join();
        }
    })
}

fn serve(mut conn: Conn, state: Arc<Mutex<NodeState>>, stop: Arc<AtomicBool>, peer: Arc<PeerCtx>) {
    'serve: while !stop.load(Ordering::SeqCst) {
        let (frame, arrival) = match conn.recv_frame_timeout(POLL) {
            Ok(x) => x,
            Err(NetError::Timeout) => continue,
            // The deadline expired with a frame partially assembled: the
            // bytes stay buffered in the receiver, so keep polling — the
            // remaining chunks resynchronize the stream.
            Err(NetError::TimeoutMidFrame { .. }) => continue,
            Err(_) => break,
        };
        // The host may coalesce several control messages into one
        // envelope; each request still gets its own response frame so
        // the host can complete them individually (and out of order).
        let envelope: Envelope = match decode_from_slice(&frame) {
            Ok(e) => e,
            // A malformed package: drop the connection, as a real daemon
            // would after a framing-level protocol violation.
            Err(_) => break,
        };
        for request in envelope.into_requests() {
            let is_shutdown = matches!(request.body, ApiCall::Shutdown);
            let response = handle(&state, request, arrival, &peer);
            let send_at = response.completed_at_nanos;
            // Modeled data replies stand in for bulk payloads: charge the
            // return link as if the bytes were on it.
            let virtual_len = match &response.body {
                ApiReply::DataModeled { len } => *len,
                _ => 0,
            };
            if conn
                .send_frame_with(SimTime::from_nanos(send_at), virtual_len, |buf| {
                    encode_into_vec(&response, buf)
                })
                .is_err()
            {
                break 'serve;
            }
            if is_shutdown {
                break 'serve;
            }
        }
    }
}

/// True for calls whose re-execution would mutate node state twice — the
/// ones the at-most-once journal must guard. Pure queries (pings, reads,
/// profile queries) are safe to re-run and skip the journal.
fn mutates_state(call: &ApiCall) -> bool {
    matches!(
        call,
        ApiCall::CreateBuffer { .. }
            | ApiCall::CreateBufferModeled { .. }
            | ApiCall::WriteBuffer { .. }
            | ApiCall::WriteBufferModeled { .. }
            | ApiCall::ReleaseBuffer { .. }
            | ApiCall::CopyBuffer { .. }
            | ApiCall::BuildProgram { .. }
            | ApiCall::LoadBitstream { .. }
            | ApiCall::CreateKernel { .. }
            | ApiCall::LaunchKernel { .. }
            | ApiCall::LaunchFused { .. }
            | ApiCall::PushBufferTo { .. }
            | ApiCall::PullBufferFrom { .. }
    )
}

fn handle(
    state: &Mutex<NodeState>,
    request: Request,
    arrival: SimTime,
    peer: &PeerCtx,
) -> Response {
    if matches!(
        request.body,
        ApiCall::PushBufferTo { .. } | ApiCall::PullBufferFrom { .. }
    ) {
        return handle_peer_transfer(state, request, arrival, peer);
    }
    let mut state = state.lock();
    // At-most-once: a retransmitted (or chaos-duplicated) mutating request
    // is answered from the journal — the kernel does not run again, the
    // write does not apply again. The cached response is re-sent verbatim,
    // flagged so the host can count the dedup.
    let journaled = mutates_state(&request.body);
    if journaled {
        if let Some(cached) = state.journal.get(&request.id) {
            let mut response = cached.clone();
            response.duplicate = true;
            return response;
        }
    }
    let user = request.user;
    let traced = request.traced();
    // Wall clock is legal here: it never feeds virtual-time accounting,
    // only the `wall_nanos` observability field on shipped spans.
    let wall_start = std::time::Instant::now();
    let (body, completed) = dispatch(&mut state, user, request.body, arrival);
    let wall_nanos = wall_start.elapsed().as_nanos() as u64;
    // For traced requests the node ships its side of the span tree back in
    // the response: a dispatch span covering the NMP's handling, plus —
    // for kernel launches — the VM run interval the reply already carries.
    // Span ids are derived from the correlation token (host-side ids never
    // set the high bit), so no cross-network id coordination is needed.
    let spans = if traced {
        let dispatch_id = SpanId::derive(request.id.raw(), 0);
        // Enqueue is non-blocking: the reply leaves at receipt time while
        // the kernel occupies the device until `end_nanos`. The dispatch
        // span stretches to cover the run so the tree nests in time.
        let mut dispatch_end = completed.as_nanos();
        let mut spans = Vec::with_capacity(2);
        if let ApiReply::LaunchDone {
            start_nanos,
            end_nanos,
            ..
        } = &body
        {
            dispatch_end = dispatch_end.max(*end_nanos);
            spans.push(WireSpan {
                id: SpanId::derive(request.id.raw(), 1).0,
                parent: dispatch_id.0,
                name: "vm.run".to_string(),
                category: "Compute".to_string(),
                start_nanos: *start_nanos,
                end_nanos: *end_nanos,
                wall_nanos,
            });
        }
        spans.insert(
            0,
            WireSpan {
                id: dispatch_id.0,
                parent: request.parent_span,
                name: "nmp.dispatch".to_string(),
                category: "Dispatch".to_string(),
                start_nanos: arrival.as_nanos(),
                end_nanos: dispatch_end,
                wall_nanos,
            },
        );
        spans
    } else {
        Vec::new()
    };
    let response = Response {
        id: request.id,
        completed_at_nanos: completed.as_nanos(),
        body,
        duplicate: false,
        spans,
    };
    if journaled {
        state.journal_record(&response);
    }
    response
}

fn err_reply(code: i32, message: impl Into<String>) -> ApiReply {
    ApiReply::Error {
        code,
        message: message.into(),
    }
}

/// Executes a host-commanded NMP→NMP transfer ([`ApiCall::PushBufferTo`]
/// / [`ApiCall::PullBufferFrom`]).
///
/// Unlike [`handle`], the node-state lock is *released* around the
/// network hop: the peer may be co-located — or this very node, dialling
/// its own data listener over loopback on single-node platforms — and
/// its serve thread needs the lock to answer the inner request. The
/// at-most-once journal still brackets the whole operation: the check
/// runs before the local phase, the record after the hop. Duplicates of
/// a given id arrive in order on one connection, so releasing the lock
/// in between cannot let the transfer execute twice.
fn handle_peer_transfer(
    state: &Mutex<NodeState>,
    request: Request,
    arrival: SimTime,
    peer: &PeerCtx,
) -> Response {
    {
        let st = state.lock();
        if let Some(cached) = st.journal.get(&request.id) {
            let mut response = cached.clone();
            response.duplicate = true;
            return response;
        }
    }
    let traced = request.traced();
    let id = request.id;
    let parent_span = request.parent_span;
    let wall_start = std::time::Instant::now();
    let (body, completed) = peer_transfer(state, &request, arrival, peer);
    let wall_nanos = wall_start.elapsed().as_nanos() as u64;
    let spans = if traced {
        let dispatch_id = SpanId::derive(id.raw(), 0);
        vec![
            WireSpan {
                id: dispatch_id.0,
                parent: parent_span,
                name: "nmp.dispatch".to_string(),
                category: "Dispatch".to_string(),
                start_nanos: arrival.as_nanos(),
                end_nanos: completed.as_nanos(),
                wall_nanos,
            },
            WireSpan {
                id: SpanId::derive(id.raw(), 1).0,
                parent: dispatch_id.0,
                name: "fabric.peer_transfer".to_string(),
                category: "DataTransfer".to_string(),
                start_nanos: arrival.as_nanos(),
                end_nanos: completed.as_nanos(),
                wall_nanos,
            },
        ]
    } else {
        Vec::new()
    };
    let response = Response {
        id,
        completed_at_nanos: completed.as_nanos(),
        body,
        duplicate: false,
        spans,
    };
    state.lock().journal_record(&response);
    response
}

/// The bulk hop of a peer transfer: stage locally, ship, land. Returns
/// the outer reply and the virtual time the last byte settled.
fn peer_transfer(
    state: &Mutex<NodeState>,
    request: &Request,
    arrival: SimTime,
    peer: &PeerCtx,
) -> (ApiReply, SimTime) {
    // The inner request reuses the outer correlation token with the high
    // bit set (host-side allocators never produce such ids): a
    // chaos-duplicated inner frame hits the peer's own at-most-once
    // journal instead of applying the write twice.
    let inner_id = RequestId::new(request.id.raw() | (1 << 63));
    match request.body.clone() {
        ApiCall::PushBufferTo {
            device,
            buffer,
            peer_addr,
            peer_device,
            peer_buffer,
            offset,
            len,
            version: _,
            epoch,
            modeled,
        } => {
            // Stage the bytes off the local device, under the lock.
            let (inner_call, virtual_len, local_done) = {
                let mut st = state.lock();
                let dev = match device_mut(&mut st, device) {
                    Ok(d) => d,
                    Err(reply) => return (reply, arrival),
                };
                if modeled {
                    match dev.transfer_modeled(buffer, offset, len, arrival) {
                        Ok(grant) => (
                            ApiCall::WriteBufferModeled {
                                device: peer_device,
                                buffer: peer_buffer,
                                offset,
                                len,
                            },
                            len,
                            grant.end,
                        ),
                        Err(e) => return (device_error_reply(e), arrival),
                    }
                } else {
                    match dev.read_buffer(buffer, offset, len, arrival) {
                        Ok((bytes, grant)) => (
                            ApiCall::WriteBuffer {
                                device: peer_device,
                                buffer: peer_buffer,
                                offset,
                                data: Bytes::from(bytes),
                            },
                            0,
                            grant.end,
                        ),
                        Err(e) => return (device_error_reply(e), arrival),
                    }
                }
            };
            // Ship them with the lock released; the peer's ack carries
            // the arrival time of the last byte.
            match peer_round_trip(
                peer,
                &peer_addr,
                inner_id,
                request.user,
                epoch,
                inner_call,
                virtual_len,
                local_done,
            ) {
                Ok((ApiReply::Ack, at)) => (ApiReply::Ack, at),
                Ok((_, at)) => (unexpected_peer_reply(&peer_addr), at),
                Err(reply) => (reply, local_done),
            }
        }
        ApiCall::PullBufferFrom {
            device,
            buffer,
            peer_addr,
            peer_device,
            peer_buffer,
            offset,
            len,
            version: _,
            epoch,
            modeled,
        } => {
            let inner_call = if modeled {
                ApiCall::ReadBufferModeled {
                    device: peer_device,
                    buffer: peer_buffer,
                    offset,
                    len,
                }
            } else {
                ApiCall::ReadBuffer {
                    device: peer_device,
                    buffer: peer_buffer,
                    offset,
                    len,
                }
            };
            match peer_round_trip(
                peer,
                &peer_addr,
                inner_id,
                request.user,
                epoch,
                inner_call,
                0,
                arrival,
            ) {
                // Land the fetched bytes on the local device.
                Ok((ApiReply::Data { bytes }, at)) if !modeled => {
                    let mut st = state.lock();
                    let dev = match device_mut(&mut st, device) {
                        Ok(d) => d,
                        Err(reply) => return (reply, at),
                    };
                    match dev.write_buffer(buffer, offset, &bytes, at) {
                        Ok(grant) => (ApiReply::Ack, grant.end),
                        Err(e) => (device_error_reply(e), at),
                    }
                }
                Ok((ApiReply::DataModeled { len: got }, at)) if modeled => {
                    let mut st = state.lock();
                    let dev = match device_mut(&mut st, device) {
                        Ok(d) => d,
                        Err(reply) => return (reply, at),
                    };
                    match dev.transfer_modeled(buffer, offset, got, at) {
                        Ok(grant) => (ApiReply::Ack, grant.end),
                        Err(e) => (device_error_reply(e), at),
                    }
                }
                Ok((_, at)) => (unexpected_peer_reply(&peer_addr), at),
                Err(reply) => (reply, arrival),
            }
        }
        _ => unreachable!("peer_transfer only handles peer data-plane calls"),
    }
}

fn unexpected_peer_reply(peer_addr: &str) -> ApiReply {
    err_reply(
        status::INVALID_OPERATION,
        format!("peer {peer_addr} answered the transfer with an unexpected reply"),
    )
}

/// Dials the peer's data listener, delivers one inner request and waits
/// (bounded by [`PEER_PATIENCE`]) for its reply. Transport trouble comes
/// back as `Err(error reply)`: the host treats it as final for this
/// transfer and falls back to relaying the bytes through its shadow.
#[allow(clippy::too_many_arguments)]
fn peer_round_trip(
    peer: &PeerCtx,
    peer_addr: &str,
    id: RequestId,
    user: UserId,
    epoch: u32,
    call: ApiCall,
    virtual_len: u64,
    at: SimTime,
) -> Result<(ApiReply, SimTime), ApiReply> {
    let failed = |what: &str, detail: String| {
        err_reply(
            status::DEVICE_NOT_AVAILABLE,
            format!("peer {peer_addr} {what}: {detail}"),
        )
    };
    let mut conn = peer
        .fabric
        .connect(&peer.host_name, peer_addr)
        .map_err(|e| failed("is unreachable", e.to_string()))?;
    let inner = Request {
        id,
        user,
        sent_at_nanos: at.as_nanos(),
        trace_id: 0,
        parent_span: 0,
        epoch,
        attempt: 0,
        body: call,
    };
    conn.send_frame_with(at, virtual_len, |buf| {
        encode_into_vec(&Envelope::Single(inner), buf)
    })
    .map_err(|e| failed("rejected the transfer", e.to_string()))?;
    let (frame, received_at) = conn
        .recv_frame_timeout(PEER_PATIENCE)
        .map_err(|e| failed("did not answer", e.to_string()))?;
    let response: Response = decode_from_slice(&frame)
        .map_err(|e| failed("sent an undecodable reply", e.to_string()))?;
    match response.body {
        ApiReply::Error { code, message } => Err(err_reply(code, message)),
        reply => Ok((reply, received_at)),
    }
}

/// Flattens each kernel's static-analysis report into its wire form.
fn wire_reports(compiled: &haocl_clc::CompiledProgram) -> Vec<WireKernelReport> {
    compiled
        .kernels()
        .map(|k| WireKernelReport {
            kernel: k.name.clone(),
            errors: k.report.diagnostics.error_count() as u32,
            warnings: k.report.diagnostics.warning_count() as u32,
            local_bytes: k.report.features.local_bytes,
            barrier_count: k.report.features.barrier_count,
            arithmetic_intensity: k.report.features.arithmetic_intensity,
            divergence_score: k.report.features.divergence_score,
            effects: wire_effects(&k.report.effects),
        })
        .collect()
}

/// Flattens a compiler effect summary into its wire form.
fn wire_effects(summary: &haocl_clc::EffectSummary) -> Vec<WireArgEffect> {
    use haocl_clc::{AccessMode, PatternBase};
    summary
        .args
        .iter()
        .map(|a| WireArgEffect {
            mode: match a.mode {
                AccessMode::None => 0,
                AccessMode::Read => 1,
                AccessMode::Write => 2,
                AccessMode::ReadWrite => 3,
            },
            elem_bytes: a.elem_bytes,
            bounded: a.elem_bounds.is_some(),
            lo: a.elem_bounds.map_or(0, |b| b.0),
            hi: a.elem_bounds.map_or(0, |b| b.1),
            complete: a.complete,
            patterns: a
                .patterns
                .iter()
                .map(|p| {
                    let (base_kind, base_id, base_add) = match p.base {
                        PatternBase::Const(k) => (0, 0, k),
                        PatternBase::Geom { id, add } => (1, id, add),
                        PatternBase::Opaque => (2, 0, 0),
                    };
                    WireAccessPattern {
                        write: p.write,
                        provable: p.provable,
                        coeffs: p.coeffs,
                        base_kind,
                        base_id,
                        base_add,
                    }
                })
                .collect(),
        })
        .collect()
}

fn device_error_reply(e: DeviceError) -> ApiReply {
    let code = match &e {
        DeviceError::Memory(MemoryError::OutOfMemory { .. }) => {
            status::MEM_OBJECT_ALLOCATION_FAILURE
        }
        DeviceError::Memory(MemoryError::UnknownBuffer(_)) => status::INVALID_MEM_OBJECT,
        DeviceError::Memory(MemoryError::DuplicateBuffer(_)) => status::INVALID_VALUE,
        DeviceError::Memory(MemoryError::OutOfBounds { .. }) => status::INVALID_VALUE,
        DeviceError::Memory(MemoryError::VirtualBuffer(_)) => status::INVALID_OPERATION,
        DeviceError::Exec(_) => status::INVALID_KERNEL_ARGS,
        DeviceError::NotSupported(_) => status::INVALID_OPERATION,
    };
    err_reply(code, e.to_string())
}

fn dispatch(
    state: &mut NodeState,
    user: UserId,
    call: ApiCall,
    at: SimTime,
) -> (ApiReply, SimTime) {
    match call {
        ApiCall::Hello { client: _ } | ApiCall::ListDevices => {
            let devices = state
                .devices
                .iter()
                .enumerate()
                .map(|(i, d)| d.descriptor(i as u8))
                .collect();
            (ApiReply::NodeInfo { devices }, at)
        }
        ApiCall::Ping => (
            ApiReply::Pong {
                now_nanos: at.as_nanos(),
            },
            at,
        ),
        ApiCall::Shutdown => (ApiReply::Ack, at),
        ApiCall::CreateBufferModeled {
            device,
            buffer,
            size,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.alloc_buffer_modeled(buffer, size) {
                Ok(()) => (ApiReply::Ack, at),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::WriteBufferModeled {
            device,
            buffer,
            offset,
            len,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.transfer_modeled(buffer, offset, len, at) {
                Ok(grant) => (ApiReply::Ack, grant.end),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::ReadBufferModeled {
            device,
            buffer,
            offset,
            len,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.transfer_modeled(buffer, offset, len, at) {
                Ok(grant) => (ApiReply::DataModeled { len }, grant.end),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::QueryProfile => {
            let mut entries = Vec::new();
            for (i, d) in state.devices.iter().enumerate() {
                entries.extend(d.profile_entries(i as u8));
            }
            (ApiReply::Profile { entries }, at)
        }
        // Fault injection: degrade (or restore) a device's compute rate.
        // Idempotent control call — deliberately NOT journaled, and the
        // descriptor keeps advertising full speed, so only observed
        // timings betray the sickness.
        ApiCall::SetThrottle { device, factor } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => {
                dev.set_throttle(factor);
                (ApiReply::Ack, at)
            }
        },
        // Idempotent like SetThrottle: not journaled, safe to re-apply
        // on a retried delivery.
        ApiCall::BeginDrain => {
            state.draining = true;
            (ApiReply::Ack, at)
        }
        ApiCall::CreateBuffer {
            device,
            buffer,
            size,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.alloc_buffer(buffer, size) {
                Ok(()) => (ApiReply::Ack, at),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::ReleaseBuffer { device, buffer } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.free_buffer(buffer) {
                Ok(()) => (ApiReply::Ack, at),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::WriteBuffer {
            device,
            buffer,
            offset,
            data,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.write_buffer(buffer, offset, &data, at) {
                Ok(grant) => (ApiReply::Ack, grant.end),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::ReadBuffer {
            device,
            buffer,
            offset,
            len,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.read_buffer(buffer, offset, len, at) {
                Ok((bytes, grant)) => (
                    ApiReply::Data {
                        bytes: Bytes::from(bytes),
                    },
                    grant.end,
                ),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::CopyBuffer {
            device,
            src,
            dst,
            src_offset,
            dst_offset,
            len,
        } => match device_mut(state, device) {
            Err(reply) => (reply, at),
            Ok(dev) => match dev.copy_buffer(src, dst, src_offset, dst_offset, len, at) {
                Ok(grant) => (ApiReply::Ack, grant.end),
                Err(e) => (device_error_reply(e), at),
            },
        },
        ApiCall::BuildProgram {
            device,
            program,
            source,
        } => {
            let kind = match state.devices.get(device as usize) {
                Some(d) => d.model().kind,
                None => return (err_reply(status::INVALID_DEVICE, "no such device"), at),
            };
            if kind == haocl_proto::messages::DeviceKind::Fpga {
                return (
                    err_reply(
                        status::INVALID_OPERATION,
                        "FPGA devices load pre-built bitstreams (use LoadBitstream)",
                    ),
                    at,
                );
            }
            // Compile in `WarnOnly`: the node is mechanism, the host is
            // policy. Analysis findings travel back as wire reports and
            // `Program::build` decides whether errors fail the build.
            let opts = haocl_clc::CompileOptions {
                analysis: haocl_clc::AnalysisMode::WarnOnly,
            };
            match haocl_clc::compile_with_options(&source, &opts) {
                Ok(compiled) => {
                    let reports = wire_reports(&compiled);
                    let log = compiled
                        .kernels()
                        .map(|k| k.report.diagnostics.render())
                        .filter(|r| !r.is_empty())
                        .collect::<Vec<_>>()
                        .join("\n");
                    state
                        .programs
                        .insert((program, device), ProgramEntry::Built(compiled));
                    (
                        ApiReply::BuildLog {
                            ok: true,
                            log,
                            reports,
                        },
                        at,
                    )
                }
                Err(e) => (
                    ApiReply::BuildLog {
                        ok: false,
                        log: e.build_log(),
                        reports: Vec::new(),
                    },
                    at,
                ),
            }
        }
        ApiCall::LoadBitstream {
            device,
            program,
            kernels,
        } => {
            if state.devices.get(device as usize).is_none() {
                return (err_reply(status::INVALID_DEVICE, "no such device"), at);
            }
            let missing: Vec<&String> = kernels
                .iter()
                .filter(|k| !state.registry.contains(k))
                .collect();
            if !missing.is_empty() {
                return (
                    ApiReply::BuildLog {
                        ok: false,
                        log: format!(
                            "bitstream store is missing kernels: {}",
                            missing
                                .iter()
                                .map(|s| s.as_str())
                                .collect::<Vec<_>>()
                                .join(", ")
                        ),
                        reports: Vec::new(),
                    },
                    at,
                );
            }
            let n = kernels.len();
            state
                .programs
                .insert((program, device), ProgramEntry::Bitstream(kernels));
            let grant = state.devices[device as usize].note_program_loaded(program, at);
            (
                ApiReply::BuildLog {
                    ok: true,
                    log: format!("loaded {n} pre-built kernel(s)"),
                    reports: Vec::new(),
                },
                grant.end,
            )
        }
        ApiCall::CreateKernel {
            device,
            kernel,
            program,
            name,
        } => {
            let Some(entry) = state.programs.get(&(program, device)) else {
                return (
                    err_reply(
                        status::INVALID_PROGRAM,
                        "program is unknown or not built for this device",
                    ),
                    at,
                );
            };
            let resolved = match entry {
                ProgramEntry::Bitstream(names) => {
                    if !names.iter().any(|n| n == &name) {
                        return (
                            err_reply(
                                status::INVALID_KERNEL_NAME,
                                format!("`{name}` is not in the loaded bitstream"),
                            ),
                            at,
                        );
                    }
                    match state.registry.get(&name) {
                        Some(native) => Kernel::Native(native),
                        None => {
                            return (
                                err_reply(
                                    status::INVALID_KERNEL_NAME,
                                    format!("bitstream kernel `{name}` vanished from the store"),
                                ),
                                at,
                            )
                        }
                    }
                }
                ProgramEntry::Built(compiled) => {
                    // Fast path: a registered native implementation with the
                    // same name supersedes VM execution of the source.
                    if let Some(native) = state.registry.get(&name) {
                        Kernel::Native(native)
                    } else {
                        match compiled.kernel(&name) {
                            Some(k) => Kernel::Compiled(Arc::new(k.clone())),
                            None => {
                                return (
                                    err_reply(
                                        status::INVALID_KERNEL_NAME,
                                        format!("no kernel `{name}` in program"),
                                    ),
                                    at,
                                )
                            }
                        }
                    }
                }
            };
            let arity = resolved.arity() as u32;
            state.kernels.insert(kernel, (device, resolved));
            (ApiReply::KernelInfo { arity }, at)
        }
        ApiCall::LaunchKernel {
            device,
            kernel,
            args,
            range,
            cost,
            fidelity,
            shared: _,
        } => {
            if state.draining {
                return (
                    err_reply(status::DEVICE_NOT_AVAILABLE, "node is draining"),
                    at,
                );
            }
            let Some((kernel_device, k)) = state.kernels.get(&kernel).cloned() else {
                return (err_reply(status::INVALID_KERNEL, "unknown kernel"), at);
            };
            if kernel_device != device {
                return (
                    err_reply(
                        status::INVALID_DEVICE,
                        "kernel was created for a different device",
                    ),
                    at,
                );
            }
            let nd = NdRange {
                work_dim: range.work_dim,
                global: range.global,
                local: range.local,
            };
            let cost = cost_from_wire(&cost);
            *state.launches_by_user.entry(user).or_insert(0) += 1;
            let Some(dev) = state.devices.get_mut(device as usize) else {
                return (err_reply(status::INVALID_DEVICE, "no such device"), at);
            };
            match dev.launch(&k, &args, &nd, &cost, fidelity, at) {
                // Enqueue is non-blocking (OpenCL semantics): the reply
                // leaves at receipt time while the kernel occupies the
                // device timeline until `end_nanos`. Later operations on
                // this device queue behind it; the host only waits at
                // `clFinish`/reads.
                Ok(outcome) => (
                    ApiReply::LaunchDone {
                        start_nanos: outcome.grant.start.as_nanos(),
                        end_nanos: outcome.grant.end.as_nanos(),
                        instructions: outcome.instructions,
                    },
                    at,
                ),
                Err(e) => (device_error_reply(e), at),
            }
        }
        ApiCall::LaunchFused {
            device,
            fidelity,
            shared: _,
            parts,
        } => {
            if state.draining {
                return (
                    err_reply(status::DEVICE_NOT_AVAILABLE, "node is draining"),
                    at,
                );
            }
            if parts.len() < 2 {
                return (
                    err_reply(status::INVALID_VALUE, "fused launch needs >= 2 parts"),
                    at,
                );
            }
            // Resolve every constituent before running any: a fused
            // dispatch is one command, so it fails whole on bad handles.
            let mut resolved = Vec::with_capacity(parts.len());
            for part in &parts {
                let Some((kernel_device, k)) = state.kernels.get(&part.kernel).cloned() else {
                    return (err_reply(status::INVALID_KERNEL, "unknown kernel"), at);
                };
                if kernel_device != device {
                    return (
                        err_reply(
                            status::INVALID_DEVICE,
                            "kernel was created for a different device",
                        ),
                        at,
                    );
                }
                resolved.push(k);
            }
            let fused: Vec<FusedPart<'_>> = resolved
                .iter()
                .zip(&parts)
                .map(|(k, part)| FusedPart {
                    kernel: k,
                    args: &part.args,
                    range: NdRange {
                        work_dim: part.range.work_dim,
                        global: part.range.global,
                        local: part.range.local,
                    },
                    cost: cost_from_wire(&part.cost),
                })
                .collect();
            *state.launches_by_user.entry(user).or_insert(0) += 1;
            let Some(dev) = state.devices.get_mut(device as usize) else {
                return (err_reply(status::INVALID_DEVICE, "no such device"), at);
            };
            match dev.launch_fused(&fused, fidelity, at) {
                Ok(outcome) => (
                    ApiReply::LaunchDone {
                        start_nanos: outcome.grant.start.as_nanos(),
                        end_nanos: outcome.grant.end.as_nanos(),
                        instructions: outcome.instructions,
                    },
                    at,
                ),
                Err(e) => (device_error_reply(e), at),
            }
        }
        // Routed to `handle_peer_transfer` before dispatch (they must
        // not run under the state lock); reaching here is a logic error.
        ApiCall::PushBufferTo { .. } | ApiCall::PullBufferFrom { .. } => (
            err_reply(
                status::INVALID_OPERATION,
                "peer transfers are handled outside dispatch",
            ),
            at,
        ),
    }
}

fn device_mut(state: &mut NodeState, device: u8) -> Result<&mut SimDevice, ApiReply> {
    state
        .devices
        .get_mut(device as usize)
        .ok_or_else(|| err_reply(status::INVALID_DEVICE, format!("no device {device}")))
}

fn cost_from_wire(w: &haocl_proto::messages::WireCost) -> CostModel {
    let mut c = CostModel::new()
        .flops(w.flops.max(0.0))
        .bytes_read(w.bytes_read.max(0.0))
        .bytes_written(w.bytes_written.max(0.0));
    if !w.uniform {
        c = c.divergent();
    }
    if w.streaming {
        c = c.streaming();
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ClusterConfig;
    use haocl_net::LinkModel;
    use haocl_proto::ids::{BufferId, RequestId};
    use haocl_proto::messages::{Fidelity, WireArg, WireCost, WireNdRange};
    use haocl_sim::Clock;

    fn call(conn: &mut Conn, user: u32, body: ApiCall) -> (ApiReply, SimTime) {
        static NEXT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(1);
        let id = RequestId::new(NEXT.fetch_add(1, Ordering::Relaxed));
        let req = Request {
            id,
            user: UserId::new(user),
            sent_at_nanos: 0,
            trace_id: 0,
            parent_span: 0,
            epoch: 0,
            attempt: 0,
            body,
        };
        conn.send_frame(&encode_to_vec(&Envelope::Single(req)), SimTime::ZERO)
            .unwrap();
        let (frame, _) = conn.recv_frame().unwrap();
        let resp: Response = decode_from_slice(&frame).unwrap();
        assert_eq!(resp.id, id);
        (resp.body, SimTime::from_nanos(resp.completed_at_nanos))
    }

    fn launch_one_node() -> (Fabric, NmpHandle, Conn) {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let config = ClusterConfig::gpu_cluster(1);
        let handle = NmpHandle::spawn(&fabric, &config.nodes[0], KernelRegistry::new()).unwrap();
        let conn = fabric.connect("10.0.0.1", &config.nodes[0].addr).unwrap();
        (fabric, handle, conn)
    }

    #[test]
    fn hello_reports_devices() {
        let (_f, handle, mut conn) = launch_one_node();
        let (reply, _) = call(&mut conn, 1, ApiCall::Hello { client: "t".into() });
        match reply {
            ApiReply::NodeInfo { devices } => {
                assert_eq!(devices.len(), 1);
                assert_eq!(devices[0].kind, haocl_proto::messages::DeviceKind::Gpu);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn full_kernel_flow_over_the_wire() {
        let (_f, handle, mut conn) = launch_one_node();
        let buf = BufferId::new(1);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: buf,
                size: 16,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let data: Vec<u8> = [1.0f32, 2.0, 3.0, 4.0]
            .iter()
            .flat_map(|v| v.to_le_bytes())
            .collect();
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::WriteBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                data: Bytes::from(data),
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: "__kernel void dbl(__global float* a) { int i = get_global_id(0); a[i] = a[i] * 2.0f; }"
                    .into(),
            },
        );
        assert!(matches!(r, ApiReply::BuildLog { ok: true, .. }));
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateKernel {
                device: 0,
                kernel: KernelId::new(1),
                program: ProgramId::new(1),
                name: "dbl".into(),
            },
        );
        assert_eq!(r, ApiReply::KernelInfo { arity: 1 });
        let (r, t) = call(
            &mut conn,
            1,
            ApiCall::LaunchKernel {
                device: 0,
                kernel: KernelId::new(1),
                args: vec![WireArg::Buffer(buf)],
                range: WireNdRange {
                    work_dim: 1,
                    global: [4, 1, 1],
                    local: [2, 1, 1],
                },
                cost: WireCost {
                    flops: 4.0,
                    bytes_read: 16.0,
                    bytes_written: 16.0,
                    uniform: true,
                    streaming: false,
                },
                fidelity: Fidelity::Full,
                shared: false,
            },
        );
        assert!(matches!(r, ApiReply::LaunchDone { .. }));
        assert!(t > SimTime::ZERO);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::ReadBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                len: 16,
            },
        );
        match r {
            ApiReply::Data { bytes } => {
                let vals: Vec<f32> = bytes
                    .chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
                    .collect();
                assert_eq!(vals, vec![2.0, 4.0, 6.0, 8.0]);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        // Profile now shows the launch.
        let (r, _) = call(&mut conn, 1, ApiCall::QueryProfile);
        match r {
            ApiReply::Profile { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].kernel, "dbl");
                assert_eq!(entries[0].runs, 1);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn build_failure_returns_log() {
        let (_f, handle, mut conn) = launch_one_node();
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: "__kernel void broken( {".into(),
            },
        );
        match r {
            ApiReply::BuildLog { ok, log, reports } => {
                assert!(!ok);
                assert!(log.contains("error"));
                assert!(reports.is_empty());
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn build_reply_carries_kernel_reports() {
        let (_f, handle, mut conn) = launch_one_node();
        // A divergent barrier: the node compiles WarnOnly, so the build
        // succeeds but the report carries the error for host-side policy.
        let src = r#"__kernel void div(__global int* a) {
            __local int tmp[4];
            if (get_local_id(0) == 0) { barrier(CLK_LOCAL_MEM_FENCE); }
            tmp[0] = 1;
            a[get_global_id(0)] = tmp[0];
        }"#;
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: src.into(),
            },
        );
        match r {
            ApiReply::BuildLog { ok, log, reports } => {
                assert!(ok, "WarnOnly build must succeed on the node");
                assert!(log.contains("barrier divergence"), "{log}");
                assert_eq!(reports.len(), 1);
                assert_eq!(reports[0].kernel, "div");
                assert!(reports[0].errors >= 1);
                assert_eq!(reports[0].barrier_count, 1);
                assert_eq!(reports[0].local_bytes, 16);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn fpga_rejects_source_build_but_loads_bitstreams() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let config = ClusterConfig::fpga_cluster(1);
        let registry = KernelRegistry::new();
        registry.register(Arc::new(NopKernel));
        let handle = NmpHandle::spawn(&fabric, &config.nodes[0], registry).unwrap();
        let mut conn = fabric.connect("10.0.0.1", &config.nodes[0].addr).unwrap();
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: "__kernel void f() {}".into(),
            },
        );
        assert!(matches!(r, ApiReply::Error { code, .. } if code == status::INVALID_OPERATION));
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::LoadBitstream {
                device: 0,
                program: ProgramId::new(2),
                kernels: vec!["nop".into()],
            },
        );
        assert!(matches!(r, ApiReply::BuildLog { ok: true, .. }));
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::LoadBitstream {
                device: 0,
                program: ProgramId::new(3),
                kernels: vec!["missing".into()],
            },
        );
        assert!(matches!(r, ApiReply::BuildLog { ok: false, .. }));
        handle.stop();
    }

    struct NopKernel;

    impl haocl_kernel::NativeKernel for NopKernel {
        fn name(&self) -> &str {
            "nop"
        }

        fn arity(&self) -> usize {
            0
        }

        fn execute(
            &self,
            _args: &[haocl_kernel::ArgValue],
            _buffers: &mut [haocl_kernel::GlobalBuffer],
            _range: &NdRange,
        ) -> Result<haocl_kernel::ExecStats, haocl_kernel::ExecError> {
            Ok(haocl_kernel::ExecStats::default())
        }
    }

    #[test]
    fn unknown_objects_yield_opencl_codes() {
        let (_f, handle, mut conn) = launch_one_node();
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::ReleaseBuffer {
                device: 0,
                buffer: BufferId::new(42),
            },
        );
        assert!(matches!(r, ApiReply::Error { code, .. } if code == status::INVALID_MEM_OBJECT));
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateKernel {
                device: 0,
                kernel: KernelId::new(1),
                program: ProgramId::new(9),
                name: "f".into(),
            },
        );
        assert!(matches!(r, ApiReply::Error { code, .. } if code == status::INVALID_PROGRAM));
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateBuffer {
                device: 7,
                buffer: BufferId::new(1),
                size: 4,
            },
        );
        assert!(matches!(r, ApiReply::Error { code, .. } if code == status::INVALID_DEVICE));
        handle.stop();
    }

    #[test]
    fn batched_envelope_yields_per_request_responses() {
        let (_f, handle, mut conn) = launch_one_node();
        let requests: Vec<Request> = (0..3)
            .map(|i| Request {
                id: RequestId::new(100 + i),
                user: UserId::new(1),
                sent_at_nanos: 0,
                trace_id: 0,
                parent_span: 0,
                epoch: 0,
                attempt: 0,
                body: ApiCall::Ping,
            })
            .collect();
        conn.send_frame(&encode_to_vec(&Envelope::Batch(requests)), SimTime::ZERO)
            .unwrap();
        let mut ids = Vec::new();
        for _ in 0..3 {
            let (frame, _) = conn.recv_frame().unwrap();
            let resp: Response = decode_from_slice(&frame).unwrap();
            assert!(matches!(resp.body, ApiReply::Pong { .. }));
            ids.push(resp.id.raw());
        }
        assert_eq!(ids, vec![100, 101, 102], "one response per batched request");
        handle.stop();
    }

    #[test]
    fn shutdown_message_closes_connection() {
        let (_f, handle, mut conn) = launch_one_node();
        let (r, _) = call(&mut conn, 1, ApiCall::Shutdown);
        assert_eq!(r, ApiReply::Ack);
        handle.stop();
    }

    #[test]
    fn two_connections_share_node_state() {
        let (f, handle, mut conn1) = launch_one_node();
        let mut conn2 = f.connect("10.0.0.9", handle.addr()).unwrap();
        let (r, _) = call(
            &mut conn1,
            1,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: BufferId::new(5),
                size: 64,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        // Second user sees the same buffer (duplicate creation fails).
        let (r, _) = call(
            &mut conn2,
            2,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: BufferId::new(5),
                size: 64,
            },
        );
        assert!(matches!(r, ApiReply::Error { code, .. } if code == status::INVALID_VALUE));
        handle.stop();
    }

    /// Sends a request with an explicit correlation id and attempt number,
    /// returning the whole response (the dedup tests inspect `duplicate`).
    fn call_raw(conn: &mut Conn, id: u64, attempt: u32, body: ApiCall) -> Response {
        let req = Request {
            id: RequestId::new(id),
            user: UserId::new(1),
            sent_at_nanos: 0,
            trace_id: 0,
            parent_span: 0,
            epoch: 0,
            attempt,
            body,
        };
        conn.send_frame(&encode_to_vec(&Envelope::Single(req)), SimTime::ZERO)
            .unwrap();
        let (frame, _) = conn.recv_frame().unwrap();
        decode_from_slice(&frame).unwrap()
    }

    #[test]
    fn retried_mutations_are_answered_from_the_journal() {
        let (_f, handle, mut conn) = launch_one_node();
        let create = ApiCall::CreateBuffer {
            device: 0,
            buffer: BufferId::new(1),
            size: 16,
        };
        let first = call_raw(&mut conn, 9000, 0, create.clone());
        assert_eq!(first.body, ApiReply::Ack);
        assert!(!first.duplicate);
        // A retransmission of the same request id must NOT re-execute:
        // re-running CreateBuffer would fail with INVALID_VALUE, but the
        // journal replays the original Ack and flags the dedup.
        let retry = call_raw(&mut conn, 9000, 1, create);
        assert_eq!(retry.body, ApiReply::Ack);
        assert!(retry.duplicate, "second delivery served from journal");
        assert_eq!(retry.completed_at_nanos, first.completed_at_nanos);
        handle.stop();
    }

    #[test]
    fn duplicated_launch_runs_the_kernel_exactly_once() {
        let (_f, handle, mut conn) = launch_one_node();
        let r = call_raw(
            &mut conn,
            9100,
            0,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(1),
                source: "__kernel void tick(__global float* a) { a[get_global_id(0)] += 1.0f; }"
                    .into(),
            },
        );
        assert!(matches!(r.body, ApiReply::BuildLog { ok: true, .. }));
        let r = call_raw(
            &mut conn,
            9101,
            0,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: BufferId::new(1),
                size: 16,
            },
        );
        assert_eq!(r.body, ApiReply::Ack);
        let r = call_raw(
            &mut conn,
            9102,
            0,
            ApiCall::CreateKernel {
                device: 0,
                kernel: KernelId::new(1),
                program: ProgramId::new(1),
                name: "tick".into(),
            },
        );
        assert_eq!(r.body, ApiReply::KernelInfo { arity: 1 });
        let launch = ApiCall::LaunchKernel {
            device: 0,
            kernel: KernelId::new(1),
            args: vec![WireArg::Buffer(BufferId::new(1))],
            range: WireNdRange {
                work_dim: 1,
                global: [4, 1, 1],
                local: [1, 1, 1],
            },
            cost: WireCost {
                flops: 4.0,
                bytes_read: 16.0,
                bytes_written: 16.0,
                uniform: true,
                streaming: false,
            },
            fidelity: Fidelity::Full,
            shared: false,
        };
        let first = call_raw(&mut conn, 9103, 0, launch.clone());
        assert!(matches!(first.body, ApiReply::LaunchDone { .. }));
        assert!(!first.duplicate);
        let retry = call_raw(&mut conn, 9103, 1, launch);
        assert!(retry.duplicate, "retried launch served from journal");
        assert_eq!(retry.body, first.body, "cached reply is replayed verbatim");
        // The profile is the ground truth: exactly one execution happened.
        let r = call_raw(&mut conn, 9104, 0, ApiCall::QueryProfile);
        match r.body {
            ApiReply::Profile { entries } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].kernel, "tick");
                assert_eq!(entries[0].runs, 1, "journal prevented a double run");
            }
            other => panic!("unexpected reply {other:?}"),
        }
        handle.stop();
    }

    #[test]
    fn journal_evicts_oldest_entries_beyond_cap() {
        let devices = Vec::new();
        let mut state = NodeState {
            devices,
            programs: HashMap::new(),
            kernels: HashMap::new(),
            registry: KernelRegistry::new(),
            launches_by_user: HashMap::new(),
            draining: false,
            journal: HashMap::new(),
            journal_order: VecDeque::new(),
        };
        for i in 0..(JOURNAL_CAP as u64 + 10) {
            state.journal_record(&Response {
                id: RequestId::new(i + 1),
                completed_at_nanos: 0,
                body: ApiReply::Ack,
                duplicate: false,
                spans: Vec::new(),
            });
        }
        assert_eq!(state.journal.len(), JOURNAL_CAP);
        assert_eq!(state.journal_order.len(), JOURNAL_CAP);
        assert!(
            !state.journal.contains_key(&RequestId::new(1)),
            "oldest evicted"
        );
        assert!(state
            .journal
            .contains_key(&RequestId::new(JOURNAL_CAP as u64 + 10)));
    }

    #[test]
    fn push_buffer_ships_bytes_directly_to_the_peer() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let config = ClusterConfig::gpu_cluster(2);
        let h0 = NmpHandle::spawn(&fabric, &config.nodes[0], KernelRegistry::new()).unwrap();
        let h1 = NmpHandle::spawn(&fabric, &config.nodes[1], KernelRegistry::new()).unwrap();
        let mut c0 = fabric.connect("10.0.0.1", &config.nodes[0].addr).unwrap();
        let mut c1 = fabric.connect("10.0.0.1", &config.nodes[1].addr).unwrap();
        let buf = BufferId::new(1);
        for conn in [&mut c0, &mut c1] {
            let (r, _) = call(
                conn,
                1,
                ApiCall::CreateBuffer {
                    device: 0,
                    buffer: buf,
                    size: 4,
                },
            );
            assert_eq!(r, ApiReply::Ack);
        }
        let (r, _) = call(
            &mut c0,
            1,
            ApiCall::WriteBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                data: Bytes::from(vec![11u8, 22, 33, 44]),
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let before = fabric.stats();
        let (r, t) = call(
            &mut c0,
            1,
            ApiCall::PushBufferTo {
                device: 0,
                buffer: buf,
                peer_addr: config.nodes[1].data_addr(),
                peer_device: 0,
                peer_buffer: buf,
                offset: 0,
                len: 4,
                version: 1,
                epoch: 0,
                modeled: false,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        assert!(t > SimTime::ZERO, "the hop costs virtual time");
        assert!(
            fabric.stats().frames > before.frames,
            "bytes crossed a real node-to-node link"
        );
        let (r, _) = call(
            &mut c1,
            1,
            ApiCall::ReadBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                len: 4,
            },
        );
        match r {
            ApiReply::Data { bytes } => assert_eq!(bytes.as_ref(), &[11u8, 22, 33, 44]),
            other => panic!("unexpected reply {other:?}"),
        }
        h0.stop();
        h1.stop();
    }

    #[test]
    fn pull_buffer_fetches_modeled_bytes_from_the_peer() {
        let fabric = Fabric::new(Clock::new(), LinkModel::gigabit_ethernet());
        let config = ClusterConfig::gpu_cluster(2);
        let h0 = NmpHandle::spawn(&fabric, &config.nodes[0], KernelRegistry::new()).unwrap();
        let h1 = NmpHandle::spawn(&fabric, &config.nodes[1], KernelRegistry::new()).unwrap();
        let mut c0 = fabric.connect("10.0.0.1", &config.nodes[0].addr).unwrap();
        let mut c1 = fabric.connect("10.0.0.1", &config.nodes[1].addr).unwrap();
        let buf = BufferId::new(1);
        for conn in [&mut c0, &mut c1] {
            let (r, _) = call(
                conn,
                1,
                ApiCall::CreateBufferModeled {
                    device: 0,
                    buffer: buf,
                    size: 1 << 20,
                },
            );
            assert_eq!(r, ApiReply::Ack);
        }
        // Node 0 pulls a megabyte from node 1; the descriptor frame is
        // tiny but the return hop is charged at full virtual size.
        let (r, t) = call(
            &mut c0,
            1,
            ApiCall::PullBufferFrom {
                device: 0,
                buffer: buf,
                peer_addr: config.nodes[1].data_addr(),
                peer_device: 0,
                peer_buffer: buf,
                offset: 0,
                len: 1 << 20,
                version: 3,
                epoch: 0,
                modeled: true,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let floor = LinkModel::gigabit_ethernet().transmit_time(1 << 20);
        assert!(
            t >= SimTime::ZERO + floor,
            "modeled pull charged below the link floor: {t}"
        );
        h0.stop();
        h1.stop();
    }

    #[test]
    fn self_dial_peer_transfer_completes_over_loopback() {
        // Single-node platforms push between co-located devices by
        // dialling their own data listener: the serve thread must release
        // the node-state lock around the hop or this deadlocks.
        let (_f, handle, mut conn) = launch_one_node();
        let buf = BufferId::new(1);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: buf,
                size: 4,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::WriteBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                data: Bytes::from(vec![9u8, 9, 9, 9]),
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let data_addr = ClusterConfig::gpu_cluster(1).nodes[0].data_addr();
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::PushBufferTo {
                device: 0,
                buffer: buf,
                peer_addr: data_addr,
                peer_device: 0,
                peer_buffer: buf,
                offset: 0,
                len: 4,
                version: 1,
                epoch: 0,
                modeled: false,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        handle.stop();
    }

    #[test]
    fn unreachable_peer_fails_the_transfer_cleanly() {
        let (_f, handle, mut conn) = launch_one_node();
        let buf = BufferId::new(1);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: buf,
                size: 4,
            },
        );
        assert_eq!(r, ApiReply::Ack);
        let (r, _) = call(
            &mut conn,
            1,
            ApiCall::PushBufferTo {
                device: 0,
                buffer: buf,
                peer_addr: "10.9.9.9:7101".to_string(),
                peer_device: 0,
                peer_buffer: buf,
                offset: 0,
                len: 4,
                version: 1,
                epoch: 0,
                modeled: false,
            },
        );
        assert!(
            matches!(r, ApiReply::Error { code, .. } if code == status::DEVICE_NOT_AVAILABLE),
            "unexpected reply {r:?}"
        );
        // The node survives the failed transfer and keeps serving.
        let (r, _) = call(&mut conn, 1, ApiCall::Ping);
        assert!(matches!(r, ApiReply::Pong { .. }));
        handle.stop();
    }
}
