//! Multi-user session bookkeeping.
//!
//! The paper motivates HaoCL with "large-scale cloud systems that need to
//! serve massive requests from many users simultaneously" (§I) and has
//! the NMP receive commands "along with additional information such as
//! user ID, device ID, shared flag" (§III-D). [`SessionManager`]
//! allocates user ids on the host and tracks per-session activity.

use std::collections::HashMap;

use parking_lot::Mutex;

use haocl_proto::ids::{IdAllocator, UserId};

/// Statistics for one session.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// API calls issued.
    pub calls: u64,
    /// Kernel launches issued.
    pub launches: u64,
    /// Submissions shed by admission control.
    pub shed: u64,
    /// Virtual compute nanoseconds consumed by completed launches.
    pub compute_nanos: u64,
}

#[derive(Debug)]
struct SessionInfo {
    name: String,
    stats: SessionStats,
}

/// Allocates user ids and tracks per-session activity on the host.
///
/// # Examples
///
/// ```
/// use haocl_cluster::SessionManager;
///
/// let sessions = SessionManager::new();
/// let alice = sessions.open("alice");
/// let bob = sessions.open("bob");
/// assert_ne!(alice, bob);
/// sessions.note_launch(alice);
/// assert_eq!(sessions.stats(alice).unwrap().launches, 1);
/// ```
#[derive(Debug, Default)]
pub struct SessionManager {
    ids: IdAllocator,
    sessions: Mutex<HashMap<UserId, SessionInfo>>,
}

impl SessionManager {
    /// Creates an empty manager.
    pub fn new() -> Self {
        SessionManager::default()
    }

    /// Opens a session for a named user, returning its id.
    pub fn open(&self, name: impl Into<String>) -> UserId {
        let user = UserId::new(self.ids.next() as u32);
        self.sessions.lock().insert(
            user,
            SessionInfo {
                name: name.into(),
                stats: SessionStats::default(),
            },
        );
        user
    }

    /// Closes a session, returning its final stats.
    pub fn close(&self, user: UserId) -> Option<SessionStats> {
        self.sessions.lock().remove(&user).map(|s| s.stats)
    }

    /// Records one forwarded API call for `user`.
    pub fn note_call(&self, user: UserId) {
        if let Some(s) = self.sessions.lock().get_mut(&user) {
            s.stats.calls += 1;
        }
    }

    /// Records one kernel launch for `user`.
    pub fn note_launch(&self, user: UserId) {
        if let Some(s) = self.sessions.lock().get_mut(&user) {
            s.stats.calls += 1;
            s.stats.launches += 1;
        }
    }

    /// Records one submission shed by admission control for `user`.
    pub fn note_shed(&self, user: UserId) {
        if let Some(s) = self.sessions.lock().get_mut(&user) {
            s.stats.shed += 1;
        }
    }

    /// Records virtual compute time consumed by a completed launch.
    pub fn note_compute(&self, user: UserId, nanos: u64) {
        if let Some(s) = self.sessions.lock().get_mut(&user) {
            s.stats.compute_nanos += nanos;
        }
    }

    /// The stats of an open session.
    pub fn stats(&self, user: UserId) -> Option<SessionStats> {
        self.sessions.lock().get(&user).map(|s| s.stats)
    }

    /// The display name of an open session.
    pub fn name(&self, user: UserId) -> Option<String> {
        self.sessions.lock().get(&user).map(|s| s.name.clone())
    }

    /// Number of open sessions.
    pub fn len(&self) -> usize {
        self.sessions.lock().len()
    }

    /// Whether no sessions are open.
    pub fn is_empty(&self) -> bool {
        self.sessions.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_are_distinct_and_tracked() {
        let m = SessionManager::new();
        let a = m.open("a");
        let b = m.open("b");
        assert_ne!(a, b);
        assert_eq!(m.len(), 2);
        assert_eq!(m.name(a).unwrap(), "a");
        m.note_call(a);
        m.note_launch(a);
        m.note_shed(a);
        m.note_compute(a, 1500);
        assert_eq!(
            m.stats(a).unwrap(),
            SessionStats {
                calls: 2,
                launches: 1,
                shed: 1,
                compute_nanos: 1500
            }
        );
        assert_eq!(m.stats(b).unwrap(), SessionStats::default());
    }

    #[test]
    fn close_returns_final_stats() {
        let m = SessionManager::new();
        let a = m.open("a");
        m.note_launch(a);
        let stats = m.close(a).unwrap();
        assert_eq!(stats.launches, 1);
        assert!(m.stats(a).is_none());
        assert!(m.close(a).is_none());
        assert!(m.is_empty());
    }

    #[test]
    fn notes_on_closed_sessions_are_ignored() {
        let m = SessionManager::new();
        let a = m.open("a");
        m.close(a);
        m.note_call(a); // must not panic or resurrect
        assert!(m.stats(a).is_none());
    }
}
