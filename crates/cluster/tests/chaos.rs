//! Deterministic fault-injection harness (the chaos suite).
//!
//! Every test here runs real cluster traffic through a seeded
//! [`ChaosPolicy`] and asserts the recovery invariants end to end:
//!
//! * a fixed seed produces the *same* fault schedule, run after run;
//! * whatever the schedule does to the wire — drops, delays,
//!   duplication, reordering, NMP crashes — the bytes that come back
//!   are **bit-identical** to a fault-free run;
//! * retransmission never double-executes a kernel (the NMP's
//!   at-most-once journal absorbs duplicates);
//! * the five paper workloads verify under crash and lossy schedules;
//! * retries, failovers, dedup hits and quarantines all surface in the
//!   shared metrics registry and the scheduler audit log.

use std::time::Duration;

use bytes::Bytes;
use haocl_cluster::{ClusterConfig, LocalCluster, RecoveryPolicy};
use haocl_kernel::KernelRegistry;
use haocl_net::{ChaosPolicy, ChaosSpec};
use haocl_proto::ids::{BufferId, KernelId, NodeId, ProgramId};
use haocl_proto::messages::{ApiCall, ApiReply, Fidelity, WireArg, WireCost, WireNdRange};

/// The kernel every scripted pipeline iterates: `a[i] = a[i]*2 + i` is
/// exact in binary floating point, so outputs are bitwise-deterministic.
const TICK_SRC: &str =
    "__kernel void tick(__global float* a) { int i = get_global_id(0); a[i] = a[i] * 2.0f + (float)i; }";

fn recovery(base_timeout: Duration, failover: bool) -> RecoveryPolicy {
    RecoveryPolicy {
        base_timeout,
        max_attempts: 4,
        failover,
    }
}

fn node_hosts(config: &ClusterConfig) -> Vec<String> {
    config
        .nodes
        .iter()
        .map(|s| s.addr.split(':').next().unwrap_or(&s.addr).to_string())
        .collect()
}

fn policy_for(config: &ClusterConfig, seed: u64, spec: &str) -> ChaosPolicy {
    let spec = ChaosSpec::parse(spec)
        .unwrap()
        .resolve_wildcards(&node_hosts(config), seed);
    ChaosPolicy::new(seed, spec)
}

/// Drives a fixed two-node pipeline — create/write/build/create-kernel,
/// three launch rounds, read back — and returns each node's final buffer
/// bytes plus the observed fault schedule. With `chaos`, the policy is
/// installed after the handshake and recovery enabled with
/// `base_timeout` patience.
fn scripted_run(chaos: Option<(u64, &str)>, base_timeout: Duration) -> (Vec<Vec<u8>>, Vec<String>) {
    let config = ClusterConfig::gpu_cluster(2);
    let cluster = LocalCluster::launch(&config, KernelRegistry::new()).unwrap();
    if let Some((seed, spec)) = chaos {
        cluster.install_chaos(policy_for(&config, seed, spec));
        cluster
            .host()
            .set_recovery(Some(recovery(base_timeout, true)));
    }
    let host = cluster.host();
    for n in 0..2u64 {
        let node = NodeId::new(n as u32);
        let buf = BufferId::new(n + 1);
        host.call(
            node,
            ApiCall::CreateBuffer {
                device: 0,
                buffer: buf,
                size: 32,
            },
        )
        .unwrap();
        let init: Vec<u8> = (0..8)
            .flat_map(|i| (n as f32 + i as f32 * 0.5).to_le_bytes())
            .collect();
        host.call(
            node,
            ApiCall::WriteBuffer {
                device: 0,
                buffer: buf,
                offset: 0,
                data: Bytes::from(init),
            },
        )
        .unwrap();
        host.call(
            node,
            ApiCall::BuildProgram {
                device: 0,
                program: ProgramId::new(n + 1),
                source: TICK_SRC.into(),
            },
        )
        .unwrap();
        host.call(
            node,
            ApiCall::CreateKernel {
                device: 0,
                kernel: KernelId::new(n + 1),
                program: ProgramId::new(n + 1),
                name: "tick".into(),
            },
        )
        .unwrap();
    }
    for _round in 0..3 {
        for n in 0..2u64 {
            host.call(
                NodeId::new(n as u32),
                ApiCall::LaunchKernel {
                    device: 0,
                    kernel: KernelId::new(n + 1),
                    args: vec![WireArg::Buffer(BufferId::new(n + 1))],
                    range: WireNdRange {
                        work_dim: 1,
                        global: [8, 1, 1],
                        local: [4, 1, 1],
                    },
                    cost: WireCost {
                        flops: 16.0,
                        bytes_read: 32.0,
                        bytes_written: 32.0,
                        uniform: true,
                        streaming: false,
                    },
                    fidelity: Fidelity::Full,
                    shared: false,
                },
            )
            .unwrap();
        }
    }
    let mut outputs = Vec::new();
    for n in 0..2u64 {
        let outcome = host
            .call(
                NodeId::new(n as u32),
                ApiCall::ReadBuffer {
                    device: 0,
                    buffer: BufferId::new(n + 1),
                    offset: 0,
                    len: 32,
                },
            )
            .unwrap();
        match outcome.reply {
            ApiReply::Data { bytes } => outputs.push(bytes.to_vec()),
            other => panic!("read answered with {other:?}"),
        }
    }
    let schedule = cluster.chaos_schedule();
    cluster.shutdown();
    (outputs, schedule)
}

/// Groups schedule lines (`"#N src->dst kind"`) by link, dropping the
/// global sequence number: each link's fault stream is seeded from
/// `seed ^ hash(link)` and advances per frame *on that link*, so the
/// per-link sequences are the deterministic fingerprint. The global
/// interleaving across links depends on thread scheduling and is not
/// part of the guarantee.
fn per_link(schedule: &[String]) -> std::collections::BTreeMap<String, Vec<String>> {
    let mut by_link = std::collections::BTreeMap::<String, Vec<String>>::new();
    for line in schedule {
        let mut parts = line.splitn(3, ' ');
        let _seq = parts.next().unwrap();
        let link = parts.next().unwrap().to_string();
        let kind = parts.next().unwrap().to_string();
        by_link.entry(link).or_default().push(kind);
    }
    by_link
}

#[test]
fn fixed_seed_reproduces_the_fault_schedule_exactly() {
    // Generous patience: the schedule fingerprint must depend only on
    // the seed, so wall-clock-induced spurious retransmissions (which
    // would add frames) need to stay out of the picture.
    let patience = Duration::from_millis(150);
    let spec = "drop=0.05,delay=0.2:300us,dup=0.1";
    let (bytes_a, schedule_a) = scripted_run(Some((7, spec)), patience);
    let (bytes_b, schedule_b) = scripted_run(Some((7, spec)), patience);
    assert!(
        !schedule_a.is_empty(),
        "the schedule injected at least one fault"
    );
    assert_eq!(
        per_link(&schedule_a),
        per_link(&schedule_b),
        "same seed, same spec => identical per-link fault schedule"
    );
    assert_eq!(bytes_a, bytes_b, "same schedule => identical bytes");
}

#[test]
fn outputs_are_bit_identical_to_fault_free_under_every_schedule() {
    let (golden, no_faults) = scripted_run(None, Duration::from_millis(10));
    assert!(no_faults.is_empty(), "fault-free run injects nothing");
    // Eight seeds across three schedule families: a mid-run NMP crash
    // (failover + journal replay), a lossy network (retransmission +
    // dedup), and a jittery reordering one.
    let specs = [
        "crash=*@9",
        "drop=0.1,dup=0.25",
        "delay=0.4:300us,dup=0.2,reorder=0.2",
    ];
    for seed in 1..=8u64 {
        for spec in specs {
            let (bytes, schedule) = scripted_run(Some((seed, spec)), Duration::from_millis(10));
            assert_eq!(
                bytes,
                golden,
                "seed {seed} spec `{spec}` diverged from the fault-free \
                 golden; repro schedule:\n{}",
                schedule.join("\n")
            );
        }
    }
}

#[test]
fn crash_failover_recovers_mid_pipeline() {
    // Target the crash explicitly at the second node, late enough that
    // state exists on it, early enough that launches and the final read
    // must ride the failover replay.
    let config = ClusterConfig::gpu_cluster(2);
    let hosts = node_hosts(&config);
    let (golden, _) = scripted_run(None, Duration::from_millis(10));
    let spec = format!("crash={}@11", hosts[1]);
    let (bytes, schedule) = scripted_run(Some((1, &spec)), Duration::from_millis(10));
    assert!(
        !schedule.is_empty(),
        "the crash blackholed at least one frame"
    );
    assert_eq!(
        bytes, golden,
        "failover replay reproduced the crashed node's state bit-for-bit"
    );
}

#[test]
fn retransmission_never_double_executes_a_kernel() {
    // A lossy, duplicating network with retransmission but no failover:
    // after the dust settles the node's own profile must count each
    // launch exactly once.
    let config = ClusterConfig::gpu_cluster(1);
    let cluster = LocalCluster::launch(&config, KernelRegistry::new()).unwrap();
    cluster.install_chaos(policy_for(&config, 5, "drop=0.15,dup=0.3"));
    cluster
        .host()
        .set_recovery(Some(recovery(Duration::from_millis(10), false)));
    let host = cluster.host();
    let node = NodeId::new(0);
    let buf = BufferId::new(1);
    host.call(
        node,
        ApiCall::CreateBuffer {
            device: 0,
            buffer: buf,
            size: 32,
        },
    )
    .unwrap();
    host.call(
        node,
        ApiCall::BuildProgram {
            device: 0,
            program: ProgramId::new(1),
            source: TICK_SRC.into(),
        },
    )
    .unwrap();
    host.call(
        node,
        ApiCall::CreateKernel {
            device: 0,
            kernel: KernelId::new(1),
            program: ProgramId::new(1),
            name: "tick".into(),
        },
    )
    .unwrap();
    const LAUNCHES: u64 = 6;
    for _ in 0..LAUNCHES {
        host.call(
            node,
            ApiCall::LaunchKernel {
                device: 0,
                kernel: KernelId::new(1),
                args: vec![WireArg::Buffer(buf)],
                range: WireNdRange {
                    work_dim: 1,
                    global: [8, 1, 1],
                    local: [4, 1, 1],
                },
                cost: WireCost {
                    flops: 16.0,
                    bytes_read: 32.0,
                    bytes_written: 32.0,
                    uniform: true,
                    streaming: false,
                },
                fidelity: Fidelity::Full,
                shared: false,
            },
        )
        .unwrap();
    }
    let outcome = host.call(node, ApiCall::QueryProfile).unwrap();
    let ApiReply::Profile { entries } = outcome.reply else {
        panic!("profile query answered wrong");
    };
    let runs: u64 = entries
        .iter()
        .filter(|e| e.kernel == "tick")
        .map(|e| e.runs)
        .sum();
    let schedule = cluster.chaos_schedule();
    assert!(
        !schedule.is_empty(),
        "the lossy schedule injected at least one fault"
    );
    assert_eq!(
        runs,
        LAUNCHES,
        "every duplicate was answered from the journal; repro schedule:\n{}",
        schedule.join("\n")
    );
    cluster.shutdown();
}

mod workloads_under_chaos {
    use super::*;
    use haocl::Platform;
    use haocl_workloads::{registry_with_all, RunOptions, Workload};

    /// Runs one workload on a two-GPU cluster under the given chaos
    /// schedule and asserts it still verifies against the host
    /// reference.
    fn verify_under(workload: &Workload, seed: u64, spec: &str) {
        let config = ClusterConfig::gpu_cluster(2);
        let platform = Platform::cluster(&config, registry_with_all()).unwrap();
        platform.install_chaos(policy_for(&config, seed, spec));
        platform.set_recovery(Some(recovery(Duration::from_millis(10), true)));
        let report = workload.run(&platform, &RunOptions::full()).unwrap();
        assert_eq!(
            report.verified,
            Some(true),
            "{} under seed {seed} spec `{spec}`: {report}; repro schedule:\n{}",
            workload.name(),
            platform.chaos_schedule().join("\n")
        );
    }

    // One test per workload keeps failures attributable and lets the
    // harness run them in parallel. Seeds are distinct across all ten
    // cases, so the suite covers ten different fault schedules.

    #[test]
    fn matmul_verifies_under_crash_and_loss() {
        let w = Workload::test_suite()[0];
        verify_under(&w, 11, "crash=*@20");
        verify_under(&w, 12, "drop=0.05,dup=0.1,delay=0.2:200us");
    }

    #[test]
    fn cfd_verifies_under_crash_and_loss() {
        let w = Workload::test_suite()[1];
        verify_under(&w, 13, "crash=*@20");
        verify_under(&w, 14, "drop=0.05,dup=0.1,delay=0.2:200us");
    }

    #[test]
    fn knn_verifies_under_crash_and_loss() {
        let w = Workload::test_suite()[2];
        verify_under(&w, 15, "crash=*@20");
        verify_under(&w, 16, "drop=0.05,dup=0.1,delay=0.2:200us");
    }

    #[test]
    fn bfs_verifies_under_crash_and_loss() {
        let w = Workload::test_suite()[3];
        verify_under(&w, 17, "crash=*@20");
        verify_under(&w, 18, "drop=0.05,dup=0.1,delay=0.2:200us");
    }

    #[test]
    fn spmv_verifies_under_crash_and_loss() {
        let w = Workload::test_suite()[4];
        verify_under(&w, 19, "crash=*@20");
        verify_under(&w, 20, "drop=0.05,dup=0.1,delay=0.2:200us");
    }
}

mod observability {
    use super::*;
    use haocl::auto::AutoScheduler;
    use haocl::{Buffer, Context, DeviceType, Kernel, MemFlags, NdRange, Platform, Program};
    use haocl_sched::policies;

    #[test]
    fn recovery_and_quarantine_surface_in_metrics_and_audit() {
        let config = ClusterConfig::gpu_cluster(2);
        let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
        let hosts = node_hosts(&config);
        // The second node crashes early; duplication guarantees the NMP
        // journal answers at least one retransmitted mutation from
        // cache.
        let spec = format!("crash={}@14,dup=0.25", hosts[1]);
        platform.install_chaos(policy_for(&config, 3, &spec));
        platform.set_recovery(Some(recovery(Duration::from_millis(10), true)));

        let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
        let mut auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
        // One failover is enough evidence to demote a node here.
        auto.set_quarantine_threshold(1);
        let prog = Program::from_source(&ctx, TICK_SRC);
        prog.build().unwrap();
        let k = Kernel::new(&prog, "tick").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 32).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();

        for _ in 0..10 {
            let (ev, _) = auto.launch(&k, NdRange::linear(8, 4)).unwrap();
            ev.wait().unwrap();
            if platform.node_epoch(NodeId::new(1)) >= 1 {
                break;
            }
        }
        assert!(
            platform.node_epoch(NodeId::new(1)) >= 1,
            "the crashed node failed over; repro schedule:\n{}",
            platform.chaos_schedule().join("\n")
        );
        // The next launch's health poll observes the epoch bump and
        // quarantines the node.
        let (ev, _) = auto.launch(&k, NdRange::linear(8, 4)).unwrap();
        ev.wait().unwrap();
        assert!(
            auto.quarantine().is_quarantined(NodeId::new(1)),
            "one failover crossed the (lowered) quarantine threshold"
        );

        let metrics = platform.render_metrics();
        for name in [
            "haocl_retries_total",
            "haocl_failovers_total",
            "haocl_dedup_hits_total",
            "haocl_quarantines_total",
        ] {
            assert!(
                metrics.contains(name),
                "metrics are missing {name}; rendered:\n{metrics}"
            );
        }
        let audit = platform.render_audit_log();
        assert!(
            audit.contains("quarantine"),
            "audit log records the quarantine decision; rendered:\n{audit}"
        );
    }
}

mod elastic {
    use super::*;
    use haocl::{
        Buffer, CommandQueue, Context, DeviceType, DrainOptions, Kernel, MemFlags, MembershipState,
        NdRange, Platform, Program,
    };

    /// One scripted elastic run: seed the buffer on node 1, iterate the
    /// tick kernel there (so node 1 holds the newest bytes), drain
    /// node 1, then keep working on node 0 and read back through it.
    /// `crash_at` arms a frame-counted blackhole on node 1's host;
    /// sweeping the threshold slides the crash across the whole drain
    /// state machine — before the drain (failover first, then a drain
    /// of the re-routed node), mid-evacuation, or after retirement.
    /// Returns the final bytes plus the number of blackholed frames.
    fn drain_race_run(crash_at: Option<u64>) -> (Vec<u8>, usize) {
        let config = ClusterConfig::gpu_cluster(3);
        let platform = Platform::cluster(&config, KernelRegistry::new()).unwrap();
        let chaotic = crash_at.is_some();
        if let Some(at) = crash_at {
            let spec = format!("crash={}@{at}", node_hosts(&config)[1]);
            platform.install_chaos(policy_for(&config, 11, &spec));
            platform.set_recovery(Some(recovery(Duration::from_millis(10), true)));
        }
        let ctx = Context::new(&platform, &platform.devices(DeviceType::All)).unwrap();
        let q0 = CommandQueue::new(&ctx, &ctx.devices()[0]).unwrap();
        let q1 = CommandQueue::new(&ctx, &ctx.devices()[1]).unwrap();
        let prog = Program::from_source(&ctx, TICK_SRC);
        prog.build().unwrap();
        let k = Kernel::new(&prog, "tick").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 32).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        q1.enqueue_write_buffer(&buf, 0, &[0u8; 32]).unwrap();
        for _ in 0..4 {
            let ev = q1
                .enqueue_nd_range_kernel(&k, NdRange::linear(8, 4))
                .unwrap();
            ev.wait().unwrap();
        }

        let victim = NodeId::new(1);
        // However the race lands, the drain either completes (Departed)
        // or fails retryably (Draining) — and a retry may ride failover
        // replay to completion.
        let mut drained = false;
        for _ in 0..3 {
            match platform.drain_node(victim, DrainOptions::default()) {
                Ok(_) => {
                    drained = true;
                    break;
                }
                Err(e) => {
                    assert!(chaotic, "clean-network drain failed: {e:?}");
                    assert_eq!(
                        platform.node_membership(victim),
                        Some(MembershipState::Draining)
                    );
                }
            }
        }
        if drained {
            assert_eq!(
                platform.node_membership(victim),
                Some(MembershipState::Departed)
            );
        }

        // The survivors must keep serving launches: a drain (or a crash
        // racing it) must never poison a surviving node's data plane.
        for _ in 0..2 {
            let ev = q0
                .enqueue_nd_range_kernel(&k, NdRange::linear(8, 4))
                .unwrap();
            ev.wait().unwrap();
        }
        let mut out = vec![0u8; 32];
        q0.enqueue_read_buffer(&buf, 0, &mut out).unwrap();
        (out, platform.chaos_schedule().len())
    }

    #[test]
    fn drain_racing_a_crash_preserves_bytes_and_survivors() {
        let (golden, no_faults) = drain_race_run(None);
        assert_eq!(no_faults, 0, "fault-free run injected nothing");
        let mut total_faults = 0;
        // Small thresholds crash node 1 before the drain even starts
        // (the drain then targets an already-failed-over node); larger
        // ones land mid-evacuation or after retirement.
        for at in [2, 4, 6, 9, 12, 16, 24, 40] {
            let (bytes, faults) = drain_race_run(Some(at));
            total_faults += faults;
            assert_eq!(
                bytes, golden,
                "crash@{at} racing the drain diverged from the fault-free golden"
            );
        }
        assert!(
            total_faults > 0,
            "the threshold sweep never actually fired the crash"
        );
    }
}
