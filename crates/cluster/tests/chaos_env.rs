//! Environment-driven chaos configuration.
//!
//! `HAOCL_CHAOS_SPEC` / `HAOCL_CHAOS_SEED` arm the fabric at
//! [`LocalCluster::launch`] time — the knob CI's soak job turns. Env
//! vars are process-global, so this lives in its own integration-test
//! binary (own process): it cannot race the other chaos tests' cluster
//! launches, and the single `#[test]` keeps the binary serial.

use haocl_cluster::{ClusterConfig, LocalCluster};
use haocl_kernel::KernelRegistry;
use haocl_proto::ids::NodeId;
use haocl_proto::messages::{ApiCall, ApiReply};

#[test]
fn env_vars_arm_chaos_and_recovery_at_launch() {
    // Safety: this test binary runs this single test; nothing else in
    // the process reads or writes these variables concurrently.
    unsafe {
        std::env::set_var("HAOCL_CHAOS_SPEC", "drop=0.02,dup=0.02");
        std::env::set_var("HAOCL_CHAOS_SEED", "42");
    }
    let config = ClusterConfig::gpu_cluster(1);
    let cluster = LocalCluster::launch(&config, KernelRegistry::new()).unwrap();
    assert_eq!(
        cluster.fabric().with_chaos(|c| c.seed()),
        Some(42),
        "the fabric picked up the env-configured chaos policy"
    );
    assert!(
        cluster.host().recovery().is_some(),
        "launching under chaos auto-enables the recovery policy"
    );
    // The armed cluster still answers traffic (recovery absorbs the
    // low-rate loss).
    let outcome = cluster.host().call(NodeId::new(0), ApiCall::Ping).unwrap();
    assert!(matches!(outcome.reply, ApiReply::Pong { .. }));
    cluster.shutdown();

    // A malformed spec is a launch-time configuration error, not a
    // silently fault-free cluster.
    unsafe {
        std::env::set_var("HAOCL_CHAOS_SPEC", "flood=banana");
    }
    let err = LocalCluster::launch(&config, KernelRegistry::new()).unwrap_err();
    assert!(
        format!("{err}").contains("chaos"),
        "bad spec surfaces as a config error, got: {err}"
    );
    unsafe {
        std::env::remove_var("HAOCL_CHAOS_SPEC");
        std::env::remove_var("HAOCL_CHAOS_SEED");
    }
}
