//! The cluster layer's half of the trace contract: a traced submit must
//! come back with the node's dispatch/VM spans, correctly parented under
//! the caller's context, and an untraced submit must come back with none.

use haocl_cluster::{ClusterConfig, LocalCluster};
use haocl_kernel::KernelRegistry;
use haocl_obs::{SpanId, TraceCtx, TraceId};
use haocl_proto::ids::NodeId;
use haocl_proto::messages::{ApiCall, ApiReply, Fidelity, WireArg, WireCost, WireNdRange};

fn launch_call(kernel: haocl_proto::ids::KernelId, buffer: haocl_proto::ids::BufferId) -> ApiCall {
    ApiCall::LaunchKernel {
        device: 0,
        kernel,
        args: vec![WireArg::Buffer(buffer)],
        range: WireNdRange {
            work_dim: 1,
            global: [4, 1, 1],
            local: [2, 1, 1],
        },
        cost: WireCost {
            flops: 0.0,
            bytes_read: 0.0,
            bytes_written: 0.0,
            uniform: true,
            streaming: false,
        },
        fidelity: Fidelity::Full,
        shared: false,
    }
}

fn built_kernel(
    cluster: &LocalCluster,
    node: NodeId,
) -> (haocl_proto::ids::KernelId, haocl_proto::ids::BufferId) {
    let host = cluster.host();
    let program = haocl_proto::ids::ProgramId::new(1);
    let src = "__kernel void one(__global int* a) { a[get_global_id(0)] = 1; }";
    let r = host
        .call(
            node,
            ApiCall::BuildProgram {
                device: 0,
                program,
                source: src.to_string(),
            },
        )
        .unwrap();
    assert!(
        matches!(r.reply, ApiReply::BuildLog { ok: true, .. }),
        "{:?}",
        r.reply
    );
    let kernel = haocl_proto::ids::KernelId::new(1);
    let r = host
        .call(
            node,
            ApiCall::CreateKernel {
                device: 0,
                program,
                kernel,
                name: "one".to_string(),
            },
        )
        .unwrap();
    assert!(
        matches!(r.reply, ApiReply::KernelInfo { .. }),
        "{:?}",
        r.reply
    );
    let buffer = haocl_proto::ids::BufferId::new(1);
    let r = host
        .call(
            node,
            ApiCall::CreateBuffer {
                device: 0,
                buffer,
                size: 16,
            },
        )
        .unwrap();
    assert!(matches!(r.reply, ApiReply::Ack), "{:?}", r.reply);
    (kernel, buffer)
}

#[test]
fn traced_launch_ships_node_spans_back() {
    let cluster =
        LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    let node = NodeId::new(0);
    let (kernel, buffer) = built_kernel(&cluster, node);
    let ctx = TraceCtx::new(TraceId(7), SpanId(42));
    let outcome = cluster
        .host()
        .submit_traced(node, launch_call(kernel, buffer), Some(ctx))
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(outcome.reply, ApiReply::LaunchDone { .. }));
    let names: Vec<&str> = outcome.spans.iter().map(|s| s.name.as_str()).collect();
    assert_eq!(names, vec!["nmp.dispatch", "vm.run"], "{:?}", outcome.spans);
    let dispatch = &outcome.spans[0];
    let vm = &outcome.spans[1];
    assert_eq!(
        dispatch.parent, 42,
        "dispatch parents under the caller's span"
    );
    assert_eq!(vm.parent, dispatch.id, "vm.run parents under dispatch");
    assert_ne!(dispatch.id & (1 << 63), 0, "node ids carry the high bit");
    assert!(dispatch.start_nanos <= vm.start_nanos && vm.end_nanos <= dispatch.end_nanos);
}

#[test]
fn untraced_launch_ships_no_spans() {
    let cluster =
        LocalCluster::launch(&ClusterConfig::gpu_cluster(1), KernelRegistry::new()).unwrap();
    let node = NodeId::new(0);
    let (kernel, buffer) = built_kernel(&cluster, node);
    let outcome = cluster
        .host()
        .submit(node, launch_call(kernel, buffer))
        .unwrap()
        .wait()
        .unwrap();
    assert!(matches!(outcome.reply, ApiReply::LaunchDone { .. }));
    assert!(outcome.spans.is_empty());
}
