//! OpenCL-style free functions.
//!
//! The paper's wrapper lib "adopts identical names as standard OpenCL
//! APIs to maintain good usability and portability" (§III-B). These free
//! functions are the Rust-idiom spellings of the `cl*` entry points, so a
//! host program ports mechanically:
//!
//! | OpenCL C                   | HaoCL                              |
//! |----------------------------|------------------------------------|
//! | `clGetDeviceIDs`           | [`get_device_ids`]                 |
//! | `clCreateContext`          | [`create_context`]                 |
//! | `clCreateCommandQueue`     | [`create_command_queue`]           |
//! | `clCreateBuffer`           | [`create_buffer`]                  |
//! | `clCreateProgramWithSource`| [`create_program_with_source`]     |
//! | `clBuildProgram`           | [`build_program`]                  |
//! | `clCreateKernel`           | [`create_kernel`]                  |
//! | `clSetKernelArg`           | [`set_kernel_arg`]                 |
//! | `clEnqueueWriteBuffer`     | [`enqueue_write_buffer`]           |
//! | `clEnqueueNDRangeKernel`   | [`enqueue_nd_range_kernel`]        |
//! | `clEnqueueReadBuffer`      | [`enqueue_read_buffer`]            |
//! | `clFinish`                 | [`finish`]                         |
//!
//! Object lifetimes replace `clRetain*`/`clRelease*`: every handle is
//! reference-counted and frees itself on drop.

use haocl_kernel::NdRange;

use crate::buffer::{Buffer, MemFlags};
use crate::context::Context;
use crate::error::Error;
use crate::event::Event;
use crate::kernel::Kernel;
use crate::platform::{Device, DeviceType, Platform};
use crate::program::Program;
use crate::queue::CommandQueue;

/// A `clSetKernelArg` payload.
#[derive(Debug, Clone)]
pub enum KernelArg<'a> {
    /// A buffer object (`cl_mem`).
    Buffer(&'a Buffer),
    /// A `float` scalar.
    F32(f32),
    /// A `double` scalar.
    F64(f64),
    /// An `int` scalar.
    I32(i32),
    /// A `uint` scalar.
    U32(u32),
    /// A `long` scalar.
    I64(i64),
    /// A `ulong` scalar.
    U64(u64),
    /// A dynamically-sized `__local` allocation.
    LocalBytes(u64),
}

/// `clGetDeviceIDs`: the platform's devices passing `filter`.
pub fn get_device_ids(platform: &Platform, filter: DeviceType) -> Vec<Device> {
    platform.devices(filter)
}

/// `clCreateContext`.
///
/// # Errors
///
/// See [`Context::new`].
pub fn create_context(platform: &Platform, devices: &[Device]) -> Result<Context, Error> {
    Context::new(platform, devices)
}

/// `clCreateCommandQueue`.
///
/// # Errors
///
/// See [`CommandQueue::new`].
pub fn create_command_queue(context: &Context, device: &Device) -> Result<CommandQueue, Error> {
    CommandQueue::new(context, device)
}

/// `clCreateBuffer`.
///
/// # Errors
///
/// See [`Buffer::new`].
pub fn create_buffer(context: &Context, flags: MemFlags, size: u64) -> Result<Buffer, Error> {
    Buffer::new(context, flags, size)
}

/// `clCreateProgramWithSource`.
pub fn create_program_with_source(context: &Context, source: &str) -> Program {
    Program::from_source(context, source)
}

/// `clBuildProgram`.
///
/// # Errors
///
/// See [`Program::build`].
pub fn build_program(program: &Program) -> Result<(), Error> {
    program.build()
}

/// `clCreateKernel`.
///
/// # Errors
///
/// See [`Kernel::new`].
pub fn create_kernel(program: &Program, name: &str) -> Result<Kernel, Error> {
    Kernel::new(program, name)
}

/// `clSetKernelArg`.
///
/// # Errors
///
/// See the typed setters on [`Kernel`].
pub fn set_kernel_arg(kernel: &Kernel, index: u32, arg: KernelArg<'_>) -> Result<(), Error> {
    match arg {
        KernelArg::Buffer(b) => kernel.set_arg_buffer(index, b),
        KernelArg::F32(v) => kernel.set_arg_f32(index, v),
        KernelArg::F64(v) => kernel.set_arg_f64(index, v),
        KernelArg::I32(v) => kernel.set_arg_i32(index, v),
        KernelArg::U32(v) => kernel.set_arg_u32(index, v),
        KernelArg::I64(v) => kernel.set_arg_i64(index, v),
        KernelArg::U64(v) => kernel.set_arg_u64(index, v),
        KernelArg::LocalBytes(b) => kernel.set_arg_local(index, b),
    }
}

/// `clEnqueueWriteBuffer` (always blocking; host semantics are
/// synchronous).
///
/// # Errors
///
/// See [`CommandQueue::enqueue_write_buffer`].
pub fn enqueue_write_buffer(
    queue: &CommandQueue,
    buffer: &Buffer,
    offset: u64,
    data: &[u8],
) -> Result<Event, Error> {
    queue.enqueue_write_buffer(buffer, offset, data)
}

/// `clEnqueueReadBuffer` (always blocking).
///
/// # Errors
///
/// See [`CommandQueue::enqueue_read_buffer`].
pub fn enqueue_read_buffer(
    queue: &CommandQueue,
    buffer: &Buffer,
    offset: u64,
    out: &mut [u8],
) -> Result<Event, Error> {
    queue.enqueue_read_buffer(buffer, offset, out)
}

/// `clEnqueueNDRangeKernel`.
///
/// # Errors
///
/// See [`CommandQueue::enqueue_nd_range_kernel`].
pub fn enqueue_nd_range_kernel(
    queue: &CommandQueue,
    kernel: &Kernel,
    range: NdRange,
) -> Result<Event, Error> {
    queue.enqueue_nd_range_kernel(kernel, range)
}

/// `clFinish`.
pub fn finish(queue: &CommandQueue) -> haocl_sim::SimTime {
    queue.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use haocl_proto::messages::DeviceKind;

    #[test]
    fn ported_opencl_host_program_runs_unchanged() {
        // The canonical OpenCL "saxpy" host program, call for call.
        let platform = Platform::local(&[DeviceKind::Gpu]).unwrap();
        let devices = get_device_ids(&platform, DeviceType::Gpu);
        let context = create_context(&platform, &devices).unwrap();
        let queue = create_command_queue(&context, &devices[0]).unwrap();
        let program = create_program_with_source(
            &context,
            "__kernel void saxpy(float a, __global const float* x, __global float* y) {
                int i = get_global_id(0);
                y[i] = a * x[i] + y[i];
            }",
        );
        build_program(&program).unwrap();
        let kernel = create_kernel(&program, "saxpy").unwrap();

        let n = 8usize;
        let xs: Vec<u8> = (0..n).flat_map(|i| (i as f32).to_le_bytes()).collect();
        let ys: Vec<u8> = (0..n).flat_map(|_| 1.0f32.to_le_bytes()).collect();
        let x = create_buffer(&context, MemFlags::READ_ONLY, (n * 4) as u64).unwrap();
        let y = create_buffer(&context, MemFlags::READ_WRITE, (n * 4) as u64).unwrap();
        enqueue_write_buffer(&queue, &x, 0, &xs).unwrap();
        enqueue_write_buffer(&queue, &y, 0, &ys).unwrap();

        set_kernel_arg(&kernel, 0, KernelArg::F32(2.0)).unwrap();
        set_kernel_arg(&kernel, 1, KernelArg::Buffer(&x)).unwrap();
        set_kernel_arg(&kernel, 2, KernelArg::Buffer(&y)).unwrap();
        enqueue_nd_range_kernel(&queue, &kernel, NdRange::linear(n as u64, 4)).unwrap();

        let mut out = vec![0u8; n * 4];
        enqueue_read_buffer(&queue, &y, 0, &mut out).unwrap();
        finish(&queue);
        let vals: Vec<f32> = out
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let expect: Vec<f32> = (0..n).map(|i| 2.0 * i as f32 + 1.0).collect();
        assert_eq!(vals, expect);
    }
}
