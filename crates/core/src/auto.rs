//! The extendable task scheduling component (§III-B).
//!
//! Instead of enqueueing on an explicit per-device queue (user-directed
//! placement), an [`AutoScheduler`] routes each launch through a
//! pluggable [`SchedulingPolicy`] — the paper's upgrade path to automatic
//! heterogeneity-aware scheduling, fed by the runtime profile of every
//! completed launch.

use parking_lot::Mutex;

use haocl_kernel::NdRange;
use haocl_obs::{names, FusionDecision, PlacementAudit, Span, TraceCtx, DEFAULT_TENANT};
use haocl_proto::ids::UserId;
use haocl_sched::{
    CurrencyTable, DeviceView, DriftDetector, DriftEvent, NodeCondition, QuarantineTracker,
    Scheduler, SchedulingPolicy, TaskSpec,
};
use haocl_sim::{Phase, SimTime};

use crate::buffer::Buffer;
use crate::context::Context;
use crate::error::{Error, Status};
use crate::event::Event;
use crate::graph::{GraphReport, LaunchGraph};
use crate::kernel::{Kernel, StoredArg};
use crate::platform::Device;
use crate::queue::CommandQueue;

/// Scheduler-routed kernel launching over a context's devices.
pub struct AutoScheduler {
    context: Context,
    queues: Vec<CommandQueue>,
    scheduler: Scheduler,
    /// Host-side view of when each device's queue drains.
    busy_until: Mutex<Vec<SimTime>>,
    /// Node health: the runtime's failover epochs become strikes, and
    /// flapping nodes drop out of the candidate set (see
    /// [`AutoScheduler::quarantine`]).
    quarantine: QuarantineTracker,
    /// Timing-drift watchdog: every completed launch feeds it, and nodes
    /// running persistently slower than their own healthy baseline are
    /// advisorily down-weighted (see [`AutoScheduler::drift`]).
    drift: DriftDetector,
}

impl AutoScheduler {
    /// Creates the component over all of `context`'s devices, driven by
    /// `policy`.
    ///
    /// # Errors
    ///
    /// Propagates queue-creation failures.
    pub fn new(context: &Context, policy: Box<dyn SchedulingPolicy>) -> Result<Self, Error> {
        let queues = context
            .devices()
            .iter()
            .map(|d| CommandQueue::new(context, d))
            .collect::<Result<Vec<_>, _>>()?;
        let n = queues.len();
        Ok(AutoScheduler {
            context: context.clone(),
            queues,
            scheduler: Scheduler::new(policy),
            busy_until: Mutex::new(vec![SimTime::ZERO; n]),
            quarantine: QuarantineTracker::default(),
            drift: DriftDetector::new(),
        })
    }

    /// The drift detector watching per-node launch timings (inspect
    /// degraded nodes, or feed it synthetic observations in tests).
    pub fn drift(&self) -> &DriftDetector {
        &self.drift
    }

    /// The node-health tracker feeding this scheduler's candidate
    /// filtering (inspect strikes, or [`QuarantineTracker::reinstate`] a
    /// recovered node).
    pub fn quarantine(&self) -> &QuarantineTracker {
        &self.quarantine
    }

    /// Replaces the health tracker with one demoting nodes after
    /// `threshold` route failovers (accumulated strikes reset).
    pub fn set_quarantine_threshold(&mut self, threshold: u32) {
        self.quarantine = QuarantineTracker::new(threshold);
    }

    /// The active policy's name.
    pub fn policy_name(&self) -> &str {
        self.scheduler.policy_name()
    }

    /// Swaps the placement policy, keeping accumulated profiles.
    pub fn set_policy(&mut self, policy: Box<dyn SchedulingPolicy>) {
        self.scheduler.set_policy(policy);
    }

    /// The per-device queues, in context device order (for explicit
    /// placement when mixing modes).
    pub fn queues(&self) -> &[CommandQueue] {
        &self.queues
    }

    /// Adopts devices that joined the platform after this component was
    /// built: each new device gets a queue, a load slot, and a lazy
    /// program build the first time a placement lands on it. Draining
    /// and departed nodes need no adoption — they drop out of the
    /// candidate set on the next placement. Returns how many devices
    /// were adopted.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidOperation`] when the component's context covers
    /// only a subset of the platform's devices (a subset context cannot
    /// grow elastically); queue-creation failures otherwise.
    pub fn sync_membership(&mut self) -> Result<usize, Error> {
        if self
            .context
            .devices
            .iter()
            .enumerate()
            .any(|(i, d)| d.index() != i)
        {
            return Err(Error::api(
                Status::InvalidOperation,
                "elastic membership needs a context over the platform's full device list",
            ));
        }
        let inner = &self.context.platform;
        let all = inner.host().devices();
        let mut adopted = 0;
        for (index, info) in all.iter().enumerate().skip(self.context.devices.len()) {
            let device = Device {
                platform: std::sync::Arc::clone(inner),
                index,
                info: info.clone(),
            };
            self.context.devices.push(device.clone());
            self.queues.push(CommandQueue::new(&self.context, &device)?);
            self.busy_until.lock().push(SimTime::ZERO);
            adopted += 1;
        }
        Ok(adopted)
    }

    /// Seeds the profiling database from a built program's static
    /// kernel-analysis reports, so the first-ever launch of each kernel
    /// is already placed with the compiler's feature vector (barrier
    /// count, `__local` footprint, arithmetic intensity, divergence)
    /// instead of the bare cost model. Observed run times displace the
    /// seeds as the profile warms up.
    pub fn adopt_static_hints(&self, program: &crate::program::Program) {
        for report in program.kernel_reports() {
            haocl_sched::seed_from_report(self.scheduler.profile(), &report);
        }
    }

    /// Launches `kernel`, letting the policy choose the device.
    ///
    /// FPGA devices are considered only for bitstream programs (§III-D).
    /// Returns the completion event and the index (within the context's
    /// device list) of the chosen device.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidOperation`] when no device is eligible; launch
    /// failures from the chosen queue otherwise.
    pub fn launch(&self, kernel: &Kernel, range: NdRange) -> Result<(Event, usize), Error> {
        self.launch_tagged(kernel, range, UserId::new(0), DEFAULT_TENANT)
    }

    /// [`AutoScheduler::launch`], billed to a session. The serving plane
    /// (see [`crate::serve`]) routes every tenant submission through
    /// here; `user` and `tenant` flow into the task spec, so the audit
    /// log, span attributes and placement metrics attribute the launch.
    /// Untagged launches delegate with `user 0` / `"default"`, making
    /// the single-tenant path the same code path.
    ///
    /// # Errors
    ///
    /// As [`AutoScheduler::launch`].
    pub fn launch_tagged(
        &self,
        kernel: &Kernel,
        range: NdRange,
        user: UserId,
        tenant: &str,
    ) -> Result<(Event, usize), Error> {
        // The buffers this launch touches drive locality: each candidate
        // view reports how many of those bytes are already resident on
        // it, and the task declares the total, so policies and the cost
        // model charge the real migration traffic of every placement.
        // Unset arguments surface later, at enqueue, with a precise error.
        let buffers: Vec<Buffer> = kernel
            .bound_args()
            .map(|args| {
                args.into_iter()
                    .filter_map(|a| match a {
                        StoredArg::Buffer(b) => Some(b),
                        _ => None,
                    })
                    .collect()
            })
            .unwrap_or_default();
        let task = TaskSpec::new(kernel.name())
            .cost(kernel.cost())
            .user(user)
            .tenant(tenant)
            .fpga_eligible(kernel.program().is_bitstream())
            .input_bytes(buffers.iter().map(Buffer::size).sum());
        let (choice, audit) = self.place_filtered(&task, &buffers)?;
        // A device adopted after the program was built gets the build
        // lazily, on the first placement that lands on it.
        kernel
            .program()
            .build_for(&self.context.devices()[choice])?;
        let obs = &self.context.platform.obs;
        // The placement decision is always auditable; spans and metrics
        // follow the tracing gate.
        let decided = self.queues[choice].device().platform.clock().now();
        let ctx = if obs.enabled() {
            let trace = obs.recorder.new_trace();
            let root_id = obs.recorder.next_span_id();
            // The decision is instantaneous in virtual time; the span
            // still anchors the audit trail inside the trace tree.
            obs.recorder.record(
                Span::new(
                    obs.recorder.next_span_id(),
                    trace,
                    Some(root_id),
                    "sched.place",
                    Phase::new("Sched"),
                    "host",
                    decided,
                    decided,
                )
                .attr("policy", audit.policy.clone())
                .attr("tenant", audit.tenant.clone())
                .attr("reason", audit.reason.clone())
                .attr("candidates", audit.candidates.len().to_string()),
            );
            obs.metrics.inc_counter(
                names::PLACEMENTS,
                &[
                    ("kernel", kernel.name()),
                    (
                        "kind",
                        audit.winner().map(|w| w.kind.as_str()).unwrap_or("unknown"),
                    ),
                ],
                1,
            );
            Some((trace, root_id))
        } else {
            None
        };
        obs.audit.record(audit);
        let event = self.queues[choice].enqueue_nd_range_kernel_traced(
            kernel,
            range,
            ctx.map(|(trace, root_id)| TraceCtx::new(trace, root_id)),
        )?;
        // The policy's load tracking needs the completion time, so
        // auto-scheduled launches resolve here; failures propagate
        // instead of panicking in the profiling accessors below.
        event.wait()?;
        {
            let mut busy = self.busy_until.lock();
            busy[choice] = busy[choice].max(event.finished_at());
        }
        self.scheduler.profile().record(
            kernel.name(),
            self.context.devices()[choice].kind(),
            event.duration(),
        );
        self.observe_drift(kernel.name(), choice, event.duration());
        if let Some((trace, root_id)) = ctx {
            // Close the trace root now that the launch has resolved; the
            // sched.place and enqueue spans recorded earlier parent here.
            obs.recorder.record(Span::new(
                root_id,
                trace,
                None,
                format!("auto.launch {}", kernel.name()),
                Phase::Compute,
                "host",
                decided,
                self.context.platform.clock().now(),
            ));
            // Seeded predictions displaced by warm observations surface
            // as a monotonic counter; sync-by-delta keeps it idempotent.
            let displaced = self.scheduler.profile().seed_displacements();
            let behind =
                displaced.saturating_sub(obs.metrics.counter_value(names::SEED_DISPLACED, &[]));
            obs.metrics.inc_counter(names::SEED_DISPLACED, &[], behind);
            self.sync_health_metrics();
        }
        Ok((event, choice))
    }

    /// Feeds one completed launch into the drift detector and folds any
    /// verdict flip into node health: `Degraded` raises the advisory
    /// flag (candidates down-weighted, not banned), `Recovered` clears
    /// it. Either transition lands in the audit log as a `drift` row.
    fn observe_drift(&self, kernel: &str, choice: usize, duration: haocl_sim::SimDuration) {
        let device = &self.context.devices()[choice];
        let node = device.node();
        let Some(transition) = self.drift.observe(kernel, node, duration) else {
            return;
        };
        let reason = match transition {
            DriftEvent::Degraded { ratio, .. } => {
                self.quarantine.mark_degraded(node);
                format!(
                    "node {} degraded: launches running {ratio:.2}x over healthy baseline",
                    device.node_name()
                )
            }
            DriftEvent::Recovered { .. } => {
                self.quarantine.clear_degraded(node);
                format!("node {} recovered to healthy baseline", device.node_name())
            }
        };
        self.context.platform.obs.audit.record(PlacementAudit {
            kernel: "<node-health>".into(),
            tenant: DEFAULT_TENANT.into(),
            policy: "drift".into(),
            candidates: Vec::new(),
            chosen: device.index(),
            reason,
            fused: FusionDecision::Unconsidered,
        });
    }

    /// Publishes the recalibration counter and compute-currency rates
    /// from the profile db (delta-synced / gauge-set, so re-publishing
    /// is idempotent).
    fn sync_health_metrics(&self) {
        let obs = &self.context.platform.obs;
        let recals = self.scheduler.profile().recalibrations();
        let behind = recals.saturating_sub(
            obs.metrics
                .counter_value(names::PROFILE_RECALIBRATIONS, &[]),
        );
        obs.metrics
            .inc_counter(names::PROFILE_RECALIBRATIONS, &[], behind);
        let currency = CurrencyTable::from_profile(self.scheduler.profile());
        for (kind, rate) in currency.rates() {
            obs.metrics.set_gauge(
                names::CURRENCY_RATE,
                &[("kind", &kind.to_string())],
                (rate * 1000.0).round() as i64,
            );
        }
    }

    /// Places `task` over the context's devices: builds the per-device
    /// views (load + residency of `buffers`), folds failover epochs into
    /// quarantine strikes, filters quarantined nodes while an
    /// alternative exists, and remaps the surviving indices back onto
    /// the context's device list.
    fn place_filtered(
        &self,
        task: &TaskSpec,
        buffers: &[Buffer],
    ) -> Result<(usize, PlacementAudit), Error> {
        let now = self.context.platform.clock().now();
        let views: Vec<DeviceView> = {
            let busy = self.busy_until.lock();
            self.context
                .devices()
                .iter()
                .zip(busy.iter())
                .map(|(d, &until)| {
                    let local = buffers
                        .iter()
                        .map(|b| b.inner.resident_bytes_on(d.index))
                        .sum();
                    // A queue that drained in the past is available *now*,
                    // not at its stale drain time — without the clamp a
                    // long-idle (e.g. degraded, avoided) device looks
                    // cheaper than a recently busy healthy one.
                    DeviceView::from_descriptor(d.node(), &d.info.descriptor)
                        .named(d.node_name())
                        .loaded(until.max(now), u32::from(until > now))
                        .with_local_bytes(local)
                        // Advisory health: a drifting node's candidates
                        // stay in the running, but every predicted run
                        // is inflated by its observed slowdown.
                        .with_health_penalty(self.drift.penalty(d.node()))
                })
                .collect()
        };
        let obs = &self.context.platform.obs;
        let host = self.context.platform.host();
        // Fold the runtime's failover signals into node health: every
        // *involuntary* epoch bump is a failover the host had to perform
        // for that node, i.e. one quarantine strike. Voluntary bumps
        // (graceful drains) are subtracted first — an operator decision
        // is not a failure signal — and a departed node's history is
        // erased entirely, so a node rejoining under the same name
        // starts with a clean record.
        for d in self.context.devices() {
            let node = d.node();
            if host.node_membership(node) == Some(haocl_cluster::MembershipState::Departed) {
                self.quarantine.forget(node);
                continue;
            }
            if self.quarantine.observe_epochs(
                node,
                host.node_epoch(node),
                host.node_voluntary_epochs(node),
            ) {
                obs.audit.record(PlacementAudit {
                    kernel: "<node-health>".into(),
                    tenant: DEFAULT_TENANT.into(),
                    policy: "quarantine".into(),
                    candidates: Vec::new(),
                    chosen: d.index(),
                    reason: format!(
                        "node {} quarantined after {} route failovers",
                        d.node_name(),
                        self.quarantine.strikes(node)
                    ),
                    fused: FusionDecision::Unconsidered,
                });
                obs.metrics
                    .inc_counter(names::QUARANTINES, &[("node", d.node_name())], 1);
            }
        }
        // Every placement refreshes the per-node health gauge, so the
        // exported series always reflects the tracker's current verdict.
        for d in self.context.devices() {
            let verdict = match self.quarantine.condition(d.node()) {
                NodeCondition::Healthy => 0,
                NodeCondition::Degraded => 1,
                NodeCondition::Quarantined => 2,
            };
            obs.metrics
                .set_gauge(names::DEVICE_HEALTH, &[("node", d.node_name())], verdict);
        }
        // Nodes that are leaving (Draining) or gone (Departed) are out
        // of the candidate set unconditionally — a draining node refuses
        // new launches and a departed one cannot execute them. Within
        // the active set, quarantined nodes are demoted while an
        // alternative exists (advisory: an all-quarantined fleet still
        // schedules).
        let active: Vec<usize> = (0..views.len())
            .filter(|&i| {
                host.node_membership(views[i].node) == Some(haocl_cluster::MembershipState::Active)
            })
            .collect();
        if active.is_empty() {
            return Err(Error::api(
                Status::InvalidOperation,
                "no active node to place on",
            ));
        }
        let eligible: Vec<usize> = active
            .iter()
            .copied()
            .filter(|&i| !self.quarantine.is_quarantined(views[i].node))
            .collect();
        let candidates = if eligible.is_empty() {
            active
        } else {
            eligible
        };
        let placed = if candidates.len() == views.len() {
            self.scheduler.place_audited(task, &views)
        } else {
            let surviving: Vec<DeviceView> = candidates.iter().map(|&i| views[i].clone()).collect();
            self.scheduler
                .place_audited(task, &surviving)
                .map(|(choice, mut audit)| {
                    // Remap filtered indices back onto the context's
                    // device list, which is what callers (and the audit
                    // log) index by.
                    for candidate in &mut audit.candidates {
                        candidate.device = candidates[candidate.device];
                    }
                    audit.chosen = candidates[audit.chosen];
                    (candidates[choice], audit)
                })
        };
        placed
            .map(|(choice, audit)| {
                // Advisory health in action: a degraded candidate was on
                // offer but a healthy device won — count the avoidance
                // against each sick node that lost.
                if audit.winner().is_some_and(|w| !w.is_degraded()) {
                    let mut counted: Vec<&str> = Vec::new();
                    for c in audit.candidates.iter().filter(|c| c.is_degraded()) {
                        let name = self.context.devices()[c.device].node_name();
                        if !counted.contains(&name) {
                            counted.push(name);
                            obs.metrics.inc_counter(
                                names::DEGRADED_PLACEMENTS_AVOIDED,
                                &[("node", name)],
                                1,
                            );
                        }
                    }
                }
                (choice, audit)
            })
            .map_err(|e| Error::api(Status::InvalidOperation, e.to_string()))
    }

    /// Dispatches a captured [`LaunchGraph`]: prover-approved adjacent
    /// chains collapse into single fused wire commands; everything else
    /// launches exactly as individual enqueues would.
    ///
    /// # Errors
    ///
    /// As [`AutoScheduler::launch`], for any constituent dispatch.
    pub fn launch_graph(&self, graph: &LaunchGraph) -> Result<GraphReport, Error> {
        self.launch_graph_tagged(graph, UserId::new(0), DEFAULT_TENANT)
    }

    /// [`AutoScheduler::launch_graph`], billed to a session.
    ///
    /// Each planned group is placed as one merged task (names joined
    /// with `+`, costs and input bytes summed), so the policy sees the
    /// fused dispatch it is actually scheduling. Every fusion decision —
    /// lead, member, solo, or rejection with its machine-readable code —
    /// lands in the audit log's `fused=` column, and fused dispatches
    /// bump `haocl_fused_launches_total` /
    /// `haocl_fusion_commands_saved_total`.
    ///
    /// # Errors
    ///
    /// As [`AutoScheduler::launch`], for any constituent dispatch.
    pub fn launch_graph_tagged(
        &self,
        graph: &LaunchGraph,
        user: UserId,
        tenant: &str,
    ) -> Result<GraphReport, Error> {
        let nodes = graph.nodes();
        let plan = graph.plan();
        let obs = &self.context.platform.obs;
        let mut report = GraphReport {
            nodes: nodes.len(),
            wire_launches: 0,
            fused_launches: 0,
            commands_saved: 0,
            events: Vec::with_capacity(plan.len()),
            decisions: vec![(String::new(), FusionDecision::Solo); nodes.len()],
        };
        for group in &plan {
            let members = &group.members;
            let lead = &nodes[members[0]];
            let lead_name = lead.kernel.name().to_string();
            // Merge the group into the task the policy actually places:
            // one dispatch with the summed work and the union of inputs.
            let joined = members
                .iter()
                .map(|&m| nodes[m].kernel.name())
                .collect::<Vec<_>>()
                .join("+");
            let mut flops = 0.0;
            let mut bytes_read = 0.0;
            let mut bytes_written = 0.0;
            let mut uniform = true;
            let mut streaming = true;
            let mut buffers: Vec<Buffer> = Vec::new();
            for &m in members {
                let cost = nodes[m].kernel.cost();
                flops += cost.total_flops();
                bytes_read += cost.total_bytes_read();
                bytes_written += cost.total_bytes_written();
                uniform &= cost.is_uniform();
                streaming &= cost.is_streaming();
                for arg in &nodes[m].args {
                    if let StoredArg::Buffer(b) = arg {
                        if !buffers
                            .iter()
                            .any(|seen| std::sync::Arc::ptr_eq(&seen.inner, &b.inner))
                        {
                            buffers.push(b.clone());
                        }
                    }
                }
            }
            let mut cost = haocl_kernel::CostModel::new()
                .flops(flops)
                .bytes_read(bytes_read)
                .bytes_written(bytes_written);
            if !uniform {
                cost = cost.divergent();
            }
            if streaming {
                cost = cost.streaming();
            }
            let task = TaskSpec::new(&joined)
                .cost(cost)
                .user(user)
                .tenant(tenant)
                .fpga_eligible(
                    members
                        .iter()
                        .all(|&m| nodes[m].kernel.program().is_bitstream()),
                )
                .input_bytes(buffers.iter().map(Buffer::size).sum());
            let (choice, mut audit) = self.place_filtered(&task, &buffers)?;
            for &m in members {
                nodes[m]
                    .kernel
                    .program()
                    .build_for(&self.context.devices()[choice])?;
            }
            // The lead's column explains this dispatch: why it fused, or
            // why it could not extend the previous one.
            let lead_decision = match (&group.rejected, members.len()) {
                (Some(code), _) => FusionDecision::Rejected { code: code.clone() },
                (None, 1) => FusionDecision::Solo,
                (None, len) => FusionDecision::Fused { len },
            };
            audit.fused = lead_decision.clone();
            report.decisions[members[0]] = (lead_name.clone(), lead_decision);
            let decided = self.queues[choice].device().platform.clock().now();
            let ctx = if obs.enabled() {
                let trace = obs.recorder.new_trace();
                let root_id = obs.recorder.next_span_id();
                obs.recorder.record(
                    Span::new(
                        obs.recorder.next_span_id(),
                        trace,
                        Some(root_id),
                        "sched.place",
                        Phase::new("Sched"),
                        "host",
                        decided,
                        decided,
                    )
                    .attr("policy", audit.policy.clone())
                    .attr("tenant", audit.tenant.clone())
                    .attr("reason", audit.reason.clone())
                    .attr("fused", audit.fused.to_string())
                    .attr("candidates", audit.candidates.len().to_string()),
                );
                obs.metrics.inc_counter(
                    names::PLACEMENTS,
                    &[
                        ("kernel", joined.as_str()),
                        (
                            "kind",
                            audit.winner().map(|w| w.kind.as_str()).unwrap_or("unknown"),
                        ),
                    ],
                    1,
                );
                Some((trace, root_id))
            } else {
                None
            };
            let (policy, tenant_label) = (audit.policy.clone(), audit.tenant.clone());
            obs.audit.record(audit);
            // Members get their own audit rows so per-kernel queries
            // still see every launch, wire command or not.
            for &m in &members[1..] {
                let name = nodes[m].kernel.name().to_string();
                report.decisions[m] = (
                    name.clone(),
                    FusionDecision::FusedInto {
                        lead: lead_name.clone(),
                    },
                );
                obs.audit.record(PlacementAudit {
                    kernel: name,
                    tenant: tenant_label.clone(),
                    policy: policy.clone(),
                    candidates: Vec::new(),
                    chosen: choice,
                    reason: format!("carried by fused dispatch `{joined}`"),
                    fused: FusionDecision::FusedInto {
                        lead: lead_name.clone(),
                    },
                });
            }
            let parts: Vec<crate::queue::LaunchPart> = members
                .iter()
                .map(|&m| crate::queue::LaunchPart {
                    kernel: nodes[m].kernel.clone(),
                    args: nodes[m].args.clone(),
                    range: nodes[m].range,
                })
                .collect();
            let event = self.queues[choice].enqueue_launch_parts_traced(
                parts,
                ctx.map(|(trace, root_id)| TraceCtx::new(trace, root_id)),
            )?;
            event.wait()?;
            {
                let mut busy = self.busy_until.lock();
                busy[choice] = busy[choice].max(event.finished_at());
            }
            // The profile keys on the merged name — the same name the
            // placement above queried, so predictions stay consistent.
            self.scheduler.profile().record(
                &joined,
                self.context.devices()[choice].kind(),
                event.duration(),
            );
            self.observe_drift(&joined, choice, event.duration());
            if let Some((trace, root_id)) = ctx {
                obs.recorder.record(Span::new(
                    root_id,
                    trace,
                    None,
                    format!("auto.launch {joined}"),
                    Phase::Compute,
                    "host",
                    decided,
                    self.context.platform.clock().now(),
                ));
                self.sync_health_metrics();
            }
            report.wire_launches += 1;
            if members.len() > 1 {
                report.fused_launches += 1;
                report.commands_saved += members.len() - 1;
                obs.metrics.inc_counter(names::FUSED_LAUNCHES, &[], 1);
                obs.metrics.inc_counter(
                    names::FUSION_COMMANDS_SAVED,
                    &[],
                    (members.len() - 1) as u64,
                );
            }
            report.events.push(event);
        }
        Ok(report)
    }
}

impl std::fmt::Debug for AutoScheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "AutoScheduler({}, {} devices)",
            self.policy_name(),
            self.queues.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer::{Buffer, MemFlags};
    use crate::platform::{DeviceType, Platform};
    use crate::program::Program;
    use haocl_kernel::CostModel;
    use haocl_proto::messages::DeviceKind;
    use haocl_sched::policies;

    fn setup(kinds: &[DeviceKind]) -> (Platform, Context) {
        let p = Platform::local(kinds).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        (p, ctx)
    }

    #[test]
    fn round_robin_spreads_launches() {
        let (_p, ctx) = setup(&[DeviceKind::Gpu, DeviceKind::Gpu]);
        let auto = AutoScheduler::new(&ctx, Box::new(policies::RoundRobin::new())).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void f(__global int* a) { a[get_global_id(0)] = 1; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "f").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        let mut picks = Vec::new();
        for _ in 0..4 {
            let (_, dev) = auto.launch(&k, NdRange::linear(4, 1)).unwrap();
            picks.push(dev);
        }
        assert_eq!(picks, vec![0, 1, 0, 1]);
    }

    struct FillOnes;

    impl haocl_kernel::NativeKernel for FillOnes {
        fn name(&self) -> &str {
            "fill_ones"
        }

        fn arity(&self) -> usize {
            1
        }

        fn execute(
            &self,
            _args: &[haocl_kernel::ArgValue],
            buffers: &mut [haocl_kernel::GlobalBuffer],
            range: &NdRange,
        ) -> Result<haocl_kernel::ExecStats, haocl_kernel::ExecError> {
            let n = (range.total_items() as usize).min(buffers[0].len() / 4);
            let ones = vec![1i32; n];
            let bytes: Vec<u8> = ones.iter().flat_map(|v| v.to_le_bytes()).collect();
            buffers[0].as_bytes_mut()[..bytes.len()].copy_from_slice(&bytes);
            Ok(haocl_kernel::ExecStats::default())
        }
    }

    #[test]
    fn bitstream_programs_route_streaming_work_to_the_fpga() {
        let registry = haocl_kernel::KernelRegistry::new();
        registry.register(std::sync::Arc::new(FillOnes));
        let p =
            Platform::local_with_registry(&[DeviceKind::Fpga, DeviceKind::Gpu], registry).unwrap();
        let ctx = Context::new(&p, &p.devices(DeviceType::All)).unwrap();
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
        let prog = Program::with_bitstream_kernels(&ctx, ["fill_ones"]);
        prog.build().unwrap();
        let k = Kernel::new(&prog, "fill_ones").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_cost(CostModel::new().flops(1e10).bytes_read(1e6).streaming());
        let (_, dev) = auto.launch(&k, NdRange::linear(4, 1)).unwrap();
        assert_eq!(ctx.devices()[dev].kind(), DeviceKind::Fpga);
    }

    #[test]
    fn static_hints_steer_the_first_launch() {
        let (_p, ctx) = setup(&[DeviceKind::Cpu, DeviceKind::Gpu]);
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
        // A heavily divergent kernel: every work-item walks a different
        // data-dependent loop. The analyzer's divergence score discounts
        // the GPU, so with hints adopted the first launch lands on the CPU
        // even though the raw cost model would pick the GPU.
        let prog = Program::from_source(
            &ctx,
            r#"__kernel void walk(__global int* a, int n) {
                int i = get_global_id(0);
                int steps = 0;
                for (int j = 0; j < i % 7; j++) {
                    if (a[j] > 0) { steps = steps + a[j]; } else { steps = steps - 1; }
                    if (steps > 100) { steps = steps / 2; }
                }
                a[i] = steps;
            }"#,
        );
        prog.build().unwrap();
        let auto_db_before = auto.scheduler.profile().predict("walk", DeviceKind::Gpu);
        assert!(auto_db_before.is_none(), "profile starts cold");
        auto.adopt_static_hints(&prog);
        let k = Kernel::new(&prog, "walk").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_arg_i32(1, 4).unwrap();
        k.set_cost(CostModel::new().flops(1e10));
        let (_, dev) = auto.launch(&k, NdRange::linear(4, 1)).unwrap();
        assert_eq!(
            ctx.devices()[dev].kind(),
            DeviceKind::Cpu,
            "divergence hint overrides the dense-compute GPU default"
        );
    }

    #[test]
    fn locality_policy_follows_resident_buffers() {
        let (_p, ctx) = setup(&[DeviceKind::Gpu, DeviceKind::Gpu]);
        let auto = AutoScheduler::new(&ctx, Box::new(policies::LocalityAware::new())).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void f(__global int* a) { a[get_global_id(0)] = 1; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "f").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 64).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        // Seed the input on device 1: the launch should follow the data
        // there even though device 0 comes first in every tie-break.
        buf.inner
            .host_write(&ctx.devices()[1], 0, &[7u8; 64])
            .unwrap();
        let (_, dev) = auto.launch(&k, NdRange::linear(4, 1)).unwrap();
        assert_eq!(dev, 1, "placement must follow the resident replica");
    }

    #[test]
    fn profile_feeds_back_into_placement() {
        let (_p, ctx) = setup(&[DeviceKind::Cpu, DeviceKind::Gpu]);
        let auto = AutoScheduler::new(&ctx, Box::new(policies::HeteroAware::new())).unwrap();
        let prog = Program::from_source(
            &ctx,
            "__kernel void f(__global int* a) { a[get_global_id(0)] = 1; }",
        );
        prog.build().unwrap();
        let k = Kernel::new(&prog, "f").unwrap();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        k.set_arg_buffer(0, &buf).unwrap();
        k.set_cost(CostModel::new().flops(1e9));
        let (_, first) = auto.launch(&k, NdRange::linear(4, 1)).unwrap();
        // Dense uniform work goes to the GPU (device index 1).
        assert_eq!(first, 1);
    }
}
