//! `cl_mem` buffers with residency-aware coherence.
//!
//! A HaoCL buffer keeps replicas on whichever device nodes have used it,
//! plus a *host shadow copy* — which is just another replica in the
//! [`crate::residency::ResidencyTracker`], refreshed lazily only when a
//! host read or a push actually needs it. Coherence is single-writer and
//! monotonically versioned: a kernel launch bumps the buffer version and
//! makes the launching device the sole current replica.
//!
//! Migrating the newest contents to another device prefers a **direct
//! peer transfer**: the host sends one `PushBufferTo` command to the
//! owning node, which ships the bytes straight to the target node's data
//! listener — one hop instead of the pull-to-shadow-then-push two-hop
//! relay. The host still packages and delivers every *command* (§III-A of
//! the paper: the host node "is responsible for the message packaging and
//! message delivering across the entire cluster"); only bulk data moves
//! peer-to-peer. If a peer transfer fails (chaos, dead node), the classic
//! host relay is the fallback.

use std::collections::BTreeMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use haocl_cluster::MembershipState;
use haocl_obs::{names, Span};
use haocl_proto::ids::{BufferId, NodeId};
use haocl_proto::messages::{ApiCall, ApiReply};
use haocl_sim::Phase;

use crate::context::Context;
use crate::error::{Error, Status};
use crate::event::Event;
use crate::platform::{Device, PlatformInner};
use crate::residency::{Location, ResidencyTracker};

/// Buffer access flags (`CL_MEM_*`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFlags(u32);

impl MemFlags {
    /// Kernels may read and write (`CL_MEM_READ_WRITE`).
    pub const READ_WRITE: MemFlags = MemFlags(1);
    /// Kernels only read (`CL_MEM_READ_ONLY`) — replicas stay valid
    /// across launches, saving re-transfers.
    pub const READ_ONLY: MemFlags = MemFlags(4);
    /// Kernels only write (`CL_MEM_WRITE_ONLY`).
    pub const WRITE_ONLY: MemFlags = MemFlags(2);

    /// Whether kernels may write through this buffer.
    pub fn kernel_writable(self) -> bool {
        self != MemFlags::READ_ONLY
    }
}

/// What a host-side transfer carries: real bytes or a modeled length.
enum HostData<'a> {
    /// Real contents to write.
    Real(&'a [u8]),
    /// Timing-only transfer of this many bytes.
    Modeled(u64),
}

impl HostData<'_> {
    fn len(&self) -> u64 {
        match self {
            HostData::Real(d) => d.len() as u64,
            HostData::Modeled(len) => *len,
        }
    }

    fn is_modeled(&self) -> bool {
        matches!(self, HostData::Modeled(_))
    }
}

#[derive(Debug)]
struct BufState {
    /// Host copy of the buffer contents (empty for modeled buffers).
    shadow: Vec<u8>,
    /// Versioned replica map: who holds which version where.
    residency: ResidencyTracker,
    /// Per-logical-node *wire ids*: the id each node knows this buffer
    /// by. Distinct per node so that two logical nodes failed over onto
    /// one physical NMP keep disjoint buffer slots — replaying one
    /// node's journal can neither collide with nor clobber the other
    /// node's live replica.
    wire: BTreeMap<NodeId, BufferId>,
}

pub(crate) struct BufferInner {
    platform: Arc<PlatformInner>,
    pub(crate) id: BufferId,
    size: u64,
    flags: MemFlags,
    /// Modeled buffers carry no bytes anywhere: transfers and launches
    /// charge virtual time only (paper-scale benchmarking).
    modeled: bool,
    state: Mutex<BufState>,
    /// In-flight kernel launches (on the pipelined backbone) that may
    /// write this buffer. Settled before any dependent operation looks
    /// at the coherence state.
    pending_writers: Mutex<Vec<Event>>,
    /// Tenant memory-quota charge, released when the last handle drops.
    /// `None` for buffers created outside the serving plane.
    charge: Mutex<Option<TenantCharge>>,
}

/// How [`BufferInner::evacuate_node`] rescued a buffer off a draining
/// node (byte counts feed the platform's drain report).
pub(crate) enum EvacOutcome {
    /// The newest copy was already safe elsewhere; replicas on the node
    /// were merely evicted (or the buffer never touched the node).
    Untouched,
    /// Newest bytes re-homed on a surviving device over the peer data
    /// plane.
    PeerMigrated(u64),
    /// Newest bytes pulled back into the host shadow (relay fallback).
    HostRelayed(u64),
}

/// A device-memory charge against a tenant's quota ledger. Held by the
/// buffer it paid for; dropping the buffer replenishes the quota and
/// refreshes the per-tenant memory gauge.
pub(crate) struct TenantCharge {
    pub(crate) ledger: Arc<haocl_sched::QuotaLedger>,
    pub(crate) tenant: haocl_proto::ids::TenantId,
    pub(crate) tenant_name: String,
    pub(crate) bytes: u64,
}

/// An OpenCL buffer object.
#[derive(Clone)]
pub struct Buffer {
    pub(crate) inner: Arc<BufferInner>,
}

impl Buffer {
    /// Creates a buffer of `size` bytes in `context` (`clCreateBuffer`).
    ///
    /// The host shadow is zero-filled; device allocations happen lazily
    /// on first use. Creation charges the `DataCreate` phase.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidBufferSize`] for a zero-sized buffer.
    pub fn new(context: &Context, flags: MemFlags, size: u64) -> Result<Self, Error> {
        Self::with_mode(context, flags, size, false)
    }

    /// Creates a *modeled* buffer: no bytes are materialized on the host
    /// or any device; transfers and launches charge virtual time only.
    ///
    /// Use together with [`crate::Fidelity::Modeled`] launches and the
    /// `enqueue_*_buffer_modeled` queue operations for paper-scale
    /// benchmarking.
    ///
    /// # Errors
    ///
    /// [`Status::InvalidBufferSize`] for a zero-sized buffer.
    pub fn new_modeled(context: &Context, flags: MemFlags, size: u64) -> Result<Self, Error> {
        Self::with_mode(context, flags, size, true)
    }

    fn with_mode(
        context: &Context,
        flags: MemFlags,
        size: u64,
        modeled: bool,
    ) -> Result<Self, Error> {
        if size == 0 {
            return Err(Error::api(
                Status::InvalidBufferSize,
                "buffer size must be nonzero",
            ));
        }
        let platform = Arc::clone(&context.platform);
        let id = BufferId::new(platform.ids.next());
        let inner = Arc::new(BufferInner {
            platform,
            id,
            size,
            flags,
            modeled,
            state: Mutex::new(BufState {
                shadow: if modeled {
                    Vec::new()
                } else {
                    vec![0; size as usize]
                },
                residency: ResidencyTracker::new(),
                wire: BTreeMap::new(),
            }),
            pending_writers: Mutex::new(Vec::new()),
            charge: Mutex::new(None),
        });
        // Membership changes (node drains) walk every live buffer to
        // migrate stranded replicas, so the platform keeps a weak index.
        inner.platform.register_buffer(&inner);
        Ok(Buffer { inner })
    }

    /// Attaches a tenant quota charge to be released when the last
    /// handle drops (the serving plane charges before creating).
    pub(crate) fn attach_charge(&self, charge: TenantCharge) {
        *self.inner.charge.lock() = Some(charge);
    }

    /// Whether this is a modeled (timing-only) buffer.
    pub fn is_modeled(&self) -> bool {
        self.inner.modeled
    }

    /// Buffer size in bytes.
    pub fn size(&self) -> u64 {
        self.inner.size
    }

    /// The access flags.
    pub fn flags(&self) -> MemFlags {
        self.inner.flags
    }

    /// The cluster-unique buffer handle.
    pub fn id(&self) -> BufferId {
        self.inner.id
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Buffer({}, {} bytes)", self.inner.id, self.inner.size)
    }
}

impl Drop for BufferInner {
    /// `clReleaseMemObject`: frees the device-side allocations when the
    /// last handle drops. Best-effort — destructors never fail — but a
    /// release that cannot reach its node (dead link, vanished device)
    /// counts into `haocl_buffer_release_failed_total` instead of
    /// disappearing silently. Residency state is cleared either way.
    fn drop(&mut self) {
        let st = self.state.get_mut();
        let host = self.platform.host();
        for dev in st.residency.allocated_devices() {
            let info = host.devices().get(dev).cloned();
            let released = match &info {
                // A voluntarily departed node destroyed its allocations
                // by design when it retired — nothing left to release,
                // and nothing failed.
                Some(info)
                    if host.node_membership(info.node) == Some(MembershipState::Departed) =>
                {
                    true
                }
                Some(info) if host.node_is_live(info.node) => {
                    let wire = st.wire.get(&info.node).copied().unwrap_or(self.id);
                    matches!(
                        host.call(
                            info.node,
                            ApiCall::ReleaseBuffer {
                                device: info.device,
                                buffer: wire,
                            },
                        ),
                        Ok(outcome) if matches!(outcome.reply, ApiReply::Ack)
                    )
                }
                _ => false,
            };
            if !released {
                let node = info
                    .map(|i| i.node_name)
                    .unwrap_or_else(|| format!("device{dev}"));
                self.platform.obs.metrics.inc_counter(
                    names::BUFFER_RELEASE_FAILED,
                    &[("node", &node)],
                    1,
                );
            }
        }
        st.residency.clear();
        if let Some(charge) = self.charge.get_mut().take() {
            charge.ledger.release(charge.tenant, charge.bytes);
            self.platform.obs.metrics.set_gauge(
                names::TENANT_MEM_BYTES,
                &[("tenant", &charge.tenant_name)],
                charge.ledger.used(charge.tenant) as i64,
            );
        }
    }
}

impl BufferInner {
    /// Registers an in-flight launch that may write this buffer.
    pub(crate) fn add_pending_writer(&self, event: Event) {
        self.pending_writers.lock().push(event);
    }

    /// Resolves every in-flight launch targeting this buffer so its
    /// coherence state reflects them before a dependent operation reads
    /// it. A *failed* launch wrote nothing — its error stays on the
    /// launch's own [`Event`] and does not poison the buffer.
    fn settle_pending(&self) {
        let drained: Vec<Event> = std::mem::take(&mut *self.pending_writers.lock());
        for event in drained {
            let _ = event.wait();
        }
    }

    /// The live routing epoch of the node hosting global device `dev` —
    /// `u32::MAX` (never trusted) for a vanished device or a node that
    /// has departed the cluster: even a replayable lineage dies with a
    /// retirement, because retirement clears the journal.
    fn live_epoch(&self, dev: usize) -> u32 {
        let host = self.platform.host();
        match host.devices().get(dev) {
            Some(info) if host.node_membership(info.node) != Some(MembershipState::Departed) => {
                host.node_epoch(info.node)
            }
            _ => u32::MAX,
        }
    }

    /// The id `node` knows this buffer by, minting one on first use.
    /// The first node reuses the buffer's own id (so single-node
    /// platforms stay transparent); every further node gets a fresh
    /// cluster-unique id from the same allocator.
    fn wire_id_locked(&self, st: &mut BufState, node: NodeId) -> BufferId {
        if let Some(&id) = st.wire.get(&node) {
            return id;
        }
        let id = if st.wire.is_empty() {
            self.id
        } else {
            BufferId::new(self.platform.ids.next())
        };
        st.wire.insert(node, id);
        id
    }

    /// The wire id for `node` (for callers outside this module that
    /// compose their own node-bound calls, e.g. copies and kernel args).
    pub(crate) fn wire_id_on(&self, node: NodeId) -> BufferId {
        self.wire_id_locked(&mut self.state.lock(), node)
    }

    /// Drops residency entries invalidated by node failovers or
    /// departures.
    fn revalidate(&self, st: &mut BufState) {
        st.residency.revalidate(|dev| self.live_epoch(dev));
    }

    fn check_mode(&self, op_modeled: bool, which: &str) -> Result<(), Error> {
        if self.modeled && !op_modeled {
            Err(Error::api(
                Status::InvalidOperation,
                format!("buffer is modeled; use enqueue_{which}_buffer_modeled"),
            ))
        } else if !self.modeled && op_modeled {
            Err(Error::api(
                Status::InvalidOperation,
                format!("buffer carries real data; use enqueue_{which}_buffer"),
            ))
        } else {
            Ok(())
        }
    }

    fn check_bounds(&self, offset: u64, len: u64, which: &str) -> Result<u64, Error> {
        offset
            .checked_add(len)
            .filter(|&e| e <= self.size)
            .ok_or_else(|| {
                Error::api(
                    Status::InvalidValue,
                    format!(
                        "{which} [{offset}, {offset}+{len}) outside buffer of {} bytes",
                        self.size
                    ),
                )
            })
    }

    /// Makes `device` hold the newest contents (allocating and
    /// transferring as needed). Used before reads by kernels.
    pub(crate) fn make_current_on(&self, device: &Device) -> Result<(), Error> {
        self.settle_pending();
        let mut st = self.state.lock();
        self.revalidate(&mut st);
        let epoch = self.live_epoch(device.index);
        if st.residency.is_current(device.index, epoch) {
            return Ok(());
        }
        self.allocate_locked(&mut st, device)?;
        // Another device owns the newest copy and the shadow is stale:
        // ship the bytes node-to-node in one hop, leaving the shadow
        // untouched (it refreshes lazily if a host read ever needs it).
        if !st.residency.host_current() {
            if let Some(owner) = st.residency.owner_device() {
                if owner != device.index
                    && self.platform.peer_transfers_enabled()
                    && self.peer_push_locked(&mut st, owner, device, epoch).is_ok()
                {
                    return Ok(());
                }
            }
        }
        // Host relay: refresh the shadow from the owner (if stale), then
        // push the whole contents — the fallback when no peer owns the
        // data or a peer transfer failed mid-chaos.
        self.refresh_shadow_locked(&mut st)?;
        let wire = self.wire_id_locked(&mut st, device.node());
        let call = if self.modeled {
            ApiCall::WriteBufferModeled {
                device: device.device_index(),
                buffer: wire,
                offset: 0,
                len: self.size,
            }
        } else {
            ApiCall::WriteBuffer {
                device: device.device_index(),
                buffer: wire,
                offset: 0,
                data: Bytes::copy_from_slice(&st.shadow),
            }
        };
        self.platform
            .call_traced(device.node(), call, Phase::DataTransfer)?;
        self.platform
            .count_dataplane(names::PATH_HOST_RELAY, self.size);
        // A full host push is journaled verbatim: the replica's lineage
        // is replayable again whatever fed it before.
        st.residency
            .record_sync(Location::Device(device.index), epoch, true);
        Ok(())
    }

    /// Direct NMP→NMP migration of the whole buffer from global device
    /// `owner` to `target`. The host only sends the command; the owning
    /// node ships the bytes straight to the target's data listener.
    fn peer_push_locked(
        &self,
        st: &mut BufState,
        owner: usize,
        target: &Device,
        target_epoch: u32,
    ) -> Result<(), Error> {
        let host = self.platform.host();
        let src = host
            .devices()
            .get(owner)
            .cloned()
            .ok_or_else(|| Error::Transport(format!("device {owner} vanished")))?;
        let peer_addr = host
            .node_data_addr(target.node())
            .ok_or_else(|| Error::Transport(format!("no data address for {}", target.node())))?;
        let started = self.platform.clock().now();
        let version = st.residency.newest();
        let src_wire = self.wire_id_locked(st, src.node);
        let target_wire = self.wire_id_locked(st, target.node());
        let outcome = self.platform.call_traced(
            src.node,
            ApiCall::PushBufferTo {
                device: src.device,
                buffer: src_wire,
                peer_addr,
                peer_device: target.device_index(),
                peer_buffer: target_wire,
                offset: 0,
                len: self.size,
                version,
                epoch: target_epoch,
                modeled: self.modeled,
            },
            Phase::DataTransfer,
        )?;
        if !matches!(outcome.reply, ApiReply::Ack) {
            return Err(Error::Transport(format!(
                "PushBufferTo answered with {:?}",
                outcome.reply
            )));
        }
        // Peer bytes are only re-pulled on failover replay and the pull
        // can race the failure: taint the replica so revalidate() never
        // trusts it across an epoch bump.
        st.residency
            .record_sync(Location::Device(target.index), target_epoch, false);
        self.platform.count_dataplane(names::PATH_PEER, self.size);
        self.platform
            .obs
            .metrics
            .inc_counter(names::SHADOW_REFRESHES_AVOIDED, &[], 1);
        // Companion entry in the *target's* journal: the pushed bytes are
        // not host-journaled traffic, so a failed-over target replays
        // this pull to reconstruct them from the source node.
        if let Some(src_data_addr) = host.node_data_addr(src.node) {
            host.journal_companion(
                target.node(),
                ApiCall::PullBufferFrom {
                    device: target.device_index(),
                    buffer: target_wire,
                    peer_addr: src_data_addr,
                    peer_device: src.device,
                    peer_buffer: src_wire,
                    offset: 0,
                    len: self.size,
                    version,
                    epoch: target_epoch,
                    modeled: self.modeled,
                },
            );
        }
        if self.platform.obs.enabled() {
            let recorder = &self.platform.obs.recorder;
            let trace = recorder.new_trace();
            recorder.record(
                Span::new(
                    recorder.next_span_id(),
                    trace,
                    None,
                    format!("fabric.peer_transfer {}", self.id),
                    Phase::DataTransfer,
                    src.node_name.clone(),
                    started,
                    self.platform.clock().now(),
                )
                .attr("bytes", self.size.to_string())
                .attr("version", version.to_string())
                .attr("to", target.node_name()),
            );
        }
        Ok(())
    }

    /// Records that a kernel on `device` may have written the buffer.
    pub(crate) fn note_kernel_write(&self, device: &Device) {
        if !self.flags.kernel_writable() {
            return;
        }
        self.note_device_write_full(device);
    }

    pub(crate) fn note_device_write_full(&self, device: &Device) {
        let epoch = self.live_epoch(device.index);
        let mut st = self.state.lock();
        // The launch itself is journaled, but it transforms whatever the
        // device held: the result is only replayable if the input was.
        let replayable = st.residency.replayable_at(device.index);
        st.residency
            .record_write(Location::Device(device.index), epoch, replayable);
    }

    /// Host write (`clEnqueueWriteBuffer`): updates the shadow and pushes
    /// the change to `device`.
    pub(crate) fn host_write(
        &self,
        device: &Device,
        offset: u64,
        data: &[u8],
    ) -> Result<(), Error> {
        self.host_write_impl(device, offset, HostData::Real(data))
    }

    /// Modeled host write: charges the network + PCIe transfer for `len`
    /// bytes without carrying data.
    pub(crate) fn host_write_modeled(
        &self,
        device: &Device,
        offset: u64,
        len: u64,
    ) -> Result<(), Error> {
        self.host_write_impl(device, offset, HostData::Modeled(len))
    }

    fn host_write_impl(
        &self,
        device: &Device,
        offset: u64,
        data: HostData<'_>,
    ) -> Result<(), Error> {
        self.check_mode(data.is_modeled(), "write")?;
        let end = self.check_bounds(offset, data.len(), "write")?;
        self.settle_pending();
        let mut st = self.state.lock();
        self.revalidate(&mut st);
        let epoch = self.live_epoch(device.index);
        if let HostData::Real(bytes) = data {
            self.refresh_shadow_locked(&mut st)?;
            st.shadow[offset as usize..end as usize].copy_from_slice(bytes);
        }
        self.allocate_locked(&mut st, device)?;
        // If the device already had the newest pre-write contents, a
        // partial push keeps it equal; otherwise push the whole contents.
        // A modeled buffer with a single allocation also stays partial —
        // nothing else can hold a diverging copy.
        let was_current = st.residency.is_current(device.index, epoch);
        // A partial push layers journaled bytes over the device's prior
        // content, so the taint carries; a full push resets the lineage.
        let replayable = if was_current {
            st.residency.replayable_at(device.index)
        } else {
            true
        };
        st.residency.record_write(Location::Host, 0, true);
        let wire = self.wire_id_locked(&mut st, device.node());
        let (call, pushed) = match data {
            HostData::Real(bytes) => {
                let (push_offset, payload) = if was_current {
                    (offset, Bytes::copy_from_slice(bytes))
                } else {
                    (0, Bytes::copy_from_slice(&st.shadow))
                };
                let pushed = payload.len() as u64;
                (
                    ApiCall::WriteBuffer {
                        device: device.device_index(),
                        buffer: wire,
                        offset: push_offset,
                        data: payload,
                    },
                    pushed,
                )
            }
            HostData::Modeled(len) => {
                let partial = was_current || st.residency.allocated_count() == 1;
                let (push_offset, push_len) = if partial {
                    (offset, len)
                } else {
                    (0, self.size)
                };
                (
                    ApiCall::WriteBufferModeled {
                        device: device.device_index(),
                        buffer: wire,
                        offset: push_offset,
                        len: push_len,
                    },
                    push_len,
                )
            }
        };
        self.platform
            .call_traced(device.node(), call, Phase::DataTransfer)?;
        self.platform
            .count_dataplane(names::PATH_HOST_RELAY, pushed);
        st.residency
            .record_sync(Location::Device(device.index), epoch, replayable);
        Ok(())
    }

    /// Host read (`clEnqueueReadBuffer`): pulls from the owning device if
    /// the shadow is stale, then copies out.
    pub(crate) fn host_read(&self, offset: u64, out: &mut [u8]) -> Result<(), Error> {
        let len = out.len() as u64;
        self.host_read_impl(offset, len, Some(out))
    }

    /// Modeled host read: charges the pull from the owning device (if the
    /// shadow is stale) without carrying data.
    pub(crate) fn host_read_modeled(&self, offset: u64, len: u64) -> Result<(), Error> {
        self.host_read_impl(offset, len, None)
    }

    fn host_read_impl(&self, offset: u64, len: u64, out: Option<&mut [u8]>) -> Result<(), Error> {
        self.check_mode(out.is_none(), "read")?;
        let end = self.check_bounds(offset, len, "read")?;
        self.settle_pending();
        let mut st = self.state.lock();
        self.revalidate(&mut st);
        if st.residency.host_current() {
            if let Some(out) = out {
                out.copy_from_slice(&st.shadow[offset as usize..end as usize]);
            }
            return Ok(());
        }
        // Ranged pull from the owning device: only the requested bytes
        // cross the backbone (real OpenCL reads are ranged). The shadow
        // range is refreshed opportunistically but stays stale overall.
        let owner = self.owner_device(&st)?;
        let wire = self.wire_id_locked(&mut st, owner.node);
        let call = if out.is_some() {
            ApiCall::ReadBuffer {
                device: owner.device,
                buffer: wire,
                offset,
                len,
            }
        } else {
            ApiCall::ReadBufferModeled {
                device: owner.device,
                buffer: wire,
                offset,
                len,
            }
        };
        let outcome = self
            .platform
            .call_traced(owner.node, call, Phase::DataTransfer)?;
        match (outcome.reply, out) {
            (ApiReply::Data { bytes }, Some(out)) => {
                out.copy_from_slice(&bytes);
                st.shadow[offset as usize..end as usize].copy_from_slice(&bytes);
            }
            (ApiReply::DataModeled { .. }, None) => {}
            (other, _) => {
                return Err(Error::Transport(format!(
                    "ReadBuffer answered with {other:?}"
                )));
            }
        }
        self.platform.count_dataplane(names::PATH_HOST_RELAY, len);
        Ok(())
    }

    fn owner_device(&self, st: &BufState) -> Result<haocl_cluster::RemoteDevice, Error> {
        let owner = st
            .residency
            .owner_device()
            .expect("a stale shadow implies a current device");
        self.platform
            .host()
            .devices()
            .get(owner)
            .cloned()
            .ok_or_else(|| Error::Transport(format!("device {owner} vanished")))
    }

    /// Rescues this buffer from a draining node. If the newest contents
    /// live *only* on `node`, they are moved out — peer-pushed to
    /// `target` (a device on a surviving node) unless `force_relay`, in
    /// which case they are pulled back into the host shadow in one hop.
    /// Either way, every replica and allocation the buffer held on the
    /// node is evicted, so nothing ever reads from the departed epoch
    /// and the eventual drop has no dead allocation to release.
    pub(crate) fn evacuate_node(
        &self,
        node: NodeId,
        target: Option<&Device>,
        force_relay: bool,
    ) -> Result<EvacOutcome, Error> {
        self.settle_pending();
        let host = self.platform.host();
        let leaving: Vec<usize> = host
            .devices()
            .iter()
            .enumerate()
            .filter(|(_, d)| d.node == node)
            .map(|(i, _)| i)
            .collect();
        let mut st = self.state.lock();
        self.revalidate(&mut st);
        if leaving.iter().all(|&dev| !st.residency.is_allocated(dev)) {
            return Ok(EvacOutcome::Untouched);
        }
        // The newest bytes are endangered iff no current copy survives
        // off the node: the shadow is stale and every current replica
        // sits on a leaving device.
        let endangered = !st.residency.host_current()
            && st
                .residency
                .owner_device()
                .is_some_and(|o| leaving.contains(&o))
            && !(0..host.device_count()).any(|dev| {
                !leaving.contains(&dev) && st.residency.is_current(dev, self.live_epoch(dev))
            });
        let mut outcome = EvacOutcome::Untouched;
        if endangered {
            let owner = st
                .residency
                .owner_device()
                .expect("endangered implies an owner");
            let mut rescued = false;
            if !force_relay && self.platform.peer_transfers_enabled() {
                if let Some(target) = target {
                    let epoch = self.live_epoch(target.index);
                    if self.allocate_locked(&mut st, target).is_ok()
                        && self.peer_push_locked(&mut st, owner, target, epoch).is_ok()
                    {
                        outcome = EvacOutcome::PeerMigrated(self.size);
                        rescued = true;
                    }
                }
            }
            if !rescued {
                self.refresh_shadow_locked(&mut st)?;
                outcome = EvacOutcome::HostRelayed(self.size);
            }
        }
        for &dev in &leaving {
            st.residency.evict_device(dev);
        }
        Ok(outcome)
    }

    /// Whether `device` holds the newest contents (after
    /// [`BufferInner::make_current_on`] it does). Used by coherence tests.
    #[cfg(test)]
    pub(crate) fn is_current_on(&self, device: &Device) -> bool {
        self.state
            .lock()
            .residency
            .is_current(device.index, self.live_epoch(device.index))
    }

    /// Bytes of this buffer that are current on global device `dev` —
    /// the whole size or nothing. Feeds locality-aware placement.
    pub(crate) fn resident_bytes_on(&self, dev: usize) -> u64 {
        let st = self.state.lock();
        if st.residency.is_current(dev, self.live_epoch(dev)) {
            self.size
        } else {
            0
        }
    }

    fn allocate_locked(&self, st: &mut BufState, device: &Device) -> Result<(), Error> {
        if st.residency.is_allocated(device.index) {
            return Ok(());
        }
        let wire = self.wire_id_locked(st, device.node());
        let call = if self.modeled {
            ApiCall::CreateBufferModeled {
                device: device.device_index(),
                buffer: wire,
                size: self.size,
            }
        } else {
            ApiCall::CreateBuffer {
                device: device.device_index(),
                buffer: wire,
                size: self.size,
            }
        };
        self.platform
            .call_traced(device.node(), call, Phase::DataCreate)?;
        st.residency.note_allocated(device.index);
        Ok(())
    }

    /// Pulls the newest contents into the shadow if stale.
    fn refresh_shadow_locked(&self, st: &mut BufState) -> Result<(), Error> {
        if st.residency.host_current() {
            return Ok(());
        }
        let info = self.owner_device(st)?;
        let wire = self.wire_id_locked(st, info.node);
        let call = if self.modeled {
            ApiCall::ReadBufferModeled {
                device: info.device,
                buffer: wire,
                offset: 0,
                len: self.size,
            }
        } else {
            ApiCall::ReadBuffer {
                device: info.device,
                buffer: wire,
                offset: 0,
                len: self.size,
            }
        };
        let outcome = self
            .platform
            .call_traced(info.node, call, Phase::DataTransfer)?;
        match outcome.reply {
            ApiReply::Data { bytes } => {
                st.shadow.copy_from_slice(&bytes);
            }
            ApiReply::DataModeled { .. } => {}
            other => {
                return Err(Error::Transport(format!(
                    "ReadBuffer answered with {other:?}"
                )));
            }
        }
        self.platform
            .count_dataplane(names::PATH_HOST_RELAY, self.size);
        st.residency.record_sync(Location::Host, 0, true);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{DeviceType, Platform};
    use haocl_proto::messages::DeviceKind;

    fn setup() -> (Platform, Context) {
        let p = Platform::local(&[DeviceKind::Gpu, DeviceKind::Gpu]).unwrap();
        let devs = p.devices(DeviceType::All);
        let ctx = Context::new(&p, &devs).unwrap();
        (p, ctx)
    }

    #[test]
    fn zero_sized_buffer_rejected() {
        let (_p, ctx) = setup();
        let err = Buffer::new(&ctx, MemFlags::READ_WRITE, 0).unwrap_err();
        assert_eq!(err.status(), Some(Status::InvalidBufferSize));
    }

    #[test]
    fn write_then_read_roundtrips_through_a_device() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 8).unwrap();
        let dev = &ctx.devices()[0];
        buf.inner.host_write(dev, 2, &[9, 8, 7]).unwrap();
        let mut out = vec![0u8; 8];
        buf.inner.host_read(0, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 9, 8, 7, 0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_host_ops_rejected() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let dev = &ctx.devices()[0];
        assert!(buf.inner.host_write(dev, 3, &[1, 2]).is_err());
        let mut out = vec![0u8; 8];
        assert!(buf.inner.host_read(0, &mut out).is_err());
        // Overflowing offset must not wrap.
        assert!(buf.inner.host_write(dev, u64::MAX, &[1]).is_err());
    }

    #[test]
    fn kernel_write_invalidates_other_replicas() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let d0 = &ctx.devices()[0];
        let d1 = &ctx.devices()[1];
        buf.inner.make_current_on(d0).unwrap();
        buf.inner.make_current_on(d1).unwrap();
        assert!(buf.inner.is_current_on(d0));
        assert!(buf.inner.is_current_on(d1));
        buf.inner.note_kernel_write(d0);
        assert!(buf.inner.is_current_on(d0));
        assert!(!buf.inner.is_current_on(d1));
        // Re-making d1 current migrates the newest replica over.
        buf.inner.make_current_on(d1).unwrap();
        assert!(buf.inner.is_current_on(d1));
    }

    #[test]
    fn migrations_prefer_peer_transfers_over_the_shadow() {
        let (p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let d0 = &ctx.devices()[0];
        let d1 = &ctx.devices()[1];
        buf.inner.host_write(d0, 0, &[1, 2, 3, 4]).unwrap();
        buf.inner.note_kernel_write(d0); // shadow goes stale
        buf.inner.make_current_on(d1).unwrap();
        let m = &p.obs().metrics;
        assert_eq!(
            m.counter_value(names::DATAPLANE_BYTES, &[("path", names::PATH_PEER)]),
            4,
            "the migration must travel NMP→NMP"
        );
        assert_eq!(
            m.counter_value(names::SHADOW_REFRESHES_AVOIDED, &[]),
            1,
            "the shadow must not have been refreshed"
        );
        // The host still observes the newest contents via a lazy pull.
        let mut out = vec![0u8; 4];
        buf.inner.host_read(0, &mut out).unwrap();
        assert_eq!(out, vec![1, 2, 3, 4]);
    }

    #[test]
    fn disabling_peer_transfers_restores_the_host_relay() {
        let (p, ctx) = setup();
        p.set_peer_transfers(false);
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 4).unwrap();
        let d0 = &ctx.devices()[0];
        let d1 = &ctx.devices()[1];
        buf.inner.host_write(d0, 0, &[5, 6, 7, 8]).unwrap();
        buf.inner.note_kernel_write(d0);
        buf.inner.make_current_on(d1).unwrap();
        let m = &p.obs().metrics;
        assert_eq!(
            m.counter_value(names::DATAPLANE_BYTES, &[("path", names::PATH_PEER)]),
            0
        );
        assert_eq!(m.counter_value(names::SHADOW_REFRESHES_AVOIDED, &[]), 0);
        // Relay = 4-byte pull back to the shadow + 4-byte push, plus the
        // initial 4-byte host write.
        assert_eq!(
            m.counter_value(names::DATAPLANE_BYTES, &[("path", names::PATH_HOST_RELAY)]),
            12
        );
        assert!(buf.inner.is_current_on(d1));
    }

    #[test]
    fn read_only_buffers_survive_kernel_launches() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_ONLY, 4).unwrap();
        let d0 = &ctx.devices()[0];
        buf.inner.make_current_on(d0).unwrap();
        buf.inner.note_kernel_write(d0); // ignored for READ_ONLY
        assert!(buf.inner.is_current_on(d0));
    }

    #[test]
    fn dropping_a_buffer_frees_device_memory() {
        // The P4 model holds 8 GiB. Two 5 GiB buffers only fit if the
        // first is released when dropped.
        let (_p, ctx) = setup();
        let dev = ctx.devices()[0].clone();
        {
            let big = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 5 << 30).unwrap();
            big.inner.make_current_on(&dev).unwrap();
        } // drop releases the device allocation
        let again = Buffer::new_modeled(&ctx, MemFlags::READ_WRITE, 5 << 30).unwrap();
        again
            .inner
            .make_current_on(&dev)
            .expect("memory must have been reclaimed");
    }

    #[test]
    fn resident_bytes_follow_the_newest_replica() {
        let (_p, ctx) = setup();
        let buf = Buffer::new(&ctx, MemFlags::READ_WRITE, 16).unwrap();
        let d0 = &ctx.devices()[0];
        let d1 = &ctx.devices()[1];
        assert_eq!(buf.inner.resident_bytes_on(d0.index), 0);
        buf.inner.make_current_on(d0).unwrap();
        assert_eq!(buf.inner.resident_bytes_on(d0.index), 16);
        buf.inner.note_kernel_write(d1);
        assert_eq!(buf.inner.resident_bytes_on(d0.index), 0);
        assert_eq!(buf.inner.resident_bytes_on(d1.index), 16);
    }

    #[test]
    fn flags_classify_writability() {
        assert!(MemFlags::READ_WRITE.kernel_writable());
        assert!(MemFlags::WRITE_ONLY.kernel_writable());
        assert!(!MemFlags::READ_ONLY.kernel_writable());
    }
}
